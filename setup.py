"""Legacy setup shim.

All metadata lives in pyproject.toml; this file only exists so that
``pip install -e .`` works in offline environments without the ``wheel``
package (pip falls back to ``setup.py develop`` when no build-system
table is declared).
"""

from setuptools import setup

setup()
