"""Naive reference skyline: test every vertex against its 2-hop neighbors.

This is the ground truth for the whole test suite.  It applies
:func:`~repro.core.domination.dominates` literally — no candidate
filtering, no bloom filters, no single-update short-circuit — so its
correctness is a direct transcription of Definitions 2 and 3.  Cost is
``O(Σ_u Σ_{w ∈ N2(u)} deg(w) log d)``; use only on small graphs.
"""

from __future__ import annotations

from typing import Optional

from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.core.domination import dominates, two_hop_neighbors
from repro.core.result import SkylineResult
from repro.graph.adjacency import Graph

__all__ = ["naive_skyline"]


def naive_skyline(
    graph: Graph, *, counters: Optional[SkylineCounters] = None
) -> SkylineResult:
    """Compute the neighborhood skyline by exhaustive pairwise checks.

    For every vertex ``u``, scan its 2-hop neighborhood for any dominator;
    ``u`` is in the skyline iff none exists (Def. 3).

    ``counters`` is accepted for interface uniformity; only
    ``pair_tests`` and ``dominations_found`` are meaningful here.
    """
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    dominator = list(range(n))
    skyline: list[int] = []
    for u in range(n):
        found = u
        for w in two_hop_neighbors(graph, u):
            stats.pair_tests += 1
            if dominates(graph, w, u):
                found = w
                stats.dominations_found += 1
                break
        dominator[u] = found
        if found == u:
            skyline.append(u)
    return SkylineResult(
        skyline=tuple(skyline),
        dominator=tuple(dominator),
        candidates=None,
        algorithm="naive",
    )
