"""``FilterRefineSkyBlock`` — the block-vectorized refine kernel.

The bloom and bitset refine kernels walk the 2-hop neighborhood of each
candidate in Python, one pair at a time.  This module evaluates the
same pairs in **blocks** over the CSR ndarrays: one ragged gather pulls
an entire block of candidates' 2-hop entries ``(u, w)`` into flat
arrays, the skip ladder (self, degree, frozen filter-phase domination,
core-number pretest) becomes boolean masks, and the exact inclusion
test collapses to a counting identity:

    ``N(u) ⊆ N(w)``  ⟺  ``|N(u) ∩ N(w)| = deg(u)``

because ``w`` appears once in the gathered multiset for every common
neighbor it shares with ``u``.  One ``np.unique`` over packed
``(u, w)`` keys yields all pair multiplicities at once — no bit matrix,
no per-pair Python, and the verdict is exact by construction.  The
accept condition is equivalent to the scalar kernels' because the
via-vertex exclusion ``N(u) \\ {v} ⊆ N(w)`` is v-independent on every
reachable pair (``w ∈ N(v)`` forces ``v ∈ N(w)``) — the same
v-independence the bitset kernel's verdict-stamp cache rides on; here
it is what lets a per-pair *count* stand in for per-via subset tests.

Output equivalence reuses the two-pass decomposition proved in
:mod:`repro.parallel.worker` verbatim:

1. **Status pass** — which candidates are dominated, testing against
   the frozen filter-phase dominator state only.  Settlement per pair
   is the scalar rule, evaluated as masks: strict domination
   (``deg(w) > deg(u)``) or mutual inclusion lost on the Def. 2 ID
   tie-break (``w < u``).
2. **Witness pass** — for each dominated candidate, the exact entry
   the sequential scan would have written: the *first* settling ``w``
   in scan order (``v`` ascending in ``N(u)``, ``w`` ascending within
   each ``N(v)``; the gather preserves exactly this order) under the
   sequential skip predicate "``w`` filter-dominated, or ``w < u`` and
   refine-dominated".

So ``skyline`` / ``dominator`` / ``candidates`` are bit-for-bit the
sequential bloom baseline's, which the differential suite pins.

Core-number pretest
-------------------
``N(u) ⊆ N(w)`` implies ``core(w) ≥ core(u)`` (see
:mod:`repro.graph.cores`), so pairs failing it are rejected before the
counting test.  The pretest never changes the accept set — it is pure
work avoidance — and its per-entry reject tally surfaces as
``counters.extra["core_pretest_rejects"]``.

Counter semantics
-----------------
Bulk masks tally skips per gathered *entry* (every ``(v, w)`` visit,
like the bloom scan would) and ``pair_tests`` per distinct pair that
reaches the counting test.  ``vertices_examined`` and
``dominations_found`` match the parallel bloom/bitset totals exactly;
the skip tallies never undercount but, like the bitset kernel's bulk
tallies, keep counting where a scalar scan would have early-exited.
``bloom_*`` and ``nbr_checks`` stay zero.  Totals are deterministic
for any chunking.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.core.filter_phase import filter_phase
from repro.core.result import SkylineResult
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.cores import core_decomposition

try:  # pragma: no cover - exercised via HAVE_NUMPY gating tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: ``True`` when numpy is importable and the block kernel can run.
HAVE_NUMPY = _np is not None

__all__ = [
    "BLOCK_ENTRY_BUDGET",
    "BLOCK_KERNEL_MIN_CANDIDATES",
    "BlockRefineContext",
    "HAVE_NUMPY",
    "block_status_chunk",
    "block_witness_chunk",
    "choose_refine_kernel",
    "filter_refine_block_sky",
]

#: Gathered 2-hop entries per status block — bounds the flat scratch
#: arrays to a few tens of MB however large the graph is.
BLOCK_ENTRY_BUDGET = 1 << 22

#: Below this many candidates the scalar bitset kernel (packing is
#: microseconds, scans early-exit) beats the block kernel's fixed
#: per-block ndarray overhead; ``choose_refine_kernel`` routes there.
BLOCK_KERNEL_MIN_CANDIDATES = 512


def choose_refine_kernel(
    num_candidates: int,
    num_vertices: int,
    *,
    word_budget: int,
) -> str:
    """The three-way ``refine="auto"`` cutover: bloom / bitset / block.

    * no numpy → ``"bloom"`` (the only kernel that runs everywhere);
    * small candidate sets whose packed matrix fits ``word_budget`` →
      ``"bitset"`` (scalar early-exit scans win under the block
      kernel's fixed ndarray overhead);
    * everything else → ``"block"`` (the vectorized counting kernel —
      it needs no bit matrix, so neither the word budget nor the
      candidate-density fallback applies to it).
    """
    if not HAVE_NUMPY:
        return "bloom"
    from repro.graph.bitmatrix import matrix_words

    if (
        num_candidates < BLOCK_KERNEL_MIN_CANDIDATES
        and matrix_words(num_candidates, num_vertices) <= word_budget
    ):
        return "bitset"
    return "block"


def _graph_csr(graph: Graph):
    """``(indptr, indices)`` of ``graph`` as numpy arrays."""
    csr_arrays = getattr(graph, "csr_arrays", None)
    if csr_arrays is not None:
        indptr, indices = csr_arrays()
    else:
        indptr, indices = graph.to_csr()
    return _np.asarray(indptr), _np.asarray(indices)


def _ragged_gather(indices, starts, lens):
    """Concatenate ``indices[starts[i] : starts[i] + lens[i]]`` rows."""
    total = int(lens.sum())
    if not total:
        return _np.empty(0, dtype=indices.dtype)
    offsets = _np.arange(total, dtype=_np.int64) - _np.repeat(
        _np.cumsum(lens) - lens, lens
    )
    return indices[_np.repeat(starts, lens) + offsets]


class BlockRefineContext:
    """Shared ndarray state for block refine scans.

    Built once per pass (or per worker process) from the graph, the
    frozen filter-phase output and the core numbers; the chunk scans
    only read it (apart from the lazily installed witness flags, which
    are themselves frozen once set).
    """

    __slots__ = (
        "n",
        "indptr",
        "indices",
        "deg",
        "filter_ok",
        "core",
        "cand",
        "vol2",
        "entry_budget",
        "refine_dominated",
    )

    def __init__(
        self,
        graph: Graph,
        candidates: Sequence[int],
        dominator: Sequence[int],
        *,
        cores=None,
        entry_budget: int = BLOCK_ENTRY_BUDGET,
    ):
        if not HAVE_NUMPY:
            raise ParameterError(
                "the block refine kernel requires numpy; gate on "
                "repro.core.block_refine.HAVE_NUMPY"
            )
        indptr, indices = _graph_csr(graph)
        self.n = graph.num_vertices
        self.indptr = indptr.astype(_np.int64, copy=False)
        self.indices = indices
        self.deg = self.indptr[1:] - self.indptr[:-1]
        dom = _np.asarray(dominator, dtype=_np.int64)
        self.filter_ok = dom == _np.arange(self.n, dtype=_np.int64)
        if cores is None:
            cores = core_decomposition(graph).core
        self.core = _np.asarray(cores, dtype=_np.int64)
        self.cand = _np.asarray(candidates, dtype=_np.int64)
        # Per-vertex 2-hop volume Σ_{v∈N(u)} deg(v): the quantity block
        # sizing budgets, computed in one vectorized edge pass.
        row_vol = _np.concatenate(
            (
                _np.zeros(1, dtype=_np.int64),
                _np.cumsum(self.deg[self.indices]),
            )
        )
        self.vol2 = row_vol[self.indptr[1:]] - row_vol[self.indptr[:-1]]
        self.entry_budget = entry_budget
        #: Status-pass output as per-vertex flags; installed once by
        #: :meth:`ensure_refine_dominated` before any witness scan.
        self.refine_dominated = None

    def ensure_refine_dominated(self, dominated: Sequence[int]) -> None:
        """Install the witness-pass skip flags (idempotent)."""
        if self.refine_dominated is None:
            flags = _np.zeros(self.n, dtype=bool)
            dom = _np.asarray(dominated, dtype=_np.int64)
            if dom.size:
                flags[dom] = True
            self.refine_dominated = flags


def _block_bounds(vol: "object", budget: int) -> list[tuple[int, int]]:
    """Split ``range(len(vol))`` greedily so each block's Σvol ≤ budget
    (always at least one item per block)."""
    bounds: list[tuple[int, int]] = []
    if not len(vol):
        return bounds
    cum = _np.cumsum(vol)
    start = 0
    while start < len(vol):
        limit = (cum[start - 1] if start else 0) + budget
        end = int(_np.searchsorted(cum, limit, side="right"))
        end = max(end, start + 1)
        bounds.append((start, end))
        start = end
    return bounds


def _scan_status_block(
    ctx: BlockRefineContext, us, stats: SkylineCounters
):
    """Dominated mask over the candidate block ``us`` (status pass)."""
    indptr, indices, deg = ctx.indptr, ctx.indices, ctx.deg
    n = ctx.n
    lens = deg[us]
    v = _ragged_gather(indices, indptr[us], lens)
    u_rep = _np.repeat(_np.arange(len(us), dtype=_np.int64), lens)
    wlens = deg[v]
    entry_u = _np.repeat(u_rep, wlens)
    w = _ragged_gather(indices, indptr[v], wlens)
    dominated = _np.zeros(len(us), dtype=bool)
    if not w.size:
        return dominated

    deg_us = deg[us]
    deg_u_e = deg_us[entry_u]
    mask = w != us[entry_u]
    deg_ok = deg[w] >= deg_u_e
    stats.degree_skips += int(_np.count_nonzero(mask & ~deg_ok))
    mask &= deg_ok
    filt_ok = ctx.filter_ok[w]
    stats.dominated_skips += int(_np.count_nonzero(mask & ~filt_ok))
    mask &= filt_ok
    core_ok = ctx.core[w] >= ctx.core[us][entry_u]
    core_rejects = int(_np.count_nonzero(mask & ~core_ok))
    if core_rejects:
        stats.extra["core_pretest_rejects"] = (
            stats.extra.get("core_pretest_rejects", 0) + core_rejects
        )
    mask &= core_ok
    if not mask.any():
        return dominated

    keys = entry_u[mask] * n + w[mask]
    pair_keys, counts = _np.unique(keys, return_counts=True)
    stats.pair_tests += int(pair_keys.size)
    pu = pair_keys // n
    pw = pair_keys - pu * n
    # |N(u) ∩ N(w)| == deg(u)  ⟺  N(u) ⊆ N(w): the exact accept test.
    accept = counts == deg_us[pu]
    settle = accept & ((deg[pw] > deg_us[pu]) | (pw < us[pu]))
    dominated[pu[settle]] = True
    return dominated


def block_status_chunk(
    ctx: BlockRefineContext, lo: int, hi: int, stats: SkylineCounters
) -> list[int]:
    """Status pass over candidates ``ctx.cand[lo:hi]``, in blocks.

    Returns the dominated candidate IDs, ascending (chunks of the
    ascending candidate list scan in order, so this falls out free).
    """
    cand = ctx.cand[lo:hi]
    stats.vertices_examined += len(cand)
    out: list[int] = []
    for blo, bhi in _block_bounds(ctx.vol2[cand], ctx.entry_budget):
        us = cand[blo:bhi]
        dominated = _scan_status_block(ctx, us, stats)
        out.extend(int(u) for u in us[dominated])
    stats.dominations_found += len(out)
    return out


def _witness_one(
    ctx: BlockRefineContext, u: int, stats: SkylineCounters
) -> int:
    """The sequential dominator entry for dominated candidate ``u``."""
    indptr, indices, deg = ctx.indptr, ctx.indices, ctx.deg
    v = indices[indptr[u] : indptr[u + 1]]
    w = _ragged_gather(indices, indptr[v], deg[v])
    deg_u = int(deg[u])
    mask = w != u
    deg_ok = deg[w] >= deg_u
    stats.degree_skips += int(_np.count_nonzero(mask & ~deg_ok))
    mask &= deg_ok
    skip_dom = ~ctx.filter_ok[w] | ((w < u) & ctx.refine_dominated[w])
    stats.dominated_skips += int(_np.count_nonzero(mask & skip_dom))
    mask &= ~skip_dom
    core_ok = ctx.core[w] >= ctx.core[u]
    core_rejects = int(_np.count_nonzero(mask & ~core_ok))
    if core_rejects:
        stats.extra["core_pretest_rejects"] = (
            stats.extra.get("core_pretest_rejects", 0) + core_rejects
        )
    mask &= core_ok
    wm = w[mask]
    if wm.size:
        pairs, inverse, counts = _np.unique(
            wm, return_inverse=True, return_counts=True
        )
        stats.pair_tests += int(pairs.size)
        accept = counts == deg_u
        settle = accept & ((deg[pairs] > deg_u) | (pairs < u))
        # The gather preserves scan order (v ascending, w ascending
        # within each row), so the first settling entry is exactly the
        # dominator the sequential scan writes.
        entry_settles = settle[inverse]
        if entry_settles.any():
            return int(wm[int(_np.argmax(entry_settles))])
    raise RuntimeError(
        f"refine witness for vertex {u} vanished between passes; "
        "this indicates a bug in the status pass"
    )


def block_witness_chunk(
    ctx: BlockRefineContext,
    dominated_slice: Sequence[int],
    stats: SkylineCounters,
) -> list[tuple[int, int]]:
    """Witness pass over one slice of the dominated-candidate list.

    Precondition: :meth:`BlockRefineContext.ensure_refine_dominated`
    ran with the *full* status-pass output.
    """
    return [
        (int(u), _witness_one(ctx, int(u), stats))
        for u in dominated_slice
    ]


def filter_refine_block_sky(
    graph: Graph,
    *,
    counters: Optional[SkylineCounters] = None,
    entry_budget: int = BLOCK_ENTRY_BUDGET,
    bloom_bits: Optional[int] = None,
    bits_per_element: int = 8,
    seed: int = 0,
) -> SkylineResult:
    """Compute the neighborhood skyline with the block refine kernel.

    Same filter phase, same result as
    :func:`~repro.core.filter_refine.filter_refine_sky` — bit for bit —
    with the refine phase evaluated in vectorized blocks.  Without
    numpy the refine falls back to the bloom pass (``bloom_bits`` /
    ``bits_per_element`` / ``seed`` size it; they are ignored when the
    block kernel runs) and ``counters.extra`` records
    ``refine_path == "bloom-fallback"`` with reason ``"numpy-missing"``.
    """
    if entry_budget <= 0:
        raise ParameterError(
            f"entry_budget must be positive, got {entry_budget}"
        )
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    candidates, dominator = filter_phase(graph, counters=counters)

    if not HAVE_NUMPY:
        from repro.bloom.vertex_filters import VertexBloomIndex
        from repro.core.filter_refine import bloom_refine_pass

        blooms = VertexBloomIndex(
            graph,
            candidates,
            bits=bloom_bits,
            seed=seed,
            bits_per_element=bits_per_element,
        )
        bloom_refine_pass(graph, candidates, dominator, blooms, stats)
        if counters is not None:
            counters.extra["refine_path"] = "bloom-fallback"
            counters.extra["bitset_fallback_reason"] = "numpy-missing"
        skyline = tuple(u for u in range(n) if dominator[u] == u)
        return SkylineResult(
            skyline=skyline,
            dominator=tuple(dominator),
            candidates=tuple(candidates),
            algorithm="FilterRefineSkyBlock(bloom-fallback)",
            counters=counters,
        )

    ctx = BlockRefineContext(
        graph, candidates, dominator, entry_budget=entry_budget
    )
    dominated = block_status_chunk(ctx, 0, len(candidates), stats)
    ctx.ensure_refine_dominated(dominated)
    final = list(dominator)
    for u, w in block_witness_chunk(ctx, dominated, stats):
        final[u] = w
    if counters is not None:
        counters.extra["refine_path"] = "block"
        counters.extra.setdefault("core_pretest_rejects", 0)
        counters.extra["block_rescans"] = len(dominated)

    skyline = tuple(u for u in range(n) if final[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(final),
        candidates=tuple(candidates),
        algorithm="FilterRefineSkyBlock",
        counters=counters,
    )
