"""The full neighborhood-inclusion partial order (Brandes et al. [7]).

The paper contrasts its skyline problem with the *partial-order
computation* problem of its reference [7]: finding **all** domination
relationships, not just the undominated vertices.  This module provides
that complementary capability — it is the "positional dominance" view of
the same pre-order, and the skyline falls out as the set of maximal
elements, which gives the test suite an independent cross-check.

* :func:`dominance_pairs` — every ordered pair ``(u, v)`` with ``v ≤ u``.
* :func:`dominance_dag` — the same relation as a successor map
  (transitively closed, since the domination order itself is).
* :func:`maximal_elements` — vertices with no dominator (= the skyline).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.domination import dominates, two_hop_neighbors
from repro.graph.adjacency import Graph

__all__ = ["dominance_pairs", "dominance_dag", "maximal_elements"]


def dominance_pairs(graph: Graph) -> Iterator[tuple[int, int]]:
    """Yield every pair ``(dominator, dominated)`` of the graph.

    Follows the counting scheme of Brandes et al.: for each vertex ``v``
    accumulate ``|N(v) ∩ N[w]|`` over the 2-hop neighborhood and emit
    the pairs where the count reaches ``deg(v)``, resolving mutual
    inclusions by the ID tie-break of Def. 2.  ``O(m · dmax)`` time like
    Algorithm 1, but *without* the first-dominator short-circuit — every
    relationship is reported.
    """
    n = graph.num_vertices
    count = [0] * n
    stamp = [-1] * n
    for v in range(n):
        deg_v = graph.degree(v)
        if deg_v == 0:
            continue  # isolated vertices are incomparable by convention
        for x in graph.neighbors(v):
            for w in _closed_neighborhood_except(graph, x, v):
                if stamp[w] != v:
                    stamp[w] = v
                    count[w] = 0
                count[w] += 1
                if count[w] != deg_v:
                    continue
                # N(v) ⊆ N[w]; resolve direction per Def. 2.
                deg_w = graph.degree(w)
                if deg_w > deg_v or (deg_w == deg_v and w < v):
                    yield (w, v)


def _closed_neighborhood_except(graph: Graph, x: int, v: int):
    for w in graph.neighbors(x):
        if w != v:
            yield w
    yield x


def dominance_dag(graph: Graph) -> dict[int, list[int]]:
    """``dag[u]`` = sorted vertices dominated by ``u`` (may be empty).

    The relation is a strict partial order, so the result is a DAG (in
    successor-map form) and is transitively closed.
    """
    dag: dict[int, list[int]] = {u: [] for u in graph.vertices()}
    for dominator, dominated in dominance_pairs(graph):
        dag[dominator].append(dominated)
    for successors in dag.values():
        successors.sort()
    return dag


def maximal_elements(graph: Graph) -> tuple[int, ...]:
    """Vertices that appear on no pair's dominated side (= the skyline)."""
    dominated: set[int] = set()
    for _dominator, v in dominance_pairs(graph):
        dominated.add(v)
    return tuple(
        u for u in graph.vertices() if u not in dominated
    )


def verify_transitive(graph: Graph) -> bool:
    """Check transitive closure of the reported relation (test helper)."""
    dag = dominance_dag(graph)
    closed = {u: set(vs) for u, vs in dag.items()}
    for u, direct in closed.items():
        for v in direct:
            if not closed[v] <= direct:
                return False
    # Spot-check against the pairwise predicate as well.
    for u in graph.vertices():
        for w in two_hop_neighbors(graph, u):
            if dominates(graph, w, u) and u not in closed[w]:
                return False
    return True
