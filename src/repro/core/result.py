"""Result type shared by every skyline algorithm.

All algorithms return a :class:`SkylineResult` carrying the skyline
itself, the dominator map ``O(*)`` (the witness that justifies each
exclusion), and — for the filter–refine family — the candidate set ``C``.
Keeping the witnesses makes the result self-verifying: tests can check
``dominates(g, u, O(u))`` for every excluded ``u`` instead of trusting
the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.counters import SkylineCounters

__all__ = ["SkylineResult"]


@dataclass(frozen=True)
class SkylineResult:
    """Outcome of a neighborhood-skyline computation.

    Attributes
    ----------
    skyline:
        The sorted neighborhood skyline ``R``.
    dominator:
        ``dominator[u]`` is a vertex that dominates ``u`` (``u ≤ O(u)``),
        or ``u`` itself when ``u ∈ R``.  Note the witness is the *first*
        dominator found, not necessarily a skyline member.
    candidates:
        The candidate set ``C`` from the filter phase, when the algorithm
        computed one (``None`` for BaseSky and the naive reference).
    algorithm:
        Name of the producing algorithm, for reporting.
    counters:
        The instrumentation counters if the caller requested them.
    """

    skyline: tuple[int, ...]
    dominator: tuple[int, ...]
    candidates: Optional[tuple[int, ...]] = None
    algorithm: str = ""
    counters: Optional[SkylineCounters] = field(default=None, compare=False)

    @property
    def skyline_set(self) -> frozenset[int]:
        """The skyline as a frozenset for membership queries."""
        return frozenset(self.skyline)

    @property
    def size(self) -> int:
        """``|R|`` — the quantity plotted in the paper's Fig. 5/6."""
        return len(self.skyline)

    @property
    def candidate_size(self) -> Optional[int]:
        """``|C|`` when a filter phase ran, else ``None``."""
        return None if self.candidates is None else len(self.candidates)

    def __repr__(self) -> str:
        cand = "" if self.candidates is None else f", |C|={len(self.candidates)}"
        return (
            f"SkylineResult(algorithm={self.algorithm!r}, "
            f"|R|={len(self.skyline)}{cand})"
        )
