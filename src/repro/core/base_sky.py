"""``BaseSky`` — Algorithm 1 of the paper.

The baseline neighborhood-skyline algorithm, adapted from Brandes et
al.'s partial-order computation: for every not-yet-dominated vertex
``u``, walk its 2-hop neighborhood accumulating
``T(w) = |N(u) ∩ N[w]|``; the moment ``T(w)`` reaches ``deg(u)`` we know
``N(u) ⊆ N[w]`` and resolve the domination direction by degree and ID.

Faithfulness notes
------------------
* The paper re-initializes the size-``n`` array ``T`` for every outer
  vertex, which alone costs ``O(n²)``.  We keep ``T`` allocated once and
  pair it with a *version stamp* per entry, so the per-vertex reset is
  O(1) and the asymptotics match the paper's stated ``O(m · dmax)``.
  Output is identical.
* Each ``O(u)`` is overwritten at most once ("maintained once" in the
  paper) — a vertex is out of the skyline as soon as one dominator is
  known, and the strict-domination branch breaks out of the scan.
* The dominator array is a *witness of neighborhood inclusion*, not
  always of strict domination: in a rare interleaving (u gets strictly
  dominated mid-scan, then a mutual-inclusion partner ``w`` with
  ``w > u`` is met) the paper's line 14 records ``O(w) = u`` even though
  the tie-break says ``u`` does not dominate ``w``.  Membership in the
  skyline is still decided correctly — by transitivity ``w`` is
  genuinely dominated by ``u``'s own dominator — so we preserve the
  paper's behaviour and document the witness as inclusion-only.
"""

from __future__ import annotations

from typing import Optional

from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.core.result import SkylineResult
from repro.graph.adjacency import Graph

__all__ = ["base_sky"]


def base_sky(
    graph: Graph, *, counters: Optional[SkylineCounters] = None
) -> SkylineResult:
    """Compute the neighborhood skyline with Algorithm 1 (``BaseSky``).

    ``O(m · dmax)`` time, ``O(n + m)`` space.

    >>> from repro.graph.generators import complete_graph
    >>> base_sky(complete_graph(4)).skyline
    (0,)
    """
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    dominator = list(range(n))
    count = [0] * n
    stamp = [-1] * n
    neighbors = graph.neighbors

    for u in range(n):
        if dominator[u] != u:
            continue
        stats.vertices_examined += 1
        deg_u = graph.degree(u)
        strictly_dominated = False
        for v in neighbors(u):
            if strictly_dominated:
                break
            for w in _closed_neighborhood_except(graph, v, u):
                if stamp[w] != u:
                    stamp[w] = u
                    count[w] = 0
                count[w] += 1
                stats.counter_updates += 1
                if count[w] != deg_u:
                    continue
                # N(u) ⊆ N[w]: u is neighborhood-included by w.
                stats.pair_tests += 1
                deg_w = graph.degree(w)
                if deg_w == deg_u:
                    # Mutual inclusion; the smaller ID dominates (Def. 2).
                    # The scan continues either way so the remaining
                    # members of u's twin class still get marked.
                    if u > w and dominator[u] == u:
                        dominator[u] = w
                        stats.dominations_found += 1
                    elif dominator[w] == w:
                        dominator[w] = u
                        stats.dominations_found += 1
                else:
                    # deg_w > deg_u: strict domination of u by w; stop
                    # exploring the rest of N2(u) (paper, Sec. III-A).
                    if dominator[u] == u:
                        dominator[u] = w
                        stats.dominations_found += 1
                        strictly_dominated = True
                        break

    skyline = tuple(u for u in range(n) if dominator[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(dominator),
        candidates=None,
        algorithm="BaseSky",
        counters=counters,
    )


def _closed_neighborhood_except(graph: Graph, v: int, u: int):
    """Iterate ``N[v] \\ {u}``: v's neighbors except u, plus v itself."""
    for w in graph.neighbors(v):
        if w != u:
            yield w
    yield v
