"""``BaseCSet`` — comparison baseline: filter phase + BaseSky refine.

BaseCSet invokes :func:`~repro.core.filter_phase.filter_phase` to shrink
the search space to the candidate set ``C``, then runs the counting scan
of Algorithm 1 *only for the candidates* — no bloom filters.  It
isolates the benefit of the filter phase from the benefit of the bloom
refinement, which is exactly how the paper uses it in Exp-1 (time
``O(dmax · Σ_{u∈C} deg(u))``, per Sec. V-A).
"""

from __future__ import annotations

from typing import Optional

from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.core.filter_phase import filter_phase
from repro.core.result import SkylineResult
from repro.graph.adjacency import Graph

__all__ = ["base_cset_sky"]


def base_cset_sky(
    graph: Graph, *, counters: Optional[SkylineCounters] = None
) -> SkylineResult:
    """Compute the neighborhood skyline with the filter + count scheme."""
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    candidates, dominator = filter_phase(graph, counters=counters)

    count = [0] * n
    stamp = [-1] * n
    neighbors = graph.neighbors
    degree = graph.degree

    for u in candidates:
        if dominator[u] != u:
            continue
        stats.vertices_examined += 1
        deg_u = degree(u)
        strictly_dominated = False
        for v in neighbors(u):
            if strictly_dominated:
                break
            # Unlike Algorithm 1 this scan omits v's own N[v]
            # self-contribution: it only matters for 1-hop dominators,
            # which the filter phase has already excluded for u ∈ C.
            for w in neighbors(v):
                if w == u:
                    continue
                if stamp[w] != u:
                    stamp[w] = u
                    count[w] = 0
                count[w] += 1
                stats.counter_updates += 1
                if count[w] != deg_u:
                    continue
                stats.pair_tests += 1
                deg_w = degree(w)
                if deg_w == deg_u:
                    # Mutual inclusion: ID tie-break, as in Algorithm 1.
                    if u > w and dominator[u] == u:
                        dominator[u] = w
                        stats.dominations_found += 1
                    elif dominator[w] == w:
                        dominator[w] = u
                        stats.dominations_found += 1
                elif dominator[u] == u:
                    dominator[u] = w
                    stats.dominations_found += 1
                    strictly_dominated = True
                    break

    skyline = tuple(u for u in range(n) if dominator[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(dominator),
        candidates=tuple(candidates),
        algorithm="BaseCSet",
        counters=counters,
    )
