"""``Base2Hop`` — comparison baseline of the paper's Exp-1/Exp-2.

Base2Hop skips the filter phase: it first **materializes the full 2-hop
neighborhood of every vertex** and builds bloom filters for *all* of
``V``, then applies the same layered pruning/refine checks as
``FilterRefineSky``.  The point of the baseline is its memory behaviour:
storing ``N2(u)`` for every vertex costs ``O(Σ_u |N2(u)|)``, which blows
up on graphs with high-degree hubs (the paper reports out-of-memory on
WikiTalk) — this implementation deliberately keeps those lists alive for
the whole run so Exp-2 can observe the cost.
"""

from __future__ import annotations

from typing import Optional

from repro.bloom.vertex_filters import VertexBloomIndex
from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.core.filter_phase import closed_inclusion_over_edge
from repro.core.result import SkylineResult
from repro.graph.adjacency import Graph

__all__ = ["base_two_hop_sky"]


def _materialize_two_hop(graph: Graph) -> list[list[int]]:
    """``lists[u]`` = sorted distinct vertices at distance 1 or 2 from u."""
    lists: list[list[int]] = []
    for u in graph.vertices():
        seen = {u}
        for v in graph.neighbors(u):
            seen.add(v)
            seen.update(graph.neighbors(v))
        seen.discard(u)
        lists.append(sorted(seen))
    return lists


def base_two_hop_sky(
    graph: Graph,
    *,
    bloom_bits: Optional[int] = None,
    bits_per_element: int = 8,
    seed: int = 0,
    counters: Optional[SkylineCounters] = None,
) -> SkylineResult:
    """Compute the neighborhood skyline via materialized 2-hop lists.

    Same output as every other skyline algorithm; time is dominated by
    the ``O(Σ_u Σ_{v∈N(u)} deg(v))`` materialization and memory by the
    stored lists plus ``n`` bloom filters.
    """
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    dominator = list(range(n))
    two_hop = _materialize_two_hop(graph)

    blooms = VertexBloomIndex(
        graph,
        graph.vertices(),
        bits=bloom_bits,
        seed=seed,
        bits_per_element=bits_per_element,
    )
    filter_word = blooms.filter_word
    bit_of = blooms.bit_masks
    degree = graph.degree
    has_edge = graph.has_edge

    for u in range(n):
        if dominator[u] != u:
            continue
        stats.vertices_examined += 1
        deg_u = degree(u)
        bf_u = filter_word(u)
        nbrs_u = graph.neighbors(u)
        for w in two_hop[u]:
            if degree(w) < deg_u:
                stats.degree_skips += 1
                continue
            if dominator[w] != w:
                stats.dominated_skips += 1
                continue
            stats.pair_tests += 1
            if has_edge(u, w):
                # 1-hop pair: the subset bloom pre-check would be unsound
                # here (w's own bit is in BF(u) but never in BF(w)), so
                # test N(u)\{w} ⊆ N(w) exactly via a sorted merge.
                stats.nbr_checks += 1
                if not closed_inclusion_over_edge(graph, u, w):
                    continue
            else:
                bf_w = filter_word(w)
                if bf_u & bf_w != bf_u:
                    stats.bloom_subset_rejects += 1
                    continue
                dominated_by_w = True
                for x in nbrs_u:
                    stats.bloom_member_checks += 1
                    if not (bf_w & bit_of[x]):
                        stats.bloom_member_rejects += 1
                        dominated_by_w = False
                        break
                    stats.nbr_checks += 1
                    if not has_edge(w, x):
                        stats.bloom_false_positives += 1
                        dominated_by_w = False
                        break
                if not dominated_by_w:
                    continue
            if degree(w) == deg_u:
                if u > w and dominator[u] == u:
                    dominator[u] = w
                    stats.dominations_found += 1
                elif dominator[w] == w:
                    dominator[w] = u
                    stats.dominations_found += 1
            else:
                if dominator[u] == u:
                    dominator[u] = w
                    stats.dominations_found += 1
                    break

    skyline = tuple(u for u in range(n) if dominator[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(dominator),
        candidates=None,
        algorithm="Base2Hop",
        counters=counters,
    )
