"""Incremental skyline maintenance under edge updates.

The paper computes the skyline of a static graph; real deployments see
edges arrive and disappear.  :class:`DynamicSkyline` maintains the
skyline across single-edge insertions and deletions by re-deciding only
the vertices whose domination status can actually change.

Locality argument (why the affected set is small): whether ``x`` is
dominated depends only on (a) ``N(x)``, (b) the neighborhoods ``N(w)``
of its 2-hop neighbors, and (c) which vertices *are* 2-hop neighbors.
Flipping the edge ``(u, v)`` changes only ``N(u)`` and ``N(v)``, so a
vertex ``x`` is affected only if ``u`` or ``v`` lies in
``{x} ∪ N2(x)`` — equivalently, ``x`` lies within two hops of ``u`` or
``v`` in the old *or* new graph.  Each affected vertex is re-decided by
a direct scan of its 2-hop neighborhood.

The structure is deliberately simple (adjacency sets plus per-vertex
recompute); for a flood of updates, batch them and recompute with
:func:`~repro.core.filter_refine.filter_refine_sky` instead.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph

__all__ = ["DynamicSkyline"]


class DynamicSkyline:
    """Maintains the neighborhood skyline of an evolving graph.

    >>> from repro.graph.generators import path_graph
    >>> d = DynamicSkyline(path_graph(4))
    >>> sorted(d.skyline)
    [1, 2]
    >>> d.insert_edge(0, 3)   # close the path into a cycle
    >>> sorted(d.skyline)
    [0, 1, 2, 3]
    """

    def __init__(self, graph: Graph):
        self._n = graph.num_vertices
        self._adj: list[set[int]] = [
            set(graph.neighbors(u)) for u in graph.vertices()
        ]
        self._dominated = bytearray(self._n)
        for u in range(self._n):
            self._dominated[u] = self._is_dominated(u)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def skyline(self) -> tuple[int, ...]:
        """The current neighborhood skyline, sorted."""
        return tuple(
            u for u in range(self._n) if not self._dominated[u]
        )

    def in_skyline(self, u: int) -> bool:
        """``True`` iff ``u`` is currently undominated."""
        return not self._dominated[u]

    def to_graph(self) -> Graph:
        """Snapshot the current edge set as an immutable :class:`Graph`."""
        edges = [
            (u, v)
            for u in range(self._n)
            for v in self._adj[u]
            if u < v
        ]
        return Graph.from_edges(self._n, edges)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Add the edge ``(u, v)`` and repair the skyline."""
        self._check(u, v)
        if v in self._adj[u]:
            raise GraphFormatError(f"edge ({u}, {v}) already present")
        affected = self._affected(u, v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        affected |= self._affected(u, v)
        self._repair(affected)

    def delete_edge(self, u: int, v: int) -> None:
        """Remove the edge ``(u, v)`` and repair the skyline."""
        self._check(u, v)
        if v not in self._adj[u]:
            raise GraphFormatError(f"edge ({u}, {v}) not present")
        affected = self._affected(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        affected |= self._affected(u, v)
        self._repair(affected)

    def apply(self, insertions: Iterable[tuple[int, int]] = (),
              deletions: Iterable[tuple[int, int]] = ()) -> None:
        """Apply a batch of updates (insertions first, then deletions)."""
        for u, v in insertions:
            self.insert_edge(u, v)
        for u, v in deletions:
            self.delete_edge(u, v)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check(self, u: int, v: int) -> None:
        if u == v:
            raise GraphFormatError(f"self-loop at vertex {u}")
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphFormatError(
                f"edge ({u}, {v}) out of range for n={self._n}"
            )

    def _affected(self, u: int, v: int) -> set[int]:
        """Vertices within two hops of ``u`` or ``v`` (current adjacency)."""
        result = {u, v}
        for endpoint in (u, v):
            for x in self._adj[endpoint]:
                result.add(x)
                result.update(self._adj[x])
        return result

    def _repair(self, affected: set[int]) -> None:
        for x in affected:
            self._dominated[x] = self._is_dominated(x)

    def _is_dominated(self, x: int) -> bool:
        """Direct Def.-2 scan of x's 2-hop neighborhood."""
        adj = self._adj
        nbrs_x = adj[x]
        deg_x = len(nbrs_x)
        if deg_x == 0:
            return False  # isolated vertices stay (package convention)
        seen = {x}
        for v in nbrs_x:
            for w in adj[v] | {v}:
                if w in seen:
                    continue
                seen.add(w)
                nbrs_w = adj[w]
                deg_w = len(nbrs_w)
                if deg_w < deg_x:
                    continue
                # N(x) ⊆ N[w]?
                if not nbrs_x <= (nbrs_w | {w}):
                    continue
                if deg_w > deg_x:
                    return True
                # Equal degree: mutual inclusion, ID tie-break.
                if w < x:
                    return True
        return False
