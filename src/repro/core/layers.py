"""Dominance-layer decomposition ("onion peeling" of the skyline).

A natural extension of the skyline: rank every vertex by its depth in
the domination order.  Layer 1 is the neighborhood skyline; a dominated
vertex sits one layer below its deepest dominator:

    layer(u) = 1                          if nothing dominates u
    layer(u) = 1 + max layer(dominators)  otherwise

i.e. the longest chain of dominations above the vertex.  The layer
number is a structural "importance depth" — the paper's applications
use only layer 1, but the full decomposition answers follow-up
questions like *who would enter the skyline if its dominators left?*
(used, for example, by the top-k clique search's re-entry step in
spirit) and gives a total quality ordering for pruning heuristics.

Computed by a longest-path pass over the dominance DAG of
:mod:`repro.core.partial_order`.
"""

from __future__ import annotations

from repro.core.partial_order import dominance_dag
from repro.graph.adjacency import Graph

__all__ = ["dominance_layers", "layer_sets"]


def dominance_layers(graph: Graph) -> list[int]:
    """``layers[u]`` = 1-based dominance depth of every vertex.

    ``O(m · dmax)`` for the pair enumeration plus linear DAG work.
    """
    dag = dominance_dag(graph)
    n = graph.num_vertices
    indegree = [0] * n
    for successors in dag.values():
        for v in successors:
            indegree[v] += 1
    # indegree[v] counts v's dominators; sources are the skyline.
    layers = [1] * n
    queue = [u for u in range(n) if indegree[u] == 0]
    while queue:
        u = queue.pop()
        depth = layers[u] + 1
        for v in dag[u]:
            if depth > layers[v]:
                layers[v] = depth
            indegree[v] -= 1
            if indegree[v] == 0:
                queue.append(v)
    return layers


def layer_sets(graph: Graph) -> list[tuple[int, ...]]:
    """The decomposition as sorted vertex tuples, outermost first.

    ``layer_sets(g)[0]`` equals the neighborhood skyline.
    """
    layers = dominance_layers(graph)
    if not layers:
        return []
    buckets: list[list[int]] = [[] for _ in range(max(layers))]
    for u, depth in enumerate(layers):
        buckets[depth - 1].append(u)
    return [tuple(bucket) for bucket in buckets]
