"""Neighborhood-skyline computation — the paper's core contribution.

Most callers want :func:`~repro.core.api.neighborhood_skyline`; the
individual algorithms (BaseSky, FilterRefineSky, …) are exported for
benchmarks and tests that compare them directly.
"""

from repro.core.approx import approx_skyline, epsilon_dominates
from repro.core.api import (
    ALGORITHMS,
    group_centrality_maximize,
    neighborhood_candidates,
    neighborhood_skyline,
    serve,
)
from repro.core.base_sky import base_sky
from repro.core.bitset_refine import filter_refine_bitset_sky
from repro.core.counters import SkylineCounters
from repro.core.cset import base_cset_sky
from repro.core.dynamic import DynamicSkyline
from repro.core.domination import (
    dominates,
    edge_constrained_dominates,
    edge_constrained_included,
    neighborhood_included,
    two_hop_neighbors,
)
from repro.core.filter_phase import filter_phase
from repro.core.filter_refine import filter_refine_sky
from repro.core.join_sky import lc_join_sky
from repro.core.layers import dominance_layers, layer_sets
from repro.core.naive import naive_skyline
from repro.core.partial_order import (
    dominance_dag,
    dominance_pairs,
    maximal_elements,
)
from repro.core.result import SkylineResult
from repro.core.two_hop import base_two_hop_sky
from repro.core.verify import SkylineVerificationError, verify_skyline

__all__ = [
    "ALGORITHMS",
    "approx_skyline",
    "epsilon_dominates",
    "group_centrality_maximize",
    "neighborhood_candidates",
    "neighborhood_skyline",
    "serve",
    "base_sky",
    "SkylineCounters",
    "base_cset_sky",
    "DynamicSkyline",
    "dominates",
    "edge_constrained_dominates",
    "edge_constrained_included",
    "neighborhood_included",
    "two_hop_neighbors",
    "filter_phase",
    "filter_refine_bitset_sky",
    "filter_refine_sky",
    "lc_join_sky",
    "dominance_layers",
    "layer_sets",
    "naive_skyline",
    "dominance_dag",
    "dominance_pairs",
    "maximal_elements",
    "SkylineResult",
    "base_two_hop_sky",
    "SkylineVerificationError",
    "verify_skyline",
]
