"""``FilterRefineSky`` — Algorithm 3: the paper's main algorithm.

Two phases:

1. **Filter** (:func:`~repro.core.filter_phase.filter_phase`): prune
   every vertex with an edge-constrained dominator; the survivors form
   the candidate set ``C ⊇ R`` (Lemma 1).
2. **Refine**: for each candidate ``u``, look for a *plain* dominator
   among its 2-hop neighborhood.  Because the filter phase already ruled
   out 1-hop dominators, only distance-2 vertices can still dominate —
   though the scan enumerates ``w ∈ N(v) \\ {u}`` for ``v ∈ N(u)`` as in
   the paper, and re-encountered 1-hop vertices simply fail the check.

The refine test for a pair ``(u, w)`` is layered cheapest-first, exactly
as lines 12–19 of the paper:

* ``deg(w) < deg(u)``  → ``w`` cannot dominate ``u``;
* ``O(w) ≠ w``         → ``w`` is itself dominated; by transitivity of
  the vicinal pre-order its dominator will be met instead;
* whole-filter check ``BF(u) & BF(w) = BF(u)`` — necessary for
  ``N(u) ⊆ N(w)``;
* per-neighbor ``BFcheck`` then exact ``NBRcheck`` for each
  ``x ∈ N(u) \\ {v}`` (bloom false positives are corrected here, so the
  final answer is exact).

When a dominator ``w`` survives all checks: strict domination
(``deg(w) > deg(u)``) removes ``u`` and stops its scan; mutual inclusion
(equal degrees) applies the ID tie-break and continues scanning.

The refine loop itself is exposed as :func:`bloom_refine_pass` so the
bitset engine (:mod:`repro.core.bitset_refine`) can reuse it verbatim
when its dense/sparse cutover falls back to the bloom path — same scan,
same counters, no second filter phase.
"""

from __future__ import annotations

from typing import Optional

from repro.bloom.vertex_filters import VertexBloomIndex
from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.core.filter_phase import filter_phase
from repro.core.result import SkylineResult
from repro.graph.adjacency import Graph

__all__ = ["filter_refine_sky", "bloom_refine_pass"]


def bloom_refine_pass(
    graph: Graph,
    candidates: list[int],
    dominator: list[int],
    blooms: VertexBloomIndex,
    stats: SkylineCounters,
    *,
    exact: bool = True,
) -> None:
    """Run Algorithm 3's refine loop in place over ``dominator``.

    Per-pair ``degree(w)`` and ``filter_word(w)`` lookups are hoisted
    into flat arrays built once per pass — ``deg`` over all vertices
    (the degree skip fires for arbitrary 2-hop ``w``), ``fw`` filled
    for the candidates (the only vertices whose filters are ever read:
    everyone else fails the ``O(w) = w`` check first).  Pure lookup
    motion; the counter stream is identical to the unhoisted scan.
    """
    n = graph.num_vertices
    bit_of = blooms.bit_masks
    neighbors = graph.neighbors
    # On CSR-backed graphs the 2-hop scan reads rows through zero-copy
    # ndarray slices instead of materializing (and caching) a tuple per
    # visited vertex — the refine pass touches far more rows than it
    # revisits, so the per-row allocation was pure overhead.  Writes to
    # ``dominator`` are wrapped in int() so results stay plain-int.
    row_of = getattr(graph, "neighbors_array", None)
    if row_of is None:
        row_of = neighbors
    has_edge = graph.has_edge
    # degrees() reads indptr on CSR-backed graphs — no row
    # materialization just to measure lengths.
    deg = graph.degrees()
    filter_word = blooms.filter_word
    fw = [0] * n
    for u in candidates:
        fw[u] = filter_word(u)

    for u in candidates:
        if dominator[u] != u:
            continue
        stats.vertices_examined += 1
        deg_u = deg[u]
        bf_u = fw[u]
        nbrs_u = neighbors(u)
        strictly_dominated = False
        for v in nbrs_u:
            if strictly_dominated:
                break
            for w in row_of(v):
                if w == u:
                    continue
                if deg[w] < deg_u:
                    stats.degree_skips += 1
                    continue
                if dominator[w] != w:
                    # w is dominated; its dominator covers u transitively.
                    stats.dominated_skips += 1
                    continue
                stats.pair_tests += 1
                bf_w = fw[w]
                if bf_u & bf_w != bf_u:
                    # Some neighbor of u is provably missing from N(w).
                    stats.bloom_subset_rejects += 1
                    continue
                dominated_by_w = True
                for x in nbrs_u:
                    if x == v:
                        continue
                    stats.bloom_member_checks += 1
                    if not (bf_w & bit_of[x]):
                        # BFcheck: x surely not in N(w).
                        stats.bloom_member_rejects += 1
                        dominated_by_w = False
                        break
                    if exact:
                        stats.nbr_checks += 1
                        if not has_edge(w, x):
                            # NBRcheck caught a bloom false positive.
                            stats.bloom_false_positives += 1
                            dominated_by_w = False
                            break
                if not dominated_by_w:
                    continue
                # N(u) ⊆ N[w] certified (v itself is adjacent to w).
                if deg[w] == deg_u:
                    # Mutual inclusion: smaller ID dominates; keep
                    # scanning either way (paper lines 22-25).
                    if u > w and dominator[u] == u:
                        dominator[u] = int(w)
                        stats.dominations_found += 1
                elif dominator[u] == u:
                    dominator[u] = int(w)
                    stats.dominations_found += 1
                    strictly_dominated = True
                    break


def filter_refine_sky(
    graph: Graph,
    *,
    bloom_bits: Optional[int] = None,
    bits_per_element: int = 8,
    seed: int = 0,
    counters: Optional[SkylineCounters] = None,
    exact: bool = True,
) -> SkylineResult:
    """Compute the neighborhood skyline with ``FilterRefineSky``.

    Parameters
    ----------
    graph:
        The input graph.
    bloom_bits:
        Explicit shared bloom width; default derives from ``dmax`` like
        the paper's ``BK`` scheme (see
        :func:`~repro.bloom.vertex_filters.width_for_max_degree`).
    bits_per_element:
        Sizing knob used when ``bloom_bits`` is not given.
    seed:
        Bloom hash seed.
    counters:
        Optional instrumentation sink.
    exact:
        When ``False``, skip the exact ``NBRcheck`` and trust the bloom
        filter (the "approximate skyline" discussed as future work in the
        paper's Sec. III remark).  The result is then a *subset* of the
        true skyline: bloom false positives can only cause extra
        vertices to look dominated, never the reverse.

    Worst-case time ``O(m + dmax · Σ_{u∈C} deg(u)²)`` and space
    ``O(m + |C| · dmax)`` (Theorem 3).
    """
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    candidates, dominator = filter_phase(graph, counters=counters)

    blooms = VertexBloomIndex(
        graph,
        candidates,
        bits=bloom_bits,
        seed=seed,
        bits_per_element=bits_per_element,
    )
    bloom_refine_pass(
        graph, candidates, dominator, blooms, stats, exact=exact
    )

    skyline = tuple(u for u in range(n) if dominator[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(dominator),
        candidates=tuple(candidates),
        algorithm="FilterRefineSky" if exact else "FilterRefineSky~approx",
        counters=counters,
    )
