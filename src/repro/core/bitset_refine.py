"""``FilterRefineSkyBitset`` — Algorithm 3 with a packed-bitset refine kernel.

Identical phase structure to :func:`~repro.core.filter_refine.
filter_refine_sky` — same filter phase, same candidate scan order, same
Def. 2 tie-breaks — but the per-pair inclusion test is a word-packed
set operation instead of a bloom-probe chain:

* Candidate adjacency rows are packed into ``uint64`` words by
  :class:`~repro.graph.bitmatrix.CandidateBitMatrix` (``O(|C| · n/64)``
  words — rows exist only for the filter-phase survivors).
* The whole-subset test ``N(u) \\ {v} ⊆ N(w)`` is a single
  word-parallel AND-NOT over the packed rows (``row_u & ~row_w``),
  bypassing the bloom index entirely.  No hashing, no false positives,
  no per-neighbor ``NBRcheck`` — the test is exact by construction.

  The via-vertex exclusion is *vacuous* on every pair the scan can
  reach: ``w`` is enumerated from ``N(v)``, so ``v ∈ N(w)`` and bit
  ``v`` can never survive ``row_u & ~row_w``.  Hence the verdict is
  independent of which common neighbor ``v`` led to ``w``, the kernel
  drops the exclusion mask entirely — and caches the verdict: a ``w``
  re-encountered through a second common neighbor is settled by a
  stamp lookup instead of a second word sweep.  (The bloom path cannot
  cache this way without changing its counter stream, which the
  differential suite pins.)
* Each vertex ``v``'s neighbor list is pre-restricted to filter-phase
  candidates: every non-candidate ``w`` fails the ``O(w) = w`` check
  unconditionally (filter-phase dominations are frozen before refine
  starts), so the scan skips them wholesale instead of re-testing them
  for every ``u``.  On hub-heavy graphs this removes the bulk of the
  inner-loop iterations.

Output equivalence
------------------
The bloom path's *accept* condition for a pair — after all bloom
rejects are corrected by ``NBRcheck`` — is exactly
``N(u) \\ {v} ⊆ N(w)``, which is exactly the bitset test.  Pairs are
enumerated in the same order (candidate neighbor sublists preserve the
ascending order of ``N(v)``), skips read the same evolving dominator
array, and the settle/tie-break/early-exit logic is copied line for
line — so ``skyline``, ``dominator`` and ``candidates`` are
bit-for-bit the sequential bloom scan's, which the differential suite
pins to ``naive_sky``.

Counter semantics
-----------------
``vertices_examined``, ``pair_tests`` and ``dominations_found`` match
the bloom path exactly (the same pairs reach the test in the same
order).  ``degree_skips``/``dominated_skips`` are tallied in bulk per
visited neighbor list for the pre-excluded non-candidates (two
bisects over a degree-sorted array), so their totals match the bloom
path except when a strict domination exits a scan mid-list — the bulk
tally covers the whole list, the bloom path stopped counting at the
exit.  Totals are deterministic, and never undercount.  All ``bloom_*``
counters and ``nbr_checks`` stay zero: those probes do not exist on
this path.

Dense/sparse cutover
--------------------
Packing pays ``O(|C| · n/64)`` memory and setup.  When
``|C| · ⌈n/64⌉`` exceeds ``word_budget`` (or numpy is unavailable) the
algorithm falls back to the bloom refine pass — same filter phase, same
result, ``counters.extra["refine_path"] == "bloom-fallback"`` — so huge
sparse graphs never pay the packing cost.  The default budget of 2²⁴
words (128 MiB) admits every registry instance and cuts over around
web-scale inputs (e.g. ``|C| = 200k`` on ``n = 2.4M`` needs ~7.5G
words).

A second, *shape* cutover handles the opposite corner: candidate-dense
inputs.  The kernel's advantage is proportional to the non-candidate
fraction it skips wholesale, and on ``dblp_sim`` (~48 % candidates)
the measured refine speedup inverts to 0.85× — packing and group
setup outweigh the cheaper pair tests.  :func:`density_prefers_bloom`
routes such inputs to the bloom pass automatically: candidate sets of
at least :data:`DENSITY_FALLBACK_MIN_CANDIDATES` vertices whose
density ``|C|/n`` exceeds :data:`DENSITY_FALLBACK_THRESHOLD` fall
back, with the reason and the offending density recorded in
``counters.extra``.  The size floor keeps small dense graphs (karate:
18 candidates at density 0.53) on the bitset path, where packing is
negligible and the exact word test still wins.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

from repro.bloom.vertex_filters import VertexBloomIndex
from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.core.filter_phase import filter_phase
from repro.core.filter_refine import bloom_refine_pass
from repro.core.result import SkylineResult
from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import (
    DEFAULT_WORD_BUDGET,
    HAVE_NUMPY,
    CandidateBitMatrix,
    matrix_words,
    validate_word_budget,
)

__all__ = [
    "BitsetScanContext",
    "DEFAULT_WORD_BUDGET",
    "DENSITY_FALLBACK_MIN_CANDIDATES",
    "DENSITY_FALLBACK_THRESHOLD",
    "bitset_refine_pass",
    "density_prefers_bloom",
    "filter_refine_bitset_sky",
]

#: Candidate-density fallback threshold: above this candidate fraction
#: the prefiltering no longer thins the 2-hop lists enough for packing
#: + group setup to pay for themselves (the measured ``dblp_sim``
#: regression sits near 0.48; the best bitset win, ``wikitalk_sim``, at
#: 0.05; the calibration margin below the regressor cluster is ~0.44).
DENSITY_FALLBACK_THRESHOLD = 0.35

#: Density alone means nothing on tiny candidate sets — packing a few
#: hundred rows is microseconds, and small dense graphs (karate packs
#: 18 rows at density 0.53) still win on the cheaper pair test.  The
#: heuristic only applies at or above this candidate count.
DENSITY_FALLBACK_MIN_CANDIDATES = 512


def density_prefers_bloom(num_candidates: int, num_vertices: int) -> bool:
    """Whether the candidate-density heuristic routes refine to bloom.

    ``True`` when the candidate set is both large enough for packing
    cost to matter (``DENSITY_FALLBACK_MIN_CANDIDATES``) and dense
    enough relative to ``num_vertices``
    (``DENSITY_FALLBACK_THRESHOLD``) that the bitset kernel's measured
    advantage inverts — see the module docstring's cutover section.
    """
    if num_candidates < DENSITY_FALLBACK_MIN_CANDIDATES:
        return False
    return num_candidates > DENSITY_FALLBACK_THRESHOLD * num_vertices


class BitsetScanContext:
    """Shared lookup state for bitset refine scans.

    Built once per pass (or once per worker process) from the graph,
    the filter-phase output and the packed matrix; the scan functions
    (:func:`bitset_refine_pass` here, the status/witness scans in
    :mod:`repro.parallel.worker`) only read it.  ``cand_groups[v]``
    holds the candidate members of ``N(v)`` as pre-bundled triples
    ``(w, deg(w), ~row_w)`` — everything the inner loop touches —
    built in one edge pass over the candidate set (ascending-ID order
    within each group falls out of the ascending candidate order).
    ``noncand_degs[v]`` holds the sorted degrees of the non-candidate
    members, which drive the bulk skip tallies; it is built only when
    ``instrumented`` — uninstrumented runs skip the bookkeeping
    entirely.
    """

    __slots__ = (
        "graph",
        "deg",
        "row_int",
        "comp",
        "cand_groups",
        "noncand_degs",
        "instrumented",
        "seen",
        "stamp",
    )

    def __init__(
        self,
        graph: Graph,
        candidates,
        matrix: CandidateBitMatrix,
        *,
        instrumented: bool = True,
    ):
        self.graph = graph
        n = graph.num_vertices
        neighbors = graph.neighbors
        # degrees() rather than len(neighbors()): on a lazy CSR view
        # (shared-memory workers) it reads indptr without materializing
        # every adjacency row.
        deg = graph.degrees()
        self.deg = deg
        self.row_int = matrix.int_rows()
        comp = matrix.complement_int_rows()
        self.comp = comp
        cand_groups: list[list] = [[] for _ in range(n)]
        for u in candidates:
            triple = (u, deg[u], comp[u])
            for v in neighbors(u):
                cand_groups[v].append(triple)
        self.cand_groups = cand_groups
        self.instrumented = instrumented
        if instrumented:
            is_cand = bytearray(n)
            for u in candidates:
                is_cand[u] = 1
            noncand_degs: list = [None] * n
            for v in range(n):
                degs = sorted(
                    deg[w] for w in neighbors(v) if not is_cand[w]
                )
                noncand_degs[v] = degs
            self.noncand_degs = noncand_degs
        else:
            self.noncand_degs = None
        #: Verdict-dedup stamps: ``seen[w] == stamp`` marks ``w`` as
        #: already tested during the current outer scan.  Bump
        #: :attr:`stamp` (via :meth:`next_stamp`) once per outer vertex.
        self.seen = [0] * n
        self.stamp = 0

    def next_stamp(self) -> int:
        """A fresh stamp value for one outer-vertex scan."""
        self.stamp += 1
        return self.stamp


def bitset_refine_pass(
    ctx: BitsetScanContext,
    candidates,
    dominator: list[int],
    stats: SkylineCounters,
) -> None:
    """Run the refine loop in place over ``dominator`` (bitset kernel).

    Mirrors :func:`~repro.core.filter_refine.bloom_refine_pass`
    control flow exactly — see the module docstring for the
    bit-for-bit equivalence argument.  Dispatches to an uninstrumented
    scan when no counters are collected: the two scans make identical
    ``dominator`` updates (pinned by the differential suite), the fast
    one just drops the per-iteration counter writes, which are a
    measurable fraction of the loop on large instances.
    """
    if ctx.instrumented and stats is not NULL_COUNTERS:
        _counted_scan(ctx, candidates, dominator, stats)
    else:
        _fast_scan(ctx, candidates, dominator)


def _counted_scan(
    ctx: BitsetScanContext,
    candidates,
    dominator: list[int],
    stats: SkylineCounters,
) -> None:
    neighbors = ctx.graph.neighbors
    deg = ctx.deg
    row_int = ctx.row_int
    cand_groups = ctx.cand_groups
    noncand_degs = ctx.noncand_degs
    seen = ctx.seen

    for u in candidates:
        if dominator[u] != u:
            continue
        stats.vertices_examined += 1
        stamp = ctx.next_stamp()
        deg_u = deg[u]
        row_u = row_int[u]
        strictly_dominated = False
        for v in neighbors(u):
            if strictly_dominated:
                break
            noncand = noncand_degs[v]
            if noncand:
                below = bisect_left(noncand, deg_u)
                stats.degree_skips += below
                stats.dominated_skips += len(noncand) - below
            for w, deg_w, comp_w in cand_groups[v]:
                if w == u:
                    continue
                if deg_w < deg_u:
                    stats.degree_skips += 1
                    continue
                if dominator[w] != w:
                    stats.dominated_skips += 1
                    continue
                stats.pair_tests += 1
                if seen[w] == stamp:
                    # Verdict cached: a failing w stays failing, a
                    # passing mutual w already applied its (idempotent)
                    # tie-break, a passing strict w already broke out.
                    continue
                seen[w] = stamp
                if row_u & comp_w:
                    # Some neighbor of u is missing from N(w).  The
                    # via-vertex needs no exclusion: v ∈ N(w) always.
                    continue
                if deg_w == deg_u:
                    if u > w and dominator[u] == u:
                        dominator[u] = w
                        stats.dominations_found += 1
                elif dominator[u] == u:
                    dominator[u] = w
                    stats.dominations_found += 1
                    strictly_dominated = True
                    break


def _fast_scan(
    ctx: BitsetScanContext,
    candidates,
    dominator: list[int],
) -> None:
    # Same updates as _counted_scan with the counter writes removed;
    # the skip ladder folds into one short-circuit test.
    neighbors = ctx.graph.neighbors
    deg = ctx.deg
    row_int = ctx.row_int
    cand_groups = ctx.cand_groups
    seen = ctx.seen

    for u in candidates:
        if dominator[u] != u:
            continue
        stamp = ctx.next_stamp()
        deg_u = deg[u]
        row_u = row_int[u]
        strictly_dominated = False
        for v in neighbors(u):
            if strictly_dominated:
                break
            for w, deg_w, comp_w in cand_groups[v]:
                if (
                    w == u
                    or deg_w < deg_u
                    or dominator[w] != w
                    or seen[w] == stamp
                ):
                    continue
                seen[w] = stamp
                if row_u & comp_w:
                    continue
                if deg_w == deg_u:
                    if u > w and dominator[u] == u:
                        dominator[u] = w
                elif dominator[u] == u:
                    dominator[u] = w
                    strictly_dominated = True
                    break


def filter_refine_bitset_sky(
    graph: Graph,
    *,
    word_budget: Optional[int] = None,
    bloom_bits: Optional[int] = None,
    bits_per_element: int = 8,
    seed: int = 0,
    counters: Optional[SkylineCounters] = None,
    density_fallback: bool = True,
) -> SkylineResult:
    """Compute the neighborhood skyline with the packed-bitset refine.

    Parameters
    ----------
    graph:
        The input graph.
    word_budget:
        Dense/sparse cutover: when ``|C| · ⌈n/64⌉`` exceeds this many
        ``uint64`` words, refine falls back to the bloom path instead
        of packing (``None`` → :data:`DEFAULT_WORD_BUDGET`; budgets
        ``<= 0`` are rejected — see
        :func:`repro.graph.bitmatrix.validate_word_budget`).  Within
        budget, large candidate-dense sets fall back too — see
        :func:`density_prefers_bloom`.
    bloom_bits / bits_per_element / seed:
        Bloom sizing for the fallback path only; ignored when the
        bitset kernel runs.
    counters:
        Optional instrumentation sink.  ``counters.extra["refine_path"]``
        records which side of the cutover ran; on the bitset side
        ``counters.extra["bitset_words"]`` records the packed size, on
        a fallback ``"bitset_fallback_reason"`` records which cutover
        fired (``"word-budget"`` or ``"candidate-density"``, the
        latter with ``"candidate_density"`` holding ``|C|/n``).
    density_fallback:
        ``False`` disables the candidate-density cutover (the word
        budget still applies) — for benchmarks that measure the
        packed kernel on inputs the heuristic would route away.

    The result is always exact and bit-for-bit equal to
    :func:`~repro.core.filter_refine.filter_refine_sky` (there is no
    approximate variant: the kernel has no bloom error to trade away).
    """
    word_budget = validate_word_budget(word_budget)
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    candidates, dominator = filter_phase(graph, counters=counters)

    words_needed = matrix_words(len(candidates), n)
    fallback_reason = None
    if not HAVE_NUMPY or words_needed > word_budget:
        fallback_reason = "word-budget"
    elif density_fallback and density_prefers_bloom(len(candidates), n):
        fallback_reason = "candidate-density"
    use_bitset = fallback_reason is None

    if use_bitset:
        matrix = CandidateBitMatrix.from_graph(graph, candidates)
        ctx = BitsetScanContext(
            graph, candidates, matrix, instrumented=counters is not None
        )
        bitset_refine_pass(ctx, candidates, dominator, stats)
        algorithm = "FilterRefineSkyBitset"
        if counters is not None:
            counters.extra["refine_path"] = "bitset"
            counters.extra["bitset_words"] = matrix.memory_words()
    else:
        blooms = VertexBloomIndex(
            graph,
            candidates,
            bits=bloom_bits,
            seed=seed,
            bits_per_element=bits_per_element,
        )
        bloom_refine_pass(graph, candidates, dominator, blooms, stats)
        algorithm = "FilterRefineSkyBitset(bloom-fallback)"
        if counters is not None:
            counters.extra["refine_path"] = "bloom-fallback"
            counters.extra["bitset_fallback_reason"] = fallback_reason
            if fallback_reason == "word-budget":
                counters.extra["bitset_words_over_budget"] = words_needed
            else:
                counters.extra["candidate_density"] = (
                    len(candidates) / n if n else 0.0
                )

    skyline = tuple(u for u in range(n) if dominator[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(dominator),
        candidates=tuple(candidates),
        algorithm=algorithm,
        counters=counters,
    )
