"""Instrumentation counters for the skyline algorithms.

The paper's efficiency arguments are about *work avoided*: fewer
candidate vertices examined, comparisons cut short by the bloom filter,
false positives corrected by ``NBRcheck``.  Every skyline algorithm
accepts an optional :class:`SkylineCounters` and increments it as it
runs, so benchmarks (and the bloom ablation) can report those quantities
directly instead of inferring them from wall-clock time.

Counting costs a little time, so the algorithms use the null-object
pattern: when no counter is supplied they receive :data:`NULL_COUNTERS`,
whose increments are cheap attribute writes on a shared throwaway — no
``if counters is not None`` branches in the hot loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["SkylineCounters", "NULL_COUNTERS"]


@dataclass
class SkylineCounters:
    """Mutable tally of the work a skyline computation performed.

    Attributes
    ----------
    vertices_examined:
        Outer-loop vertices actually processed (not skipped by the
        ``O(u) != u`` early-out).
    counter_updates:
        ``T(w)`` increments (Alg. 1/2) — the dominant term of BaseSky.
    pair_tests:
        Candidate dominator pairs ``(u, w)`` whose inclusion was tested.
    degree_skips:
        Pairs discarded by the ``deg(w) < deg(u)`` test.
    dominated_skips:
        Pairs discarded because the potential dominator was itself
        already dominated (``O(w) != w``).
    bloom_subset_rejects:
        Pairs discarded by the whole-filter ``BF(u) & BF(w) != BF(u)``
        pre-check (Alg. 3 line 14).
    bloom_member_checks / bloom_member_rejects:
        ``BFcheck`` invocations and the ones that proved non-membership.
    nbr_checks:
        Exact adjacency-list validations (``NBRcheck``).
    bloom_false_positives:
        ``BFcheck`` said "maybe" but ``NBRcheck`` said no — the quantity
        bounded by Lemma 2.
    dominations_found:
        ``O(u)`` assignments (each vertex leaves the skyline at most once).
    """

    vertices_examined: int = 0
    counter_updates: int = 0
    pair_tests: int = 0
    degree_skips: int = 0
    dominated_skips: int = 0
    bloom_subset_rejects: int = 0
    bloom_member_checks: int = 0
    bloom_member_rejects: int = 0
    nbr_checks: int = 0
    bloom_false_positives: int = 0
    dominations_found: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        """All integer counters as a plain dict (for bench reporting)."""
        result = {}
        for f in fields(self):
            if f.name == "extra":
                continue
            result[f.name] = getattr(self, f.name)
        return result

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            if f.name == "extra":
                self.extra = {}
            else:
                setattr(self, f.name, 0)

    def merge_dict(self, delta: dict[str, int]) -> None:
        """Add a counter snapshot (e.g. a worker's :meth:`as_dict`) in place.

        Known counter fields accumulate; unknown keys accumulate into
        :attr:`extra`, so schedulers can report quantities the core
        schema does not know about without breaking the merge.
        """
        for key, value in delta.items():
            if key in _COUNTER_FIELDS:
                setattr(self, key, getattr(self, key) + value)
            else:
                self.extra[key] = self.extra.get(key, 0) + value


#: Integer counter fields, i.e. everything except ``extra``.
_COUNTER_FIELDS = frozenset(
    f.name for f in fields(SkylineCounters) if f.name != "extra"
)

#: Shared sink for algorithms invoked without instrumentation.  Its values
#: are meaningless (it is written to by everyone); never read from it.
NULL_COUNTERS = SkylineCounters()
