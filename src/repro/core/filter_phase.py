"""``FilterPhase`` — Algorithm 2: the candidate set ``C``.

The filter phase applies the *edge-constrained* domination order
(Defs. 4–5): ``v ⊑ u`` requires an edge ``(u, v)`` **and**
``N[v] ⊆ N[u]``.  Vertices with an edge-constrained dominator cannot be
skyline members (Lemma 1), so the surviving set ``C`` is a sound
candidate superset of ``R`` that is computable by looking at edges only.

Implementation note
-------------------
The inclusion test for an edge ``(u, v)`` is a sorted-list merge
computing ``|N[u] ∩ N[v]|`` with early exit — "maintaining the size of
the intersection of the closed neighborhoods for the two ends of an
edge", as the paper describes.  (The printed pseudocode of Algorithm 2
increments ``T(v)`` once per neighbor, which as written could only ever
fire for degree-1 vertices and contradicts the paper's own Fig. 2a,
where a clique has ``|C| = 1``; the merge below implements the clearly
intended semantics.)  Worst-case cost is
``O(Σ_{(u,v) ∈ E} (deg u + deg v))``; the paper states ``O(m)``, which
holds when the early exits fire quickly — typical on power-law inputs.

As in Algorithm 1, the dominator entry ``O(u)`` is written at most once,
and a vertex whose ``O(u)`` is already set is skipped entirely.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.graph.adjacency import Graph

try:  # pragma: no cover - exercised via the list-backed fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["filter_phase", "closed_inclusion_over_edge"]


def closed_inclusion_over_edge(graph: Graph, u: int, v: int) -> bool:
    """``True`` iff ``N[u] ⊆ N[v]`` given that ``(u, v)`` is an edge.

    With the edge present this reduces to ``N(u) \\ {v} ⊆ N(v)``.  When
    the two degrees are comparable a linear merge over the sorted lists
    is cheapest; when ``v`` is a hub with a far larger neighborhood, the
    merge would pay ``O(deg v)``, so the test switches to binary-searched
    membership at ``O(deg(u) · log deg(v))`` — this adaptivity is what
    keeps the filter phase near-linear on hub-heavy graphs (the paper's
    Theorem 2 regime).
    """
    nbrs_u = graph.neighbors(u)
    nbrs_v = graph.neighbors(v)
    len_v = len(nbrs_v)
    if len_v > 8 * len(nbrs_u):
        lo = 0
        for x in nbrs_u:
            if x == v:
                continue
            lo = bisect_left(nbrs_v, x, lo)
            if lo == len_v or nbrs_v[lo] != x:
                return False
            lo += 1
        return True
    i = 0
    for x in nbrs_u:
        if x == v:
            continue
        # Advance the pointer into N(v) up to x.
        while i < len_v and nbrs_v[i] < x:
            i += 1
        if i == len_v or nbrs_v[i] != x:
            return False
        i += 1
    return True


def _edge_pretest(indptr, indices) -> bytes:
    """Bulk necessary conditions for ``N[u] ⊆ N[v]``, one flag per CSR slot.

    For the directed edge stored at slot ``indptr[u] + j`` (``v`` being
    the ``j``-th neighbor of ``u``), the flag byte is nonzero iff every
    cheap necessary condition for ``v`` dominating ``u`` holds:

    * ``deg(v) >= deg(u)`` (a superset is at least as large);
    * ``min N[v] <= min N[u]`` and ``max N[v] >= max N[u]`` (a superset
      brackets its subset — sorted rows give both extremes in O(1));
    * ``Σ N[v] >= Σ N[u]`` (vertex IDs are non-negative, so a superset's
      ID sum dominates).

    Edges whose flag is zero cannot pass the exact merge test, so the
    scalar scan skips them wholesale; edges whose flag is set still run
    :func:`closed_inclusion_over_edge`, keeping the output bit-for-bit
    the list-backed scan's.  Cost: a handful of vectorized passes over
    the ``2m`` directed edges.
    """
    n = len(indptr) - 1
    deg = _np.diff(indptr).astype(_np.int64)
    self_ids = _np.arange(n, dtype=_np.int64)
    nz = deg > 0
    # Closed-neighborhood extremes: the row is sorted, so only the first
    # and last entries compete with the vertex's own ID.
    cmin = self_ids.copy()
    cmax = self_ids.copy()
    cmin[nz] = _np.minimum(
        self_ids[nz], indices[indptr[:-1][nz]].astype(_np.int64)
    )
    cmax[nz] = _np.maximum(
        self_ids[nz], indices[indptr[1:][nz] - 1].astype(_np.int64)
    )
    # Closed-neighborhood ID sums via one prefix sum over indices.
    prefix = _np.zeros(len(indices) + 1, dtype=_np.int64)
    _np.cumsum(indices, dtype=_np.int64, out=prefix[1:])
    csum = prefix[indptr[1:]] - prefix[indptr[:-1]] + self_ids

    v_of = indices  # int32 fancy-index, no copy needed
    ok = deg[v_of] >= _np.repeat(deg, deg)
    ok &= cmin[v_of] <= _np.repeat(cmin, deg)
    ok &= cmax[v_of] >= _np.repeat(cmax, deg)
    ok &= csum[v_of] >= _np.repeat(csum, deg)
    # bytes index at C speed in the scalar scan (0/1 per slot).
    return ok.tobytes()


def filter_phase(
    graph: Graph, *, counters: Optional[SkylineCounters] = None
) -> tuple[list[int], list[int]]:
    """Compute the neighborhood candidates ``C`` and the dominator array.

    Returns ``(candidates, dominator)`` where ``candidates`` is sorted and
    ``dominator[u] == u`` exactly for ``u ∈ C``.  For excluded vertices,
    ``dominator[u]`` is an adjacent vertex ``w`` with ``N[u] ⊆ N[w]``.

    On a :class:`~repro.graph.csr.CSRGraph` the pair scan is preceded by
    a vectorized pretest (:func:`_edge_pretest`) that eliminates most
    exact inclusion merges in bulk; the surviving pairs run the same
    scalar test in the same order, so candidates and dominators are
    identical to the list-backed path (the differential suite pins
    this).  Pretest eliminations are tallied under
    ``counters.extra["filter_pretest_rejects"]``.
    """
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    dominator = list(range(n))
    deg = graph.degrees()

    csr_arrays = getattr(graph, "csr_arrays", None)
    pretest = None
    row_start = None
    if csr_arrays is not None and _np is not None and n:
        indptr, indices = csr_arrays()
        pretest = _edge_pretest(indptr, indices)
        row_start = indptr.tolist()
    pretest_rejects = 0

    for u in range(n):
        if dominator[u] != u:
            continue
        stats.vertices_examined += 1
        deg_u = deg[u]
        base = row_start[u] if pretest is not None else 0
        for j, v in enumerate(graph.neighbors(u)):
            deg_v = deg[v]
            if deg_v < deg_u:
                # N[u] ⊆ N[v] would force deg(v) >= deg(u).
                stats.degree_skips += 1
                continue
            if pretest is not None and not pretest[base + j]:
                # A bulk necessary condition already failed: the exact
                # merge below could only confirm the rejection.
                pretest_rejects += 1
                continue
            stats.pair_tests += 1
            if not closed_inclusion_over_edge(graph, u, v):
                continue
            if deg_v == deg_u:
                # N[u] = N[v]: true twins; the smaller ID wins (Def. 5).
                if u > v and dominator[u] == u:
                    dominator[u] = v
                    stats.dominations_found += 1
                elif dominator[v] == v:
                    dominator[v] = u
                    stats.dominations_found += 1
            else:
                if dominator[u] == u:
                    dominator[u] = v
                    stats.dominations_found += 1
                    break

    if pretest is not None and counters is not None:
        stats.extra["filter_pretest_rejects"] = (
            stats.extra.get("filter_pretest_rejects", 0) + pretest_rejects
        )

    candidates = [u for u in range(n) if dominator[u] == u]
    return candidates, dominator
