"""``FilterPhase`` — Algorithm 2: the candidate set ``C``.

The filter phase applies the *edge-constrained* domination order
(Defs. 4–5): ``v ⊑ u`` requires an edge ``(u, v)`` **and**
``N[v] ⊆ N[u]``.  Vertices with an edge-constrained dominator cannot be
skyline members (Lemma 1), so the surviving set ``C`` is a sound
candidate superset of ``R`` that is computable by looking at edges only.

Implementation note
-------------------
The inclusion test for an edge ``(u, v)`` is a sorted-list merge
computing ``|N[u] ∩ N[v]|`` with early exit — "maintaining the size of
the intersection of the closed neighborhoods for the two ends of an
edge", as the paper describes.  (The printed pseudocode of Algorithm 2
increments ``T(v)`` once per neighbor, which as written could only ever
fire for degree-1 vertices and contradicts the paper's own Fig. 2a,
where a clique has ``|C| = 1``; the merge below implements the clearly
intended semantics.)  Worst-case cost is
``O(Σ_{(u,v) ∈ E} (deg u + deg v))``; the paper states ``O(m)``, which
holds when the early exits fire quickly — typical on power-law inputs.

As in Algorithm 1, the dominator entry ``O(u)`` is written at most once,
and a vertex whose ``O(u)`` is already set is skipped entirely.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.graph.adjacency import Graph

__all__ = ["filter_phase", "closed_inclusion_over_edge"]


def closed_inclusion_over_edge(graph: Graph, u: int, v: int) -> bool:
    """``True`` iff ``N[u] ⊆ N[v]`` given that ``(u, v)`` is an edge.

    With the edge present this reduces to ``N(u) \\ {v} ⊆ N(v)``.  When
    the two degrees are comparable a linear merge over the sorted lists
    is cheapest; when ``v`` is a hub with a far larger neighborhood, the
    merge would pay ``O(deg v)``, so the test switches to binary-searched
    membership at ``O(deg(u) · log deg(v))`` — this adaptivity is what
    keeps the filter phase near-linear on hub-heavy graphs (the paper's
    Theorem 2 regime).
    """
    nbrs_u = graph.neighbors(u)
    nbrs_v = graph.neighbors(v)
    len_v = len(nbrs_v)
    if len_v > 8 * len(nbrs_u):
        lo = 0
        for x in nbrs_u:
            if x == v:
                continue
            lo = bisect_left(nbrs_v, x, lo)
            if lo == len_v or nbrs_v[lo] != x:
                return False
            lo += 1
        return True
    i = 0
    for x in nbrs_u:
        if x == v:
            continue
        # Advance the pointer into N(v) up to x.
        while i < len_v and nbrs_v[i] < x:
            i += 1
        if i == len_v or nbrs_v[i] != x:
            return False
        i += 1
    return True


def filter_phase(
    graph: Graph, *, counters: Optional[SkylineCounters] = None
) -> tuple[list[int], list[int]]:
    """Compute the neighborhood candidates ``C`` and the dominator array.

    Returns ``(candidates, dominator)`` where ``candidates`` is sorted and
    ``dominator[u] == u`` exactly for ``u ∈ C``.  For excluded vertices,
    ``dominator[u]`` is an adjacent vertex ``w`` with ``N[u] ⊆ N[w]``.
    """
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    dominator = list(range(n))

    for u in range(n):
        if dominator[u] != u:
            continue
        stats.vertices_examined += 1
        deg_u = graph.degree(u)
        for v in graph.neighbors(u):
            deg_v = graph.degree(v)
            if deg_v < deg_u:
                # N[u] ⊆ N[v] would force deg(v) >= deg(u).
                stats.degree_skips += 1
                continue
            stats.pair_tests += 1
            if not closed_inclusion_over_edge(graph, u, v):
                continue
            if deg_v == deg_u:
                # N[u] = N[v]: true twins; the smaller ID wins (Def. 5).
                if u > v and dominator[u] == u:
                    dominator[u] = v
                    stats.dominations_found += 1
                elif dominator[v] == v:
                    dominator[v] = u
                    stats.dominations_found += 1
            else:
                if dominator[u] == u:
                    dominator[u] = v
                    stats.dominations_found += 1
                    break

    candidates = [u for u in range(n) if dominator[u] == u]
    return candidates, dominator
