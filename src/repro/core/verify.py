"""Independent verification of skyline results.

:func:`verify_skyline` re-derives, from first principles (the literal
Def. 2 predicate, no shared code with the fast algorithms beyond the
predicate itself), that a :class:`~repro.core.result.SkylineResult` is
correct for a graph:

1. every reported skyline member is genuinely undominated;
2. every excluded vertex is genuinely dominated by *someone*;
3. every dominator entry is a valid neighborhood-inclusion witness;
4. the candidate set (when present) contains the skyline and excludes
   only edge-dominated vertices.

Quadratic-ish — meant for tests, debugging and the CLI's ``--verify``
flag, not for production hot paths.
"""

from __future__ import annotations

from repro.core.domination import (
    dominates,
    edge_constrained_dominates,
    neighborhood_included,
    two_hop_neighbors,
)
from repro.core.result import SkylineResult
from repro.graph.adjacency import Graph

__all__ = ["verify_skyline", "SkylineVerificationError"]


class SkylineVerificationError(AssertionError):
    """Raised by :func:`verify_skyline` with a human-readable reason."""


def verify_skyline(graph: Graph, result: SkylineResult) -> None:
    """Raise :class:`SkylineVerificationError` unless ``result`` is correct."""
    n = graph.num_vertices
    if len(result.dominator) != n:
        raise SkylineVerificationError(
            f"dominator array has {len(result.dominator)} entries "
            f"for a {n}-vertex graph"
        )
    members = result.skyline_set
    if sorted(members) != list(result.skyline):
        raise SkylineVerificationError("skyline is not sorted/unique")

    for u in range(n):
        witness = result.dominator[u]
        if (witness == u) != (u in members):
            raise SkylineVerificationError(
                f"vertex {u}: dominator entry inconsistent with skyline "
                f"membership"
            )
        if u in members:
            for w in two_hop_neighbors(graph, u):
                if dominates(graph, w, u):
                    raise SkylineVerificationError(
                        f"skyline vertex {u} is dominated by {w}"
                    )
        else:
            if not neighborhood_included(graph, u, witness):
                raise SkylineVerificationError(
                    f"vertex {u}: witness {witness} is not an inclusion "
                    f"(N({u}) ⊄ N[{witness}])"
                )
            if not any(
                dominates(graph, w, u) for w in two_hop_neighbors(graph, u)
            ):
                raise SkylineVerificationError(
                    f"vertex {u} excluded but dominated by nobody"
                )

    if result.candidates is not None:
        candidates = set(result.candidates)
        if not members <= candidates:
            raise SkylineVerificationError(
                "skyline not contained in the candidate set"
            )
        for u in range(n):
            if u in candidates:
                continue
            if not any(
                edge_constrained_dominates(graph, v, u)
                for v in graph.neighbors(u)
            ):
                raise SkylineVerificationError(
                    f"vertex {u} excluded from C without an "
                    f"edge-constrained dominator"
                )
