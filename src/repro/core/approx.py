"""ε-approximate neighborhood skyline (the paper's future-work remark).

The paper's Sec. III remark sketches an "approximate neighborhood
skyline based on approximate domination relationships" and leaves the
definitions open.  This module supplies one principled instantiation:

**ε-domination.**  For ``ε ∈ [0, 1)``, vertex ``u`` *ε-dominates* ``v``
when all but an ε-fraction of ``v``'s neighborhood is covered::

    |N(v) \\ N[u]|  ≤  ε · deg(v)

with the same strictness/tie-break structure as Def. 2 (mutual
ε-inclusion falls back to the ID order) and the same 2-hop convention.
``ε = 0`` is exactly Def. 2.  The **ε-skyline** is the set of vertices
no one ε-dominates.

Properties (tested in ``tests/core/test_approx.py`` and
``tests/property/test_structure_properties.py``):

* ε-*inclusion* is monotone in ε (a covered neighborhood stays covered
  under a looser threshold);
* conservative at 0: ``approx_skyline(g, 0) == neighborhood_skyline(g)``;
* still 2-hop local for ε < 1: covering more than ``(1-ε) deg(v) > 0``
  neighbors requires sharing at least one neighbor;
* the ε-skyline *typically* shrinks as ε grows, but not always: a
  strict domination can relax into a *mutual* ε-inclusion whose ID
  tie-break points the other way, re-admitting the vertex.  The sound
  guarantees are the membership ones — every reported member is
  ε-undominated and every excluded vertex has an ε-dominator.

Note ε-domination is *not* transitive in general, so the dominated-
dominator skip of Algorithm 3 would be unsound here; the implementation
is a threshold-counting scan in the style of Algorithm 1.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.result import SkylineResult
from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["approx_skyline", "epsilon_dominates"]


def epsilon_dominates(graph: Graph, u: int, v: int, epsilon: float) -> bool:
    """``True`` iff ``u`` ε-dominates ``v`` (pairwise reference predicate).

    Mirrors Def. 2's structure: ``v`` must be ε-included by ``u``, and
    either ``u`` is *not* ε-included by ``v`` (strict) or the inclusion
    is mutual and ``u < v``.
    """
    _check_epsilon(epsilon)
    if u == v or graph.degree(v) == 0:
        return False  # 2-hop convention, as in the exact order
    if not _eps_included(graph, v, u, epsilon):
        return False
    if not _eps_included(graph, u, v, epsilon):
        return True
    return u < v


def _check_epsilon(epsilon: float) -> None:
    if not (0.0 <= epsilon < 1.0):
        raise ParameterError(f"epsilon must be in [0, 1), got {epsilon}")


def approx_skyline(
    graph: Graph,
    epsilon: float,
    *,
    counters: Optional[object] = None,
) -> SkylineResult:
    """Compute the ε-approximate neighborhood skyline.

    Threshold-counting scan over each vertex's 2-hop neighborhood:
    ``T(w) = |N(u) ∩ N[w]|`` as in Algorithm 1, with the trigger lowered
    from ``deg(u)`` to ``ceil((1-ε) · deg(u))``.  ``O(m · dmax)``.
    """
    _check_epsilon(epsilon)
    n = graph.num_vertices
    dominator = list(range(n))
    count = [0] * n
    stamp = [-1] * n

    for u in range(n):
        if dominator[u] != u:
            continue
        deg_u = graph.degree(u)
        if deg_u == 0:
            continue
        needed = deg_u - math.floor(epsilon * deg_u)
        strictly_dominated = False
        for v in graph.neighbors(u):
            if strictly_dominated:
                break
            for w in _closed_except(graph, v, u):
                if stamp[w] != u:
                    stamp[w] = u
                    count[w] = 0
                count[w] += 1
                if count[w] != needed:
                    continue
                # u is ε-included by w; resolve direction.
                if _eps_included(graph, w, u, epsilon):
                    # Mutual: ID tie-break, keep scanning.
                    if u > w and dominator[u] == u:
                        dominator[u] = w
                elif dominator[u] == u:
                    dominator[u] = w
                    strictly_dominated = True
                    break

    skyline = tuple(u for u in range(n) if dominator[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(dominator),
        candidates=None,
        algorithm=f"ApproxSky(eps={epsilon})",
    )


def _eps_included(graph: Graph, v: int, u: int, epsilon: float) -> bool:
    """``True`` iff v is ε-included by u: ``|N(v) \\ N[u]| ≤ ε·deg(v)``."""
    deg_v = graph.degree(v)
    if deg_v == 0:
        return True
    allowed = math.floor(epsilon * deg_v)
    misses = 0
    for w in graph.neighbors(v):
        if w != u and not graph.has_edge(w, u):
            misses += 1
            if misses > allowed:
                return False
    return True


def _closed_except(graph: Graph, v: int, u: int):
    for w in graph.neighbors(v):
        if w != u:
            yield w
    yield v
