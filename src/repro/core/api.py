"""High-level entry points for neighborhood-skyline computation.

:func:`neighborhood_skyline` is the one function most users need: it
dispatches by name to the five algorithms the paper evaluates and
returns a uniform :class:`~repro.core.result.SkylineResult`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.base_sky import base_sky
from repro.core.bitset_refine import filter_refine_bitset_sky
from repro.core.block_refine import filter_refine_block_sky
from repro.core.counters import SkylineCounters
from repro.core.cset import base_cset_sky
from repro.core.filter_phase import filter_phase
from repro.core.filter_refine import filter_refine_sky
from repro.core.join_sky import lc_join_sky
from repro.core.naive import naive_skyline
from repro.core.result import SkylineResult
from repro.core.two_hop import base_two_hop_sky
from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = [
    "neighborhood_skyline",
    "neighborhood_candidates",
    "group_centrality_maximize",
    "engine_session",
    "serve",
    "ALGORITHMS",
]


def _parallel_refine_sky(graph: Graph, **options) -> SkylineResult:
    """Deferred dispatch to :func:`repro.parallel.engine.parallel_refine_sky`.

    The engine module imports :mod:`repro.core` internals, so a
    module-level import here would close an import cycle that breaks
    whichever package loads second; binding at call time keeps every
    import order valid.
    """
    from repro.parallel.engine import parallel_refine_sky

    return parallel_refine_sky(graph, **options)


#: Name → implementation for every skyline algorithm in the paper's Exp-1,
#: plus the naive reference and the multi-worker refine engine.
ALGORITHMS: dict[str, Callable[..., SkylineResult]] = {
    "filter_refine": filter_refine_sky,
    "filter_refine_bitset": filter_refine_bitset_sky,
    "filter_refine_block": filter_refine_block_sky,
    "filter_refine_parallel": _parallel_refine_sky,
    "base": base_sky,
    "two_hop": base_two_hop_sky,
    "cset": base_cset_sky,
    "lc_join": lc_join_sky,
    "naive": naive_skyline,
}


def neighborhood_skyline(
    graph: Graph,
    algorithm: str = "filter_refine",
    *,
    counters: Optional[SkylineCounters] = None,
    **options,
) -> SkylineResult:
    """Compute the neighborhood skyline of ``graph``.

    Parameters
    ----------
    graph:
        The input graph.
    algorithm:
        One of ``"filter_refine"`` (the paper's FilterRefineSky — the
        default), ``"filter_refine_bitset"`` (the same result via the
        packed-bitset refine kernel — the fastest on small dense
        candidate sets, with an automatic bloom fallback past its word
        budget), ``"filter_refine_block"`` (the same result via the
        block-vectorized counting kernel of
        :mod:`repro.core.block_refine` — the fastest on large
        candidate sets, no bit matrix needed),
        ``"filter_refine_parallel"`` (the same
        result computed with a multi-worker refine phase), ``"base"``
        (BaseSky), ``"two_hop"`` (Base2Hop), ``"cset"`` (BaseCSet),
        ``"lc_join"`` (the containment-join baseline) or ``"naive"``
        (the quadratic reference).
    counters:
        Optional :class:`SkylineCounters` to collect work statistics.
    options:
        Algorithm-specific keywords, e.g. ``bloom_bits`` / ``seed`` /
        ``exact`` for ``"filter_refine"`` and ``"two_hop"``,
        ``word_budget`` for ``"filter_refine_bitset"``, or ``workers``
        / ``chunk_size`` / ``refine`` for ``"filter_refine_parallel"``.

    >>> from repro.graph.generators import complete_graph
    >>> neighborhood_skyline(complete_graph(5)).skyline
    (0,)
    """
    try:
        impl = ALGORITHMS[algorithm]
    except KeyError:
        raise ParameterError(
            f"unknown skyline algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        ) from None
    return impl(graph, counters=counters, **options)


def engine_session(graph: Graph, **options):
    """A warm :class:`~repro.parallel.session.EngineSession` for ``graph``.

    The session owns one worker pool and (on the shared-memory data
    plane) one published CSR snapshot; repeated
    ``session.refine_sky(...)`` / ``session.greedy_maximize(...)``
    calls — or explicit ``session=`` passes to the pooled engines —
    reuse both, so only the first call pays fork + publish.  Use as a
    context manager, or call ``close()`` yourself:

        with engine_session(graph, workers=4) as session:
            sky = session.refine_sky()
            grp = session.greedy_maximize(8, objective)

    ``options`` are :class:`EngineSession`'s keywords (``workers``,
    ``data_plane``, ``chunk_size``, ``timeout``, ``max_retries``,
    ``fault_plan``, ``seed``).  Imported lazily for the same
    import-cycle reason as :func:`_parallel_refine_sky`.
    """
    from repro.parallel.session import EngineSession

    return EngineSession(graph, **options)


def serve(
    graphs,
    *,
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: int = 1,
    data_plane: str = "auto",
    timeout: Optional[float] = None,
    queue_capacity: int = 64,
    batch_max: int = 8,
    request_timeout_s: Optional[float] = 30.0,
    max_requests: Optional[int] = None,
    query_deadline_s: Optional[float] = 60.0,
    max_session_rebuilds: int = 8,
    breaker_threshold: int = 3,
    breaker_cooldown_s: float = 1.0,
    degraded_cache: bool = True,
    fault_plan=None,
) -> int:
    """Skyline-as-a-service in one call (blocking).

    ``graphs`` is an iterable of spec strings — a registry dataset name
    (``"karate"``) or ``alias=path`` for an edge-list file.  Each graph
    gets one warm :func:`engine_session`; ``skyline`` / ``group`` /
    ``clique`` queries are served over HTTP through a bounded priority
    queue with per-request deadlines and 429 backpressure.  The server
    is self-healing: a per-query watchdog (``query_deadline_s``) and
    per-graph circuit breakers (``breaker_threshold`` /
    ``breaker_cooldown_s``) rebuild failed warm sessions (up to
    ``max_session_rebuilds`` per graph) and degrade one broken graph —
    cached skyline marked ``degraded: true`` when ``degraded_cache`` —
    without touching the others.  ``fault_plan`` injects a
    :class:`~repro.harness.faults.ServeFaultPlan` for chaos harness
    runs.  See :mod:`repro.serve` and ``docs/serving.md``; the CLI
    equivalent is ``repro serve``.  Returns the process exit code.
    Imported lazily — the serving layer pulls in the parallel stack.
    """
    from repro.serve import (
        GraphRegistry,
        ServeConfig,
        SupervisionConfig,
        run_server,
    )

    registry = GraphRegistry(
        workers=workers, data_plane=data_plane, timeout=timeout
    )
    try:
        for spec in graphs:
            registry.register_spec(spec)
        if not len(registry):
            raise ParameterError("serve needs at least one graph spec")
        config = ServeConfig(
            host=host,
            port=port,
            queue_capacity=queue_capacity,
            batch_max=batch_max,
            default_timeout_s=request_timeout_s,
            max_requests=max_requests,
            supervision=SupervisionConfig(
                query_deadline_s=query_deadline_s,
                max_session_rebuilds=max_session_rebuilds,
                breaker_threshold=breaker_threshold,
                breaker_cooldown_s=breaker_cooldown_s,
                degraded_cache=degraded_cache,
            ),
        )
        return run_server(registry, config, fault_plan=fault_plan)
    finally:
        registry.close()


def neighborhood_candidates(
    graph: Graph, *, counters: Optional[SkylineCounters] = None
) -> tuple[int, ...]:
    """The candidate set ``C`` of the filter phase alone (Lemma 1 superset)."""
    candidates, _dominator = filter_phase(graph, counters=counters)
    return tuple(candidates)


def group_centrality_maximize(
    graph: Graph,
    k: int,
    *,
    measure: str = "closeness",
    use_skyline: bool = True,
    skyline: Optional[tuple[int, ...]] = None,
    strategy: str = "eager",
    workers: int = 1,
    timeout: Optional[float] = None,
    data_plane: str = "auto",
    session=None,
    gain_batch="auto",
):
    """One-call dispatcher for the Sec. IV group-centrality applications.

    Parameters
    ----------
    graph:
        The input graph.
    k:
        Desired group size.
    measure:
        ``"closeness"`` (Def. 7) or ``"harmonic"`` (Def. 9).
    use_skyline:
        ``True`` runs the NeiSky* variant (candidate pool restricted to
        the neighborhood skyline), ``False`` the Base* variant.
    skyline:
        Precomputed skyline to reuse when ``use_skyline`` (``None``
        computes it with FilterRefineSky).
    strategy / workers:
        Greedy schedule: ``"eager"`` is the reference driver,
        ``"lazy"`` the CELF engine of
        :mod:`repro.centrality.lazy_greedy` — identical output, fewer
        evaluations — with ``workers`` fanning its first round over a
        process pool.
    timeout:
        Per-chunk deadline (seconds) of the round-0 pool's supervisor;
        ``None`` uses the supervisor default.  Recovery never changes
        the result.
    data_plane / session:
        Data plane for the round-0 fan-out and an optional warm
        :func:`engine_session` to run it on — see
        :func:`~repro.parallel.engine.parallel_refine_sky` for the
        plane semantics.  Identical output either way.
    gain_batch:
        Marginal-gain lanes per batched evaluation-kernel call:
        ``"auto"`` (the default) sizes from ``n`` and the candidate
        pool, a positive int forces that lane count, ``1`` forces the
        scalar kernels.  Purely an execution knob — the batched kernel
        is bit-for-bit equal to the scalar one (see
        :mod:`repro.paths.csr`), so the group never depends on it.

    Returns a :class:`~repro.centrality.greedy.GreedyResult`.  Imported
    lazily: :mod:`repro.centrality` itself imports core modules.

    Pool parameters are validated here, at the API boundary, so a bad
    value raises :class:`~repro.errors.ParameterError` before any graph
    work (or pool fork) happens.
    """
    from repro.centrality import base_gc, base_gh, neisky_gc, neisky_gh
    from repro.parallel.params import validate_pool_params
    from repro.paths.csr import validate_gain_batch

    validate_pool_params(workers=workers, timeout=timeout)
    validate_gain_batch(gain_batch)
    if measure == "closeness":
        base_run, sky_run = base_gc, neisky_gc
    elif measure == "harmonic":
        base_run, sky_run = base_gh, neisky_gh
    else:
        raise ParameterError(
            f"unknown group measure {measure!r}; choose 'closeness' or "
            "'harmonic'"
        )
    if not use_skyline:
        return base_run(
            graph,
            k,
            strategy=strategy,
            workers=workers,
            timeout=timeout,
            data_plane=data_plane,
            session=session,
            gain_batch=gain_batch,
        )
    return sky_run(
        graph,
        k,
        skyline=skyline,
        strategy=strategy,
        workers=workers,
        timeout=timeout,
        data_plane=data_plane,
        session=session,
        gain_batch=gain_batch,
    )
