"""High-level entry points for neighborhood-skyline computation.

:func:`neighborhood_skyline` is the one function most users need: it
dispatches by name to the five algorithms the paper evaluates and
returns a uniform :class:`~repro.core.result.SkylineResult`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.base_sky import base_sky
from repro.core.bitset_refine import filter_refine_bitset_sky
from repro.core.counters import SkylineCounters
from repro.core.cset import base_cset_sky
from repro.core.filter_phase import filter_phase
from repro.core.filter_refine import filter_refine_sky
from repro.core.join_sky import lc_join_sky
from repro.core.naive import naive_skyline
from repro.core.result import SkylineResult
from repro.core.two_hop import base_two_hop_sky
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.parallel.engine import parallel_refine_sky

__all__ = ["neighborhood_skyline", "neighborhood_candidates", "ALGORITHMS"]

#: Name → implementation for every skyline algorithm in the paper's Exp-1,
#: plus the naive reference and the multi-worker refine engine.
ALGORITHMS: dict[str, Callable[..., SkylineResult]] = {
    "filter_refine": filter_refine_sky,
    "filter_refine_bitset": filter_refine_bitset_sky,
    "filter_refine_parallel": parallel_refine_sky,
    "base": base_sky,
    "two_hop": base_two_hop_sky,
    "cset": base_cset_sky,
    "lc_join": lc_join_sky,
    "naive": naive_skyline,
}


def neighborhood_skyline(
    graph: Graph,
    algorithm: str = "filter_refine",
    *,
    counters: Optional[SkylineCounters] = None,
    **options,
) -> SkylineResult:
    """Compute the neighborhood skyline of ``graph``.

    Parameters
    ----------
    graph:
        The input graph.
    algorithm:
        One of ``"filter_refine"`` (the paper's FilterRefineSky — the
        default), ``"filter_refine_bitset"`` (the same result via the
        packed-bitset refine kernel — the fastest on dense candidate
        sets, with an automatic bloom fallback past its word budget),
        ``"filter_refine_parallel"`` (the same
        result computed with a multi-worker refine phase), ``"base"``
        (BaseSky), ``"two_hop"`` (Base2Hop), ``"cset"`` (BaseCSet),
        ``"lc_join"`` (the containment-join baseline) or ``"naive"``
        (the quadratic reference).
    counters:
        Optional :class:`SkylineCounters` to collect work statistics.
    options:
        Algorithm-specific keywords, e.g. ``bloom_bits`` / ``seed`` /
        ``exact`` for ``"filter_refine"`` and ``"two_hop"``,
        ``word_budget`` for ``"filter_refine_bitset"``, or ``workers``
        / ``chunk_size`` / ``refine`` for ``"filter_refine_parallel"``.

    >>> from repro.graph.generators import complete_graph
    >>> neighborhood_skyline(complete_graph(5)).skyline
    (0,)
    """
    try:
        impl = ALGORITHMS[algorithm]
    except KeyError:
        raise ParameterError(
            f"unknown skyline algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHMS)}"
        ) from None
    return impl(graph, counters=counters, **options)


def neighborhood_candidates(
    graph: Graph, *, counters: Optional[SkylineCounters] = None
) -> tuple[int, ...]:
    """The candidate set ``C`` of the filter phase alone (Lemma 1 superset)."""
    candidates, _dominator = filter_phase(graph, counters=counters)
    return tuple(candidates)
