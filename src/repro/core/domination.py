"""Neighborhood inclusion and domination predicates (Defs. 1, 2, 4, 5).

These are the literal, pair-at-a-time definitions from Sec. II/III-B of
the paper.  They are quadratic-ish and exist to (a) serve as the ground
truth the fast algorithms are tested against and (b) give applications a
readable vocabulary (``dominates``, ``edge_constrained_dominates``).

Semantic convention (see DESIGN.md §1): *domination requires the
dominated vertex to lie within two hops of the dominator.*  For vertices
with at least one neighbor this is implied by Def. 2 itself; the
convention only matters for isolated vertices, which the paper's
algorithms (and therefore this package) treat as skyline members.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.adjacency import Graph

__all__ = [
    "neighborhood_included",
    "dominates",
    "edge_constrained_included",
    "edge_constrained_dominates",
    "two_hop_neighbors",
]


def neighborhood_included(graph: Graph, v: int, u: int) -> bool:
    """Def. 1 — ``True`` iff ``N(v) ⊆ N[u]`` (v is included by u).

    ``O(deg(v) log deg(u))`` via binary-searched membership.
    """
    if v == u:
        return True
    for w in graph.neighbors(v):
        if w != u and not graph.has_edge(w, u):
            return False
    return True


def dominates(graph: Graph, u: int, v: int) -> bool:
    """Def. 2 — ``True`` iff ``v ≤ u`` (u dominates v).

    Requires ``N(v) ⊆ N[u]`` and either the inclusion is strict
    (``N(u) ⊄ N[v]``) or it is mutual and ``u < v`` (ID tie-break).

    Per the package convention, an isolated ``v`` is dominated by no one
    (its empty neighborhood vacuously includes into everything, but no
    vertex lies within two hops of it).
    """
    if u == v:
        return False
    if graph.degree(v) == 0:
        return False
    if not neighborhood_included(graph, v, u):
        return False
    if not neighborhood_included(graph, u, v):
        return True
    return u < v


def edge_constrained_included(graph: Graph, v: int, u: int) -> bool:
    """Def. 4 — ``True`` iff ``(u, v) ∈ E`` and ``N[v] ⊆ N[u]``."""
    if v == u or not graph.has_edge(u, v):
        return False
    # With the edge present, N[v] ⊆ N[u]  ⟺  N(v) ⊆ N[u].
    return neighborhood_included(graph, v, u)


def edge_constrained_dominates(graph: Graph, u: int, v: int) -> bool:
    """Def. 5 — ``True`` iff ``v ⊑ u`` under the edge-constrained order."""
    if not edge_constrained_included(graph, v, u):
        return False
    if not edge_constrained_included(graph, u, v):
        return True
    return u < v


def two_hop_neighbors(graph: Graph, u: int) -> Iterator[int]:
    """All vertices reachable from ``u`` in one or two hops, ``u`` excluded.

    Each vertex is yielded exactly once.  This realizes the search space
    ``N2(u)`` of Algorithm 1 — the only vertices that can dominate a
    non-isolated ``u``.
    """
    seen = {u}
    for v in graph.neighbors(u):
        if v not in seen:
            seen.add(v)
            yield v
        for w in graph.neighbors(v):
            if w not in seen:
                seen.add(w)
                yield w
