"""``LC-Join`` skyline baseline: domination discovery as containment join.

The adapter the paper's Exp-1/Exp-2 compare against: build the data set
``S = {N[i]}`` with an inverted index, the query set ``Q = {N(i)}``, and
for each vertex intersect posting lists to find every ``w`` with
``N(u) ⊆ N[w]``.  A vertex is dominated iff the result contains some
``w ≠ u`` with ``deg(w) > deg(u)``, or with ``deg(w) = deg(u)`` and
``w < u`` (mutual inclusion, ID tie-break) — the degree distinction is
exact because ``N(u) ⊆ N[w]`` forces ``deg(w) ≥ deg(u)``.

A pleasing structural fact: the posting list of element ``x`` over
``S = {N[i]}`` is precisely ``N[x]``, so the index is a materialized
second copy of the graph — which is exactly the memory overhead the
paper attributes to join-based approaches.
"""

from __future__ import annotations

from typing import Optional

from repro.containment.lcjoin import ContainmentJoin
from repro.containment.records import RecordSet
from repro.core.counters import NULL_COUNTERS, SkylineCounters
from repro.core.result import SkylineResult
from repro.graph.adjacency import Graph

__all__ = ["lc_join_sky"]


def lc_join_sky(
    graph: Graph,
    *,
    counters: Optional[SkylineCounters] = None,
    join_kernel: str = "auto",
) -> SkylineResult:
    """Compute the neighborhood skyline via a set-containment join.

    ``join_kernel`` selects the posting-list intersection kernel
    (``"auto"``/``"scalar"``/``"vector"`` — see
    :class:`~repro.containment.lcjoin.ContainmentJoin`); the skyline is
    identical under every setting.
    """
    stats = counters if counters is not None else NULL_COUNTERS
    n = graph.num_vertices
    data = RecordSet.closed_neighborhoods(graph)
    join = ContainmentJoin(data, kernel=join_kernel)

    dominator = list(range(n))
    degree = graph.degree
    for u in range(n):
        deg_u = degree(u)
        if deg_u == 0:
            # Isolated vertices are skyline members by convention
            # (see DESIGN.md §1); an empty query would match everything.
            continue
        stats.vertices_examined += 1
        query = tuple(graph.neighbors(u))
        for w in join.containing_records(query):
            if w == u:
                continue
            stats.pair_tests += 1
            deg_w = degree(w)
            if deg_w > deg_u or (deg_w == deg_u and w < u):
                dominator[u] = w
                stats.dominations_found += 1
                break

    skyline = tuple(u for u in range(n) if dominator[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(dominator),
        candidates=None,
        algorithm="LC-Join",
        counters=counters,
    )
