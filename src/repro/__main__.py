"""``python -m repro`` — alias for the ``repro-sky`` CLI."""

import sys

from repro.cli import main

sys.exit(main())
