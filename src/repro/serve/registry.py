"""Multi-graph registry: named graphs, each with one warm engine session.

A serving process hosts several immutable graphs at once.  The registry
maps each name to a :class:`GraphEntry` that owns the graph, a lazily
created warm :class:`~repro.parallel.session.EngineSession` (one pool +
one published CSR snapshot, reused across every request for that
graph), and a cached skyline result — the skyline is the input stage of
both downstream applications, so one computation feeds every subsequent
``group`` and ``clique`` request.

Graph sources are either **registry dataset names**
(:mod:`repro.workloads`) or **edge-list paths**; the CLI spec syntax is
``name`` for the former and ``alias=path`` for the latter.

:func:`execute_query` is the single dispatch point for the three query
kinds.  It goes through exactly the public entry points a direct caller
would use — ``parallel_refine_sky`` (bit-for-bit
``filter_refine_sky``/``filter_refine_bitset`` by the engine's
equivalence guarantee), ``run_greedy`` via the Base*/NeiSky* drivers,
and ``mc_brb``/``*_topk_mcc`` — so a served response is bit-for-bit the
direct API result; the integration suite asserts exactly that.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.core.counters import SkylineCounters
from repro.core.result import SkylineResult
from repro.errors import GraphFormatError, ParameterError, ReproError
from repro.graph.adjacency import Graph
from repro.graph.io import load_graph
from repro.parallel.session import EngineSession

__all__ = [
    "GraphEntry",
    "GraphRegistry",
    "QUERY_KINDS",
    "execute_query",
    "load_spec_graph",
    "parse_graph_spec",
]

#: The query kinds the serving layer routes.
QUERY_KINDS = ("skyline", "group", "clique")


def parse_graph_spec(spec: str) -> tuple[str, str, str]:
    """``(name, source_kind, source)`` for one ``--graph`` spec string.

    ``"karate"`` names a registry dataset; ``"web=/tmp/web.edges"``
    binds an alias to an edge-list path.
    """
    name, sep, path = spec.partition("=")
    name = name.strip()
    if not name:
        raise ParameterError(f"empty graph name in spec {spec!r}")
    if sep:
        path = path.strip()
        if not path:
            raise ParameterError(f"empty edge-list path in spec {spec!r}")
        return name, "edge_list", path
    return name, "dataset", name


def load_spec_graph(name: str, kind: str, source: str) -> Graph:
    """Load the graph a parsed spec names, with *diagnosable* failures.

    A corrupt ``.rsky`` snapshot, a truncated/malformed edge list, or a
    missing file must surface as one clear :class:`ParameterError` line
    (the CLI prints ``error: ...`` and exits 2; the HTTP reload path
    returns 400) — never a traceback that kills server startup.
    """
    if kind == "dataset":
        from repro.workloads import load

        return load(source)
    try:
        # Sniffing loader: binary snapshots open O(1) via memmap, text
        # parses as an edge list — the spec syntax doesn't change.
        return load_graph(source)
    except GraphFormatError as exc:
        raise ParameterError(
            f"cannot load graph {name!r} from {source!r}: {exc}"
        ) from exc
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        raise ParameterError(
            f"cannot load graph {name!r} from {source!r}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


@dataclass
class GraphEntry:
    """One hosted graph: data + warm session + cached skyline."""

    name: str
    graph: Graph
    source: str
    workers: int = 1
    data_plane: str = "auto"
    timeout: Optional[float] = None
    _session: Optional[EngineSession] = field(default=None, repr=False)
    _skyline: Optional[SkylineResult] = field(default=None, repr=False)
    #: The graph's circuit breaker, attached lazily by the serving
    #: supervisor (:mod:`repro.serve.supervision`); ``None`` outside a
    #: supervised server.
    breaker: Optional[object] = field(default=None, repr=False)
    #: Sessions torn down and rebuilt by the supervisor for this graph.
    rebuilds_total: int = 0
    _last_good_skyline: Optional[dict] = field(default=None, repr=False)

    @property
    def session(self) -> EngineSession:
        """The warm engine session, created on first use."""
        if self._session is None or self._session.closed:
            self._session = EngineSession(
                self.graph,
                workers=self.workers,
                data_plane=self.data_plane,
                timeout=self.timeout,
            )
        return self._session

    def skyline_result(
        self, counters: Optional[SkylineCounters] = None
    ) -> SkylineResult:
        """The graph's skyline, computed once on the warm session.

        The graph is immutable, so the result is cached; every
        ``group``/``clique`` request after the first reuses it — the
        same reuse a direct caller gets by passing ``skyline=`` into
        the drivers.
        """
        if self._skyline is None:
            self._skyline = self.session.refine_sky(counters=counters)
        return self._skyline

    def note_good_skyline(self, payload: dict) -> None:
        """Remember the last successful skyline response (degraded path).

        The graph is immutable, so a past 200 is exactly what a healthy
        engine would answer now; while this graph's breaker is open the
        supervisor may serve this copy, marked ``degraded: true``.
        """
        self._last_good_skyline = {
            key: value for key, value in payload.items() if key != "_counters"
        }

    def degraded_skyline_payload(self) -> Optional[dict]:
        """A copy of the last-known-good skyline payload, or ``None``."""
        if self._last_good_skyline is None:
            return None
        return dict(self._last_good_skyline)

    def describe(self) -> dict:
        """The /graphs row: name, source, sizes, session/cache state."""
        return {
            "name": self.name,
            "source": self.source,
            "vertices": self.graph.num_vertices,
            "edges": self.graph.num_edges,
            "workers": self.workers,
            "data_plane": self.data_plane,
            "session": (
                "cold"
                if self._session is None or self._session.closed
                else "warm"
            ),
            "skyline_cached": self._skyline is not None,
            "rebuilds": self.rebuilds_total,
        }

    def close_session(self) -> None:
        """Tear down the warm session only (idempotent; unlinks all
        shared-memory segments).  The skyline cache survives — the
        graph is immutable, so a rebuilt session recomputes the same
        values and the degraded path may keep serving the old copy."""
        if self._session is not None:
            self._session.close()
            self._session = None

    def close(self) -> None:
        """Tear down the warm session (idempotent; registry close path)."""
        self.close_session()


class GraphRegistry:
    """Named graphs behind the serving layer; owns their sessions.

    ``workers`` / ``data_plane`` / ``timeout`` apply to every entry's
    session (per-graph overrides can be added at :meth:`register`).
    ``close()`` is idempotent and closes every session — the registry
    is the single owner, so server shutdown tears down every pool and
    shared-memory segment exactly once.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        data_plane: str = "auto",
        timeout: Optional[float] = None,
    ):
        self.workers = workers
        self.data_plane = data_plane
        self.timeout = timeout
        self._entries: dict[str, GraphEntry] = {}
        self._lock = threading.Lock()
        self._closed = False

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> tuple[str, ...]:
        """Registered graph names, sorted."""
        return tuple(sorted(self._entries))

    def register(
        self,
        name: str,
        graph: Graph,
        *,
        source: str = "inline",
        workers: Optional[int] = None,
    ) -> GraphEntry:
        """Host ``graph`` under ``name`` (re-registration rejected)."""
        if self._closed:
            raise ReproError("this GraphRegistry is closed")
        if name in self._entries:
            raise ParameterError(
                f"graph {name!r} is already registered; unregister or "
                "pick another alias"
            )
        entry = GraphEntry(
            name=name,
            graph=graph,
            source=source,
            workers=self.workers if workers is None else workers,
            data_plane=self.data_plane,
            timeout=self.timeout,
        )
        self._entries[name] = entry
        return entry

    def register_spec(self, spec: str) -> GraphEntry:
        """Register from a ``--graph`` spec string (see
        :func:`parse_graph_spec`)."""
        name, kind, source = parse_graph_spec(spec)
        graph = load_spec_graph(name, kind, source)
        return self.register(name, graph, source=f"{kind}:{source}")

    def entry(self, name: str) -> GraphEntry:
        """The entry for ``name``; ParameterError when unregistered."""
        try:
            return self._entries[name]
        except KeyError:
            raise ParameterError(
                f"unknown graph {name!r}; hosted graphs: "
                f"{list(self.names())}"
            ) from None

    def describe(self) -> list[dict]:
        """One describe() row per registered graph (the /graphs body)."""
        return [self._entries[n].describe() for n in self.names()]

    def close(self) -> None:
        """Close every session.  Idempotent; safe to call twice."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
        for entry in entries:
            entry.close()


# ---------------------------------------------------------------------
# Query execution (runs on the server's single dispatch thread)
# ---------------------------------------------------------------------
def _int_param(params: dict, key: str, default: int, minimum: int) -> int:
    value = params.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParameterError(f"{key} must be an integer, got {value!r}")
    if value < minimum:
        raise ParameterError(f"{key} must be >= {minimum}, got {value}")
    return value


def execute_query(entry: GraphEntry, kind: str, params: dict) -> dict:
    """Run one query on ``entry``'s warm session; a JSON-able result.

    The responses carry the exact values a direct caller sees:

    * ``skyline`` — ``skyline``/``dominator``/``candidates`` of the
      engine's :class:`SkylineResult` (identical to
      ``filter_refine_sky`` / ``filter_refine_bitset`` by the parallel
      engine's equivalence guarantee);
    * ``group`` — ``group``/``gains``/``evaluations``/``pool_size`` of
      the Base*/NeiSky* drivers' :class:`GreedyResult` (``gains`` in
      the objective's own units; eager and lazy strategies return
      identical groups and gains);
    * ``clique`` — the ``mc_brb``/``neisky_mc``/``*_topk_mcc`` clique
      lists, skyline-pruned variants reusing the cached skyline.
    """
    graph = entry.graph
    if kind == "skyline":
        counters = SkylineCounters()
        result = entry.session.refine_sky(counters=counters)
        return {
            "algorithm": result.algorithm,
            "skyline": list(result.skyline),
            "dominator": list(result.dominator),
            "candidate_size": result.candidate_size,
            "size": result.size,
            "_counters": counters,
        }
    if kind == "group":
        from repro.centrality import base_gc, base_gh, neisky_gc, neisky_gh

        k = _int_param(params, "k", 8, 0)
        measure = params.get("measure", "closeness")
        if measure not in ("closeness", "harmonic"):
            raise ParameterError(
                f"unknown group measure {measure!r}; choose 'closeness' "
                "or 'harmonic'"
            )
        use_skyline = bool(params.get("use_skyline", True))
        counters = SkylineCounters()
        if use_skyline:
            run = neisky_gc if measure == "closeness" else neisky_gh
            skyline = entry.skyline_result(counters).skyline
            result = run(graph, k, skyline=skyline)
        else:
            run = base_gc if measure == "closeness" else base_gh
            result = run(graph, k)
        return {
            "measure": measure,
            "use_skyline": use_skyline,
            "k": k,
            "group": list(result.group),
            "gains": list(result.gains),
            "evaluations": result.evaluations,
            "pool_size": result.pool_size,
            "objective": result.objective,
            "_counters": counters,
        }
    if kind == "clique":
        from repro.clique import base_topk_mcc, mc_brb, neisky_mc, neisky_topk_mcc

        top_k = _int_param(params, "top_k", 1, 1)
        use_skyline = bool(params.get("use_skyline", True))
        counters = SkylineCounters()
        if not use_skyline:
            cliques = (
                [mc_brb(graph)] if top_k == 1 else base_topk_mcc(graph, top_k)
            )
        else:
            sky = entry.skyline_result(counters)
            if top_k == 1:
                cliques = [neisky_mc(graph, skyline=sky.skyline)]
            else:
                cliques = neisky_topk_mcc(graph, top_k, skyline_result=sky)
        return {
            "top_k": top_k,
            "use_skyline": use_skyline,
            "cliques": [list(c) for c in cliques],
            "sizes": [len(c) for c in cliques],
            "_counters": counters,
        }
    raise ParameterError(
        f"unknown query kind {kind!r}; choose from {list(QUERY_KINDS)}"
    )
