"""Self-healing supervision for the serving layer.

PR 4 made every *pooled call* fault-tolerant; this module lifts the
same discipline one layer up, to the long-lived server: a single
engine-thread exception, a poisoned warm
:class:`~repro.parallel.session.EngineSession`, or a hung query must
degrade one graph's answers, never kill the process.  Three pieces:

:class:`CircuitBreaker`
    A per-graph health state machine (``closed → open → half_open``)
    with an injectable clock, so the Hypothesis suite can drive every
    transition deterministically.  Repeated engine failures on one
    graph open its breaker; while open, queries for that graph are
    answered from the degraded path (cached last-known-good skyline,
    marked ``degraded: true``, or 503 with ``Retry-After`` for
    uncacheable kinds) without touching an engine.  After a cooldown
    the breaker goes half-open and admits exactly one *probe* query;
    a probe success closes the breaker, a probe failure re-opens it.

:class:`EngineSupervisor`
    Owns the server's single engine thread (a one-worker executor) and
    wraps every dispatch: per-query deadline via ``asyncio.wait_for``
    (the watchdog), a heartbeat the ``/health`` endpoint reads, bounded
    retries with seeded exponential backoff, and — on any engine
    failure — a full teardown-and-rebuild of the failed graph's warm
    session (segment hygiene included: ``EngineSession.close`` unlinks
    every ``/dev/shm`` segment it owns).  A hung query is *abandoned*:
    the executor is replaced so serving continues, the stale thread is
    fenced by a cancel token, and the query is retried or answered 503.
    Rebuilds are budgeted per graph (``max_session_rebuilds``); an
    exhausted budget pins the breaker open — the documented
    "stuck-open" state an operator must resolve (see
    ``docs/serving.md``).

:class:`~repro.harness.faults.ServeFaultPlan`
    The chaos counterpart: deterministic serve-level fault injection
    (engine-exception / session-poison / hang / slow /
    shm-attach-failure) performed by the supervisor at dispatch time,
    keyed on ``(graph, dispatch_index)`` so CI failures replay
    identically.

Every outcome is one of ``("ok", payload)``, ``("degraded", payload)``
or ``("error", status, detail[, headers])`` — the same tuples the
server parks in request futures, so supervision slots into the worker
loop without new exception plumbing.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import Counter
from dataclasses import dataclass
from random import Random
from typing import Callable, Optional

from repro.errors import ParameterError
from repro.harness.faults import ServeFaultPlan
from repro.serve.registry import GraphEntry, execute_query

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "EngineSupervisor",
    "Heartbeat",
    "SupervisionConfig",
]

#: The legal breaker states, in the order the happy path visits them.
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass(frozen=True)
class SupervisionConfig:
    """Self-healing policy knobs, bundled so one object rides ServeConfig.

    ``query_deadline_s``
        Per-query engine deadline (the watchdog); ``None`` disables the
        timer and only exceptions trigger recovery.
    ``max_query_retries``
        Engine re-attempts per query before it is answered 503.
    ``backoff_base_s`` / ``backoff_cap_s`` / ``seed``
        Exponential backoff before a retry, jittered from ``seed`` so
        recovery timing replays deterministically.
    ``max_session_rebuilds``
        Lifetime session-rebuild budget *per graph*; once exhausted the
        graph's breaker is pinned open (stuck-open, operator action
        required) and no further engine work is attempted for it.
    ``breaker_threshold``
        Consecutive engine failures on one graph that open its breaker.
    ``breaker_cooldown_s``
        Seconds an open breaker waits before going half-open.
    ``degraded_cache``
        Serve the cached last-known-good skyline (marked
        ``degraded: true``) while a breaker is open; off means every
        query on an open breaker gets 503.
    """

    query_deadline_s: Optional[float] = 60.0
    max_query_retries: int = 2
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 0.25
    seed: int = 0
    max_session_rebuilds: int = 8
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    degraded_cache: bool = True

    def validate(self) -> None:
        """Reject out-of-range knobs with ParameterError (fail fast)."""
        if self.query_deadline_s is not None and self.query_deadline_s <= 0:
            raise ParameterError(
                "query_deadline_s must be > 0 or None, got "
                f"{self.query_deadline_s}"
            )
        if self.max_query_retries < 0:
            raise ParameterError(
                f"max_query_retries must be >= 0, got {self.max_query_retries}"
            )
        if self.max_session_rebuilds < 0:
            raise ParameterError(
                "max_session_rebuilds must be >= 0, got "
                f"{self.max_session_rebuilds}"
            )
        if self.breaker_threshold < 1:
            raise ParameterError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise ParameterError(
                "breaker_cooldown_s must be >= 0, got "
                f"{self.breaker_cooldown_s}"
            )


class CircuitBreaker:
    """Per-graph health state machine: ``closed → open → half_open``.

    Pure bookkeeping over an injectable monotonic clock — no asyncio,
    no threads — so the stateful property suite can drive it against a
    model.  The supervisor calls :meth:`admit` before engine work and
    :meth:`record_success` / :meth:`record_failure` after; everything
    else is derived.

    * ``closed``: queries run on the engine.  ``threshold`` consecutive
      failures trip the breaker open.
    * ``open``: queries take the degraded path.  After ``cooldown_s``
      the next :meth:`admit` becomes the half-open probe.
    * ``half_open``: exactly one probe runs on the engine; concurrent
      queries stay degraded.  Probe success closes the breaker, probe
      failure re-opens it (fresh cooldown).

    A *pinned* breaker (:meth:`pin_open`) is permanently open — the
    rebuild-budget-exhausted state; only an operator restart clears it.
    """

    def __init__(
        self,
        threshold: int,
        cooldown_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        if threshold < 1:
            raise ParameterError(
                f"breaker threshold must be >= 1, got {threshold}"
            )
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._on_transition = on_transition
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.pinned_reason: Optional[str] = None
        self.consecutive_failures = 0
        # -- lifetime counters (surfaced via /metrics and /health) -----
        self.failures_total = 0
        self.opens_total = 0
        self.closes_total = 0
        self.probes_total = 0
        self.probe_failures_total = 0
        self.degraded_total = 0

    # -- transitions ---------------------------------------------------
    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self._on_transition is not None:
            self._on_transition(old, new_state)

    def state(self) -> str:
        """The current state, applying the lazy open→half_open step."""
        if (
            self._state == "open"
            and self.pinned_reason is None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._transition("half_open")
        return self._state

    def admit(self) -> str:
        """Route one query: ``"engine"`` (run it) or ``"degraded"``.

        In ``half_open`` exactly one caller gets ``"engine"`` (the
        probe) until its verdict arrives; everyone else — and every
        caller while ``open`` — gets ``"degraded"`` and is counted.
        """
        state = self.state()
        if state == "closed":
            return "engine"
        if state == "half_open" and not self._probe_in_flight:
            self._probe_in_flight = True
            self.probes_total += 1
            return "engine"
        self.degraded_total += 1
        return "degraded"

    def record_success(self) -> None:
        """An engine query (or the probe) succeeded."""
        self.consecutive_failures = 0
        if self._state == "half_open":
            self._probe_in_flight = False
            self.closes_total += 1
            self._transition("closed")

    def release_probe(self) -> None:
        """Give the probe slot back without a verdict.

        For exits that say nothing about engine health — a client
        parameter error, a query abandoned mid-recovery, task
        cancellation at shutdown.  The breaker stays ``half_open`` and
        the next :meth:`admit` becomes the probe; without this the slot
        would leak and pin the breaker half-open (every query degraded)
        forever.  No-op unless a probe is actually in flight.
        """
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """An engine query (or the probe) failed."""
        self.failures_total += 1
        self.consecutive_failures += 1
        state = self.state()
        if state == "half_open":
            # Probe failed: straight back to open, fresh cooldown.
            self._probe_in_flight = False
            self.probe_failures_total += 1
            self._opened_at = self._clock()
            self._transition("open")
            return
        if state == "closed" and self.consecutive_failures >= self.threshold:
            self.opens_total += 1
            self._opened_at = self._clock()
            self._transition("open")

    def pin_open(self, reason: str) -> None:
        """Pin the breaker open permanently (stuck-open; operator action)."""
        self.pinned_reason = reason
        self._probe_in_flight = False
        if self._state != "open":
            self.opens_total += 1
            self._opened_at = self._clock()
            self._transition("open")

    # -- introspection -------------------------------------------------
    def retry_after_s(self) -> float:
        """Seconds until the next probe is possible (>= 1 for headers)."""
        if self.pinned_reason is not None:
            return max(1.0, self.cooldown_s)
        remaining = self.cooldown_s - (self._clock() - self._opened_at)
        return max(1.0, remaining)

    def describe(self) -> dict:
        """The /health row for this breaker (state + counters)."""
        doc = {
            "state": self.state(),
            "consecutive_failures": self.consecutive_failures,
            "threshold": self.threshold,
            "failures_total": self.failures_total,
            "opens_total": self.opens_total,
            "closes_total": self.closes_total,
            "probes_total": self.probes_total,
            "probe_failures_total": self.probe_failures_total,
            "degraded_total": self.degraded_total,
        }
        if self.pinned_reason is not None:
            doc["pinned"] = self.pinned_reason
        return doc


class Heartbeat:
    """The engine thread's pulse, read lock-free by ``/health``.

    The engine thread beats at query start and finish; the watchdog
    verdict (``stalled``) is computed at read time against the
    per-query deadline, so a wedged engine is visible from the outside
    even while the in-flight ``wait_for`` is still counting down.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self.started_at = clock()
        self.last_beat = self.started_at
        self.busy_since: Optional[float] = None
        self.graph: Optional[str] = None
        self.kind: Optional[str] = None
        self.queries_started = 0
        self.queries_finished = 0

    def start_query(self, graph: str, kind: str) -> None:
        """Beat once and mark the engine busy on ``graph``/``kind``."""
        now = self._clock()
        self.last_beat = now
        self.busy_since = now
        self.graph = graph
        self.kind = kind
        self.queries_started += 1

    def finish_query(self) -> None:
        """Beat once and mark the engine idle again."""
        self.last_beat = self._clock()
        self.busy_since = None
        self.graph = None
        self.kind = None
        self.queries_finished += 1

    def snapshot(self, deadline_s: Optional[float]) -> dict:
        """The /health ``engine`` block, including the stall verdict."""
        now = self._clock()
        busy = self.busy_since is not None
        busy_s = (now - self.busy_since) if busy else 0.0
        return {
            "busy": busy,
            "busy_s": round(busy_s, 6),
            "graph": self.graph,
            "kind": self.kind,
            "queries_started": self.queries_started,
            "queries_finished": self.queries_finished,
            "seconds_since_beat": round(now - self.last_beat, 6),
            "stalled": bool(
                busy and deadline_s is not None and busy_s > deadline_s
            ),
        }


class _AbandonedQuery(Exception):
    """Raised inside a fenced engine thread after its query was abandoned."""


class EngineSupervisor:
    """The server's supervised engine thread plus per-graph breakers.

    One instance per :class:`~repro.serve.server.SkylineServer`.  All
    coordination happens on the server's event loop; only
    :meth:`_run_query` executes on the engine thread.
    """

    def __init__(
        self,
        config: SupervisionConfig,
        metrics,
        *,
        fault_plan: Optional[ServeFaultPlan] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        config.validate()
        self.config = config
        self.metrics = metrics
        self.fault_plan = fault_plan
        self._clock = clock
        self._rng = Random(config.seed)
        self.heartbeat = Heartbeat(clock)
        self._executor = self._new_executor()
        self._abandoned: list = []  # executors replaced after a hang
        self._dispatches: Counter = Counter()  # graph -> engine dispatches
        self._closed = False

    @staticmethod
    def _new_executor():
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )

    # -- breakers ------------------------------------------------------
    def breaker_for(self, entry: GraphEntry) -> CircuitBreaker:
        """The entry's breaker, created (and attached) on first use."""
        if entry.breaker is None:
            name = entry.name
            entry.breaker = CircuitBreaker(
                self.config.breaker_threshold,
                self.config.breaker_cooldown_s,
                clock=self._clock,
                on_transition=(
                    lambda old, new: self.metrics.record_breaker_transition(
                        name, old, new
                    )
                ),
            )
        return entry.breaker

    # -- the one public entry point ------------------------------------
    async def execute(
        self,
        entry: GraphEntry,
        kind: str,
        params: dict,
        *,
        closing: Callable[[], bool] = lambda: False,
    ) -> tuple:
        """Run one query under full supervision; returns an outcome tuple.

        ``("ok", payload)`` — engine result, bit-for-bit the direct API
        call; ``("degraded", payload)`` — cached last-known-good
        skyline served while the breaker is open; ``("error", status,
        detail, headers)`` — classified failure, never an exception.
        """
        breaker = self.breaker_for(entry)
        if breaker.admit() == "degraded":
            return self._degraded_outcome(entry, breaker, kind)

        loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            fault = None
            if self.fault_plan is not None:
                index = self._dispatches[entry.name]
                fault = self.fault_plan.fault_for(entry.name, index)
            self._dispatches[entry.name] += 1
            cancelled = threading.Event()
            try:
                result = await asyncio.wait_for(
                    loop.run_in_executor(
                        self._executor,
                        self._run_query,
                        entry,
                        kind,
                        params,
                        fault,
                        cancelled,
                    ),
                    timeout=self.config.query_deadline_s,
                )
            except asyncio.TimeoutError:
                cancelled.set()
                self._abandon_executor()
                # The fenced thread skips its own heartbeat updates once
                # the token is set, so settle the books here: the engine
                # is idle again (a fresh executor) and the abandoned
                # query is finished as far as /health is concerned.
                self.heartbeat.finish_query()
                failure = f"query exceeded {self.config.query_deadline_s}s deadline"
                self.metrics.record_engine_failure(entry.name, "hang")
            except ParameterError as exc:
                # Client error: no breaker charge, no rebuild, no retry
                # — and no probe verdict, so free the slot if held.
                breaker.release_probe()
                return ("error", 400, str(exc))
            except _AbandonedQuery:
                # Stale fenced thread; the query was already answered.
                breaker.release_probe()
                return ("error", 503, "query abandoned during recovery")
            except asyncio.CancelledError:
                # Shutdown/interrupt cancellation, not an engine verdict:
                # don't charge the breaker or tear the session down.
                breaker.release_probe()
                raise
            except BaseException as exc:
                failure = f"{type(exc).__name__}: {exc}"
                self.metrics.record_engine_failure(
                    entry.name, type(exc).__name__
                )
            else:
                breaker.record_success()
                if kind == "skyline":
                    entry.note_good_skyline(result)
                return ("ok", result)

            # -- engine failure: heal, then retry / degrade / give up --
            breaker.record_failure()
            rebuilt = self._rebuild_session(entry, breaker)
            if not rebuilt or breaker.state() == "open":
                return self._degraded_outcome(entry, breaker, kind, failure)
            if closing() or attempt >= self.config.max_query_retries:
                return (
                    "error",
                    503,
                    f"engine failure after {attempt + 1} attempt(s): "
                    f"{failure}",
                    {"Retry-After": "1"},
                )
            attempt += 1
            await asyncio.sleep(self._backoff_s(attempt))

    # -- engine-thread body --------------------------------------------
    def _run_query(self, entry, kind, params, fault, cancelled) -> dict:
        """Everything that runs on the engine thread, fenced + faulted."""
        if cancelled.is_set():
            raise _AbandonedQuery(entry.name)
        self.heartbeat.start_query(entry.name, kind)
        try:
            if fault is not None:
                self._perform_serve_fault(fault, entry, cancelled)
            if cancelled.is_set():
                raise _AbandonedQuery(entry.name)
            return execute_query(entry, kind, params)
        finally:
            # A tripped cancel token means the supervisor already
            # abandoned this query (and settled the heartbeat itself);
            # a beat from this stale thread would clobber whatever the
            # replacement executor is now running.
            if not cancelled.is_set():
                self.heartbeat.finish_query()

    def _perform_serve_fault(self, kind, entry, cancelled) -> None:
        """Misbehave as the serve plan dictates (see ServeFaultPlan)."""
        plan = self.fault_plan
        self.metrics.record_injected_fault(entry.name, kind)
        if kind == "engine-exception":
            raise RuntimeError(
                "injected engine exception (serve fault plan)"
            )
        if kind == "session-poison":
            # A genuinely torn-down warm session: real segment teardown,
            # then the failure the supervisor must heal from.
            entry.close_session()
            raise RuntimeError("injected poisoned session (serve fault plan)")
        if kind == "shm-attach-failure":
            raise OSError(
                "injected shared-memory attach failure (serve fault plan)"
            )
        if kind in ("hang", "slow"):
            seconds = (
                plan.hang_seconds if kind == "hang" else plan.slow_seconds
            )
            # Sleep in short slices so an abandoned hang exits promptly
            # instead of pinning a zombie thread for the full duration.
            deadline = time.monotonic() + seconds
            while time.monotonic() < deadline:
                if cancelled.is_set():
                    raise _AbandonedQuery(entry.name)
                time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
            return
        raise ValueError(f"unknown serve fault kind {kind!r}")

    # -- healing -------------------------------------------------------
    def _rebuild_session(self, entry: GraphEntry, breaker) -> bool:
        """Tear down + forget the entry's warm session; budget-checked.

        Returns ``False`` when the graph's rebuild budget is exhausted,
        in which case the breaker is pinned open and the caller must
        stop attempting engine work for this graph.
        """
        entry.close_session()  # idempotent; unlinks every shm segment
        if entry.rebuilds_total >= self.config.max_session_rebuilds:
            if breaker.pinned_reason is None:
                breaker.pin_open(
                    f"session rebuild budget exhausted "
                    f"({self.config.max_session_rebuilds})"
                )
            return False
        entry.rebuilds_total += 1
        self.metrics.record_rebuild(entry.name)
        return True

    def _abandon_executor(self) -> None:
        """Replace the engine executor after a hang; fence the old thread."""
        old = self._executor
        self._executor = self._new_executor()
        old.shutdown(wait=False)
        self._abandoned.append(old)
        self.metrics.record_abandoned_query()

    def _backoff_s(self, attempt: int) -> float:
        """Seeded-jitter exponential backoff (PoolSupervisor's scheme)."""
        base = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * 2 ** (attempt - 1),
        )
        return base * (0.5 + 0.5 * self._rng.random())

    def _degraded_outcome(self, entry, breaker, kind, failure=None) -> tuple:
        """The open-breaker answer: cached skyline or 503 + Retry-After."""
        if kind == "skyline" and self.config.degraded_cache:
            payload = entry.degraded_skyline_payload()
            if payload is not None:
                self.metrics.record_degraded(entry.name, kind)
                return ("degraded", payload)
        detail = (
            f"graph {entry.name!r} is degraded (circuit breaker "
            f"{breaker.state()}); retry later"
        )
        if failure is not None:
            detail = f"{detail} [last failure: {failure}]"
        self.metrics.record_degraded(entry.name, kind)
        return (
            "error",
            503,
            detail,
            {"Retry-After": str(int(breaker.retry_after_s() + 0.999))},
        )

    # -- lifecycle -----------------------------------------------------
    def health(self, registry) -> dict:
        """The /health supervision block: heartbeat + per-graph breakers."""
        return {
            "engine": self.heartbeat.snapshot(self.config.query_deadline_s),
            "breakers": {
                name: registry.entry(name).breaker.describe()
                for name in registry.names()
                if registry.entry(name).breaker is not None
            },
            "rebuilds": {
                name: registry.entry(name).rebuilds_total
                for name in registry.names()
                if registry.entry(name).rebuilds_total
            },
        }

    def close(self, *, abandon_timeout_s: float = 5.0) -> None:
        """Shut the engine thread(s) down.  Idempotent.

        The live executor drains synchronously (it is idle by the time
        the server calls this).  Abandoned executors may still carry a
        fenced hung thread; each gets a bounded join so a zombie sleep
        cannot wedge shutdown past ``abandon_timeout_s``.
        """
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        deadline = time.monotonic() + abandon_timeout_s
        for old in self._abandoned:
            waiter = threading.Thread(
                target=old.shutdown, kwargs={"wait": True}, daemon=True
            )
            waiter.start()
            waiter.join(max(0.0, deadline - time.monotonic()))
        self._abandoned.clear()
