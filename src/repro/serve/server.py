"""Skyline-as-a-service: the asyncio HTTP server.

Architecture (one process, one event loop, one engine thread)::

    clients ──► asyncio connections ──► BoundedRequestQueue ──► worker
                   (protocol.py)          (admission, 429)        │
                                                                  ▼
                                                    engine thread (1)
                                                    execute_query on the
                                                    graph's warm
                                                    EngineSession

* The **event loop** parses requests, enqueues them, and writes
  responses.  It never runs graph work.
* The **queue** is the only place requests wait: bounded (full ⇒ 429),
  priority-ordered, deadline-aware (expired ⇒ 504, never dispatched).
* The **worker coroutine** pops same-graph batches and hands each
  request to a single dedicated engine thread
  (``ThreadPoolExecutor(max_workers=1)``): engine sessions are
  single-caller objects, so all graph work serializes on that thread
  while the loop stays responsive.  Per-request deadlines bound the
  *queue wait*; once dispatched, a request runs to completion under the
  engine's own :class:`~repro.parallel.supervisor.PoolSupervisor`
  deadline machinery (the ``timeout`` every session is built with).

Results travel through futures as plain ``("ok", payload)`` /
``("error", status, detail)`` tuples — no exceptions are parked in
futures, so abandoned requests never log retrieval warnings.

Endpoints: ``POST /query`` (JSON: ``graph``, ``kind``, per-kind params,
``priority``, ``timeout_s``), ``GET /health``, ``GET /metrics``,
``GET /graphs``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParameterError, ReproError
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    HttpError,
    HttpRequest,
    json_response,
    read_request,
)
from repro.serve.queue import (
    DEFAULT_PRIORITY,
    BoundedRequestQueue,
    QueuedRequest,
    QueueFullError,
)
from repro.serve.registry import QUERY_KINDS, GraphRegistry, execute_query

__all__ = ["ServeConfig", "SkylineServer", "ServerThread", "run_server"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving process."""

    host: str = "127.0.0.1"
    port: int = 8321  # 0 = ephemeral (the bound port is reported)
    queue_capacity: int = 64
    batch_max: int = 8
    #: Default per-request deadline (queue wait), seconds; ``None``
    #: waits forever.  Clients override per request via ``timeout_s``.
    default_timeout_s: Optional[float] = 30.0
    #: Serve at most this many ``/query`` requests, then shut down
    #: (``None`` = forever).  Smoke tests and the CLI's --max-requests.
    max_requests: Optional[int] = None

    def validate(self) -> None:
        """Reject out-of-range knobs with ParameterError (fail fast)."""
        if self.queue_capacity < 1:
            raise ParameterError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.batch_max < 1:
            raise ParameterError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ParameterError(
                "default_timeout_s must be > 0 or None, got "
                f"{self.default_timeout_s}"
            )
        if self.max_requests is not None and self.max_requests < 0:
            raise ParameterError(
                f"max_requests must be >= 0 or None, got {self.max_requests}"
            )


class SkylineServer:
    """One serving process: registry + queue + worker + HTTP front."""

    def __init__(self, registry: GraphRegistry, config: ServeConfig):
        config.validate()
        self.registry = registry
        self.config = config
        self.metrics = ServerMetrics()
        self.queue = BoundedRequestQueue(
            config.queue_capacity,
            on_expire=self._on_expire,
            clock=time.monotonic,
        )
        self.port: Optional[int] = None  # bound port, set by start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake = asyncio.Event()
        #: Test hook: clearing this gate pauses dispatch (requests pile
        #: up in the queue) without touching admission — the
        #: deterministic way to drive the 429 path end-to-end.
        self.dispatch_gate = asyncio.Event()
        self.dispatch_gate.set()
        self._closing = False  # stop admitting/dispatching new work
        self._close_started = False  # a close() call is in progress
        self._closed = asyncio.Event()
        self._limit_reached = asyncio.Event()
        self._served_queries = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind the socket, start the engine executor and the worker."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.max_requests == 0:
            # A zero budget is already spent: trip the limit before the
            # worker dispatches anything (lifecycle smoke tests).
            self._closing = True
            self._limit_reached.set()
        self._worker_task = asyncio.create_task(
            self._worker(), name="repro-serve-worker"
        )

    async def close(self) -> None:
        """Stop accepting, fail queued work with 503, tear sessions down.

        Idempotent.  Ordering matters: the engine thread drains before
        the registry closes, so no session is closed mid-call.
        """
        if self._close_started:
            await self._closed.wait()
            return
        self._close_started = True
        self._closing = True
        self._wake.set()
        self.dispatch_gate.set()  # a paused server must still shut down
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker_task is not None:
            await self._worker_task
        for request in self.queue.drain():
            self._finish(request, ("error", 503, "server shutting down"))
        if self._executor is not None:
            # One final hop through the (now idle) engine thread, then a
            # blocking-but-instant shutdown.
            self._executor.shutdown(wait=True)
        self.registry.close()
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until a close() from any path has fully completed."""
        await self._closed.wait()

    # -- queue plumbing ------------------------------------------------
    def _finish(self, request: QueuedRequest, outcome: tuple) -> None:
        future = request.payload["future"]
        if not future.done():
            future.set_result(outcome)

    def _on_expire(self, request: QueuedRequest) -> None:
        self.metrics.record_request(request.kind, 504)
        self._finish(
            request,
            (
                "error",
                504,
                f"deadline expired after {request.payload['timeout_s']}s "
                "in queue",
            ),
        )

    # -- worker --------------------------------------------------------
    async def _worker(self) -> None:
        loop = self._loop
        while True:
            await self.dispatch_gate.wait()
            batch = self.queue.pop_batch(self.config.batch_max)
            if not batch:
                if self._closing:
                    return
                self._wake.clear()
                # Re-check after clearing: an enqueue may have raced us.
                if len(self.queue) or self._closing:
                    continue
                await self._wake.wait()
                continue
            self.metrics.record_batch(len(batch))
            for wait in self.queue.wait_seconds:
                self.metrics.queue_wait.observe(wait)
            self.queue.wait_seconds.clear()
            entry = self.registry.entry(batch[0].graph)
            for request in batch:
                future = request.payload["future"]
                if future.done():  # client connection died and cancelled
                    continue
                started = time.monotonic()
                try:
                    result = await loop.run_in_executor(
                        self._executor,
                        execute_query,
                        entry,
                        request.kind,
                        request.payload["params"],
                    )
                except ParameterError as exc:
                    self.metrics.record_request(request.kind, 400)
                    self._finish(request, ("error", 400, str(exc)))
                except ReproError as exc:
                    self.metrics.record_request(request.kind, 500)
                    self._finish(request, ("error", 500, str(exc)))
                except Exception as exc:  # engine bug: fail the request,
                    # keep serving — one poisoned query must not take
                    # the process down.
                    self.metrics.record_request(request.kind, 500)
                    self._finish(
                        request,
                        ("error", 500, f"{type(exc).__name__}: {exc}"),
                    )
                else:
                    self.metrics.service_time.observe(
                        time.monotonic() - started
                    )
                    self.metrics.absorb_engine_counters(
                        result.pop("_counters", None)
                    )
                    self.metrics.record_request(request.kind, 200)
                    self._finish(request, ("ok", result))
                self._served_queries += 1
                limit = self.config.max_requests
                if limit is not None and self._served_queries >= limit:
                    self._closing = True
                    self._limit_reached.set()
            if self._closing and not len(self.queue):
                return

    # -- HTTP front ----------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(
                    json_response(exc.status, {"error": exc.detail})
                )
                return
            if request is None:
                return
            writer.write(await self._route(request))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _route(self, request: HttpRequest) -> bytes:
        path, method = request.path, request.method
        if path == "/health":
            if method != "GET":
                return json_response(405, {"error": "use GET /health"})
            return json_response(200, self.health())
        if path == "/metrics":
            if method != "GET":
                return json_response(405, {"error": "use GET /metrics"})
            return json_response(
                200, self.metrics.as_dict(queue_counters=self.queue.counters())
            )
        if path == "/graphs":
            if method != "GET":
                return json_response(405, {"error": "use GET /graphs"})
            return json_response(200, {"graphs": self.registry.describe()})
        if path == "/query":
            if method != "POST":
                return json_response(405, {"error": "use POST /query"})
            return await self._handle_query(request)
        return json_response(
            404,
            {
                "error": f"no route {path!r}",
                "routes": ["/health", "/metrics", "/graphs", "/query"],
            },
        )

    def health(self) -> dict:
        """The /health body: status, graph names, queue counters."""
        return {
            "status": "closing" if self._closing else "ok",
            "graphs": list(self.registry.names()),
            "queue": self.queue.counters(),
            "served_queries": self._served_queries,
        }

    async def _handle_query(self, request: HttpRequest) -> bytes:
        try:
            spec = self._parse_query(request)
        except HttpError as exc:
            return json_response(exc.status, {"error": exc.detail})
        if self._closing:
            return json_response(503, {"error": "server shutting down"})

        future: asyncio.Future = self._loop.create_future()
        timeout_s = spec["timeout_s"]
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        queued = QueuedRequest(
            graph=spec["graph"],
            kind=spec["kind"],
            payload={
                "params": spec["params"],
                "future": future,
                "timeout_s": timeout_s,
            },
            priority=spec["priority"],
            deadline=deadline,
        )
        try:
            self.queue.push(queued)
        except QueueFullError as exc:
            self.metrics.record_request(spec["kind"], 429)
            return json_response(
                429,
                {"error": str(exc), "queue": self.queue.counters()},
                extra_headers={"Retry-After": "1"},
            )
        self._wake.set()
        if timeout_s is not None:
            # The queue purges on push/pop; this timer guarantees the
            # 504 fires at the deadline even if the worker is busy on a
            # long engine call and never pops.
            self._loop.call_later(timeout_s, self.queue.purge_expired)
        outcome = await future
        if outcome[0] == "ok":
            return json_response(
                200,
                {
                    "graph": spec["graph"],
                    "kind": spec["kind"],
                    "result": outcome[1],
                },
            )
        _, status, detail = outcome
        return json_response(status, {"error": detail})

    def _parse_query(self, request: HttpRequest) -> dict:
        payload = request.json_body()
        graph = payload.get("graph")
        if not isinstance(graph, str) or not graph:
            raise HttpError(400, "'graph' must be a non-empty string")
        if graph not in self.registry.names():
            raise HttpError(
                404,
                f"unknown graph {graph!r}; hosted graphs: "
                f"{list(self.registry.names())}",
            )
        kind = payload.get("kind")
        if kind not in QUERY_KINDS:
            raise HttpError(
                400,
                f"'kind' must be one of {list(QUERY_KINDS)}, got {kind!r}",
            )
        priority = payload.get("priority", DEFAULT_PRIORITY)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise HttpError(400, f"'priority' must be an integer, got {priority!r}")
        timeout_s = payload.get("timeout_s", self.config.default_timeout_s)
        if timeout_s is not None:
            if isinstance(timeout_s, bool) or not isinstance(
                timeout_s, (int, float)
            ):
                raise HttpError(
                    400, f"'timeout_s' must be a number, got {timeout_s!r}"
                )
            if timeout_s <= 0:
                raise HttpError(
                    400, f"'timeout_s' must be > 0, got {timeout_s}"
                )
            timeout_s = float(timeout_s)
        params = {
            key: value
            for key, value in payload.items()
            if key not in ("graph", "kind", "priority", "timeout_s")
        }
        return {
            "graph": graph,
            "kind": kind,
            "priority": priority,
            "timeout_s": timeout_s,
            "params": params,
        }


# ---------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------
async def _serve(
    registry: GraphRegistry,
    config: ServeConfig,
    *,
    announce=None,
    stop_event: Optional[asyncio.Event] = None,
) -> SkylineServer:
    server = SkylineServer(registry, config)
    await server.start()
    if announce is not None:
        announce(server)
    try:
        waiters = [asyncio.create_task(server._limit_reached.wait())]
        if stop_event is not None:
            waiters.append(asyncio.create_task(stop_event.wait()))
        # With neither a stop event nor a request limit this waits
        # forever; Ctrl-C unwinds through the finally.
        await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        for waiter in waiters:
            waiter.cancel()
    finally:
        await server.close()
    return server


def run_server(registry: GraphRegistry, config: ServeConfig, *, announce=None) -> int:
    """Blocking entry point (the CLI's ``repro serve``).

    Serves until Ctrl-C or ``config.max_requests`` queries; returns the
    conventional exit code (0 normal, 130 on interrupt).  Sessions and
    segments are torn down on every path.
    """
    try:
        asyncio.run(_serve(registry, config, announce=announce))
    except KeyboardInterrupt:
        registry.close()  # idempotent; asyncio.run already unwound close()
        return 130
    return 0


class ServerThread:
    """A live server on a background thread — the test/benchmark harness.

    Runs its own event loop so synchronous clients (``http.client``,
    load generators, pytest) can talk to a real socket::

        with ServerThread(registry, config) as handle:
            resp = handle.request("POST", "/query", {...})

    ``stop()`` requests a clean in-loop shutdown and joins the thread.
    """

    def __init__(self, registry: GraphRegistry, config: ServeConfig):
        self.registry = registry
        self.config = config
        self.server: Optional[SkylineServer] = None
        self._ready = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()

            def announce(server):
                self.server = server
                self._ready.set()

            await _serve(
                self.registry,
                self.config,
                announce=announce,
                stop_event=self._stop_event,
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface startup/serve failures
            self._startup_error = exc
            self._ready.set()

    def start(self) -> "ServerThread":
        """Launch the thread and wait until the server is listening."""
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError(
                "server thread failed to start"
            ) from self._startup_error
        if self.server is None:
            raise RuntimeError("server thread did not become ready")
        return self

    def call_in_loop(self, fn, *args) -> None:
        """Run ``fn(*args)`` on the server's event loop (test hooks)."""
        self._loop.call_soon_threadsafe(fn, *args)

    def stop(self) -> None:
        """Request in-loop shutdown and join the thread."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not shut down")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- synchronous client (stdlib http.client) -----------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        timeout: float = 60.0,
    ) -> tuple[int, dict]:
        """One HTTP round-trip; returns ``(status, decoded_json)``."""
        import http.client
        import json as _json

        conn = http.client.HTTPConnection(
            self.config.host, self.port, timeout=timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = _json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, _json.loads(data.decode("utf-8"))
        finally:
            conn.close()
