"""Skyline-as-a-service: the asyncio HTTP server.

Architecture (one process, one event loop, one engine thread)::

    clients ──► asyncio connections ──► BoundedRequestQueue ──► worker
                   (protocol.py)          (admission, 429)        │
                                                                  ▼
                                                    engine thread (1)
                                                    execute_query on the
                                                    graph's warm
                                                    EngineSession

* The **event loop** parses requests, enqueues them, and writes
  responses.  It never runs graph work.
* The **queue** is the only place requests wait: bounded (full ⇒ 429),
  priority-ordered, deadline-aware (expired ⇒ 504, never dispatched).
* The **worker coroutine** pops same-graph batches and hands each
  request to the supervised engine thread
  (:class:`~repro.serve.supervision.EngineSupervisor`): engine sessions
  are single-caller objects, so all graph work serializes on that
  thread while the loop stays responsive.  Per-request deadlines bound
  the *queue wait*; once dispatched, a request runs under the
  supervisor's per-query watchdog deadline on top of the engine's own
  :class:`~repro.parallel.supervisor.PoolSupervisor` machinery.  An
  engine failure never kills the server: the supervisor rebuilds the
  graph's warm session (full segment hygiene), retries with seeded
  backoff, and — once a graph's circuit breaker opens — degrades that
  one graph (cached skyline marked ``degraded: true``, 503 +
  ``Retry-After`` otherwise) while every other graph serves at full
  fidelity.

Results travel through futures as plain ``("ok", payload)`` /
``("degraded", payload)`` / ``("error", status, detail[, headers])``
tuples — no exceptions are parked in futures, so abandoned requests
never log retrieval warnings.

Endpoints: ``POST /query`` (JSON: ``graph``, ``kind``, per-kind params,
``priority``, ``timeout_s``), ``GET /health``, ``GET /metrics``,
``GET /graphs``, ``POST /graphs`` (live registration:
``{"spec": "alias=path"}``).
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ParameterError, ReproError
from repro.harness.faults import ServeFaultPlan
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    HttpError,
    HttpRequest,
    json_response,
    read_request,
)
from repro.serve.queue import (
    DEFAULT_PRIORITY,
    BoundedRequestQueue,
    QueuedRequest,
    QueueFullError,
)
from repro.serve.registry import (
    QUERY_KINDS,
    GraphRegistry,
    load_spec_graph,
    parse_graph_spec,
)
from repro.serve.supervision import EngineSupervisor, SupervisionConfig

__all__ = ["ServeConfig", "SkylineServer", "ServerThread", "run_server"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving process."""

    host: str = "127.0.0.1"
    port: int = 8321  # 0 = ephemeral (the bound port is reported)
    queue_capacity: int = 64
    batch_max: int = 8
    #: Default per-request deadline (queue wait), seconds; ``None``
    #: waits forever.  Clients override per request via ``timeout_s``.
    default_timeout_s: Optional[float] = 30.0
    #: Serve at most this many ``/query`` requests, then shut down
    #: (``None`` = forever).  Smoke tests and the CLI's --max-requests.
    max_requests: Optional[int] = None
    #: Self-healing policy: watchdog deadline, retry budget, session
    #: rebuild budget, circuit-breaker thresholds, degraded cache.
    supervision: SupervisionConfig = field(default_factory=SupervisionConfig)

    def validate(self) -> None:
        """Reject out-of-range knobs with ParameterError (fail fast)."""
        self.supervision.validate()
        if self.queue_capacity < 1:
            raise ParameterError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.batch_max < 1:
            raise ParameterError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ParameterError(
                "default_timeout_s must be > 0 or None, got "
                f"{self.default_timeout_s}"
            )
        if self.max_requests is not None and self.max_requests < 0:
            raise ParameterError(
                f"max_requests must be >= 0 or None, got {self.max_requests}"
            )


class SkylineServer:
    """One serving process: registry + queue + worker + HTTP front."""

    def __init__(
        self,
        registry: GraphRegistry,
        config: ServeConfig,
        *,
        fault_plan: Optional[ServeFaultPlan] = None,
    ):
        config.validate()
        self.registry = registry
        self.config = config
        self.metrics = ServerMetrics()
        self.supervision = EngineSupervisor(
            config.supervision, self.metrics, fault_plan=fault_plan
        )
        self.queue = BoundedRequestQueue(
            config.queue_capacity,
            on_expire=self._on_expire,
            clock=time.monotonic,
        )
        self.port: Optional[int] = None  # bound port, set by start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake = asyncio.Event()
        #: Test hook: clearing this gate pauses dispatch (requests pile
        #: up in the queue) without touching admission — the
        #: deterministic way to drive the 429 path end-to-end.
        self.dispatch_gate = asyncio.Event()
        self.dispatch_gate.set()
        self._closing = False  # stop admitting/dispatching new work
        self._close_started = False  # a close() call is in progress
        self._closed = asyncio.Event()
        self._limit_reached = asyncio.Event()
        self._served_queries = 0

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the worker (the supervisor already
        owns the engine thread)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.max_requests == 0:
            # A zero budget is already spent: trip the limit before the
            # worker dispatches anything (lifecycle smoke tests).
            self._closing = True
            self._limit_reached.set()
        self._worker_task = asyncio.create_task(
            self._worker(), name="repro-serve-worker"
        )

    async def close(self) -> None:
        """Stop accepting, fail queued work with 503, tear sessions down.

        Idempotent.  Ordering matters: the engine thread drains before
        the registry closes, so no session is closed mid-call.
        """
        if self._close_started:
            await self._closed.wait()
            return
        self._close_started = True
        self._closing = True
        self._wake.set()
        self.dispatch_gate.set()  # a paused server must still shut down
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker_task is not None:
            await self._worker_task
        for request in self.queue.drain():
            self._finish(request, ("error", 503, "server shutting down"))
        # Drain the supervised engine thread (idle by now), then tear
        # every session down exactly once.
        self.supervision.close()
        self.registry.close()
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until a close() from any path has fully completed."""
        await self._closed.wait()

    # -- queue plumbing ------------------------------------------------
    def _finish(self, request: QueuedRequest, outcome: tuple) -> None:
        future = request.payload["future"]
        if not future.done():
            future.set_result(outcome)

    def _on_expire(self, request: QueuedRequest) -> None:
        self.metrics.record_request(request.kind, 504)
        self._finish(
            request,
            (
                "error",
                504,
                f"deadline expired after {request.payload['timeout_s']}s "
                "in queue",
            ),
        )

    # -- worker --------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            await self.dispatch_gate.wait()
            batch = self.queue.pop_batch(self.config.batch_max)
            if not batch:
                if self._closing:
                    return
                self._wake.clear()
                # Re-check after clearing: an enqueue may have raced us.
                if len(self.queue) or self._closing:
                    continue
                await self._wake.wait()
                continue
            self.metrics.record_batch(len(batch))
            for wait in self.queue.wait_seconds:
                self.metrics.queue_wait.observe(wait)
            self.queue.wait_seconds.clear()
            entry = self.registry.entry(batch[0].graph)
            for request in batch:
                future = request.payload["future"]
                if future.done():  # client connection died and cancelled
                    continue
                started = time.monotonic()
                # All failure classification (client error vs engine
                # failure vs degraded) lives in the supervisor; this
                # loop only routes outcome tuples.  One poisoned query
                # must never take the process down.
                outcome = await self.supervision.execute(
                    entry,
                    request.kind,
                    request.payload["params"],
                    closing=lambda: self._closing,
                )
                if outcome[0] == "ok":
                    self.metrics.service_time.observe(
                        time.monotonic() - started
                    )
                    self.metrics.absorb_engine_counters(
                        outcome[1].pop("_counters", None)
                    )
                    self.metrics.record_request(request.kind, 200)
                elif outcome[0] == "degraded":
                    # A 200 with the degraded marker: stale-but-correct
                    # cached skyline while the breaker is open.
                    self.metrics.record_request(request.kind, 200)
                else:
                    self.metrics.record_request(request.kind, outcome[1])
                self._finish(request, outcome)
                self._served_queries += 1
                limit = self.config.max_requests
                if limit is not None and self._served_queries >= limit:
                    self._closing = True
                    self._limit_reached.set()
            if self._closing and not len(self.queue):
                return

    # -- HTTP front ----------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(
                    json_response(exc.status, {"error": exc.detail})
                )
                return
            if request is None:
                return
            writer.write(await self._route(request))
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                await writer.drain()
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _route(self, request: HttpRequest) -> bytes:
        path, method = request.path, request.method
        if path == "/health":
            if method != "GET":
                return json_response(405, {"error": "use GET /health"})
            return json_response(200, self.health())
        if path == "/metrics":
            if method != "GET":
                return json_response(405, {"error": "use GET /metrics"})
            return json_response(
                200, self.metrics.as_dict(queue_counters=self.queue.counters())
            )
        if path == "/graphs":
            if method == "GET":
                return json_response(
                    200, {"graphs": self.registry.describe()}
                )
            if method == "POST":
                return await self._handle_register(request)
            return json_response(
                405, {"error": "use GET /graphs or POST /graphs"}
            )
        if path == "/query":
            if method != "POST":
                return json_response(405, {"error": "use POST /query"})
            return await self._handle_query(request)
        return json_response(
            404,
            {
                "error": f"no route {path!r}",
                "routes": ["/health", "/metrics", "/graphs", "/query"],
            },
        )

    def health(self) -> dict:
        """The /health body: status, graphs, queue, engine + breakers."""
        doc = {
            "status": "closing" if self._closing else "ok",
            "graphs": list(self.registry.names()),
            "queue": self.queue.counters(),
            "queue_by_graph": self.queue.pending_by_graph(),
            "served_queries": self._served_queries,
        }
        doc.update(self.supervision.health(self.registry))
        return doc

    async def _handle_register(self, request: HttpRequest) -> bytes:
        """``POST /graphs``: register one graph spec on the live server.

        Body: ``{"spec": "name"}`` (dataset) or ``{"spec":
        "alias=path"}`` (edge list / ``.rsky`` snapshot).  A corrupt or
        unreadable source is a 400 with one clear line — registration
        failures must never wedge or kill a serving process.
        """
        try:
            payload = request.json_body()
        except HttpError as exc:
            return json_response(exc.status, {"error": exc.detail})
        if self._closing:
            return json_response(
                503,
                {"error": "server shutting down"},
                extra_headers={"Retry-After": "1"},
            )
        spec = payload.get("spec")
        if not isinstance(spec, str) or not spec:
            return json_response(
                400, {"error": "'spec' must be a non-empty string"}
            )
        name = None
        try:
            name, kind, source = parse_graph_spec(spec)
            if name in self.registry.names():
                return json_response(
                    409,
                    {"error": f"graph {name!r} is already registered"},
                )
            # Parsing/mmap of a large graph off the event loop; the
            # engine thread stays free for queries meanwhile.
            graph = await self._loop.run_in_executor(
                None, load_spec_graph, name, kind, source
            )
            entry = self.registry.register(
                name, graph, source=f"{kind}:{source}"
            )
        except ParameterError as exc:
            status = 409 if name in self.registry.names() else 400
            return json_response(status, {"error": str(exc)})
        except ReproError as exc:
            return json_response(400, {"error": str(exc)})
        return json_response(200, {"registered": entry.describe()})

    async def _handle_query(self, request: HttpRequest) -> bytes:
        try:
            spec = self._parse_query(request)
        except HttpError as exc:
            return json_response(exc.status, {"error": exc.detail})
        if self._closing:
            return json_response(503, {"error": "server shutting down"})

        future: asyncio.Future = self._loop.create_future()
        timeout_s = spec["timeout_s"]
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        queued = QueuedRequest(
            graph=spec["graph"],
            kind=spec["kind"],
            payload={
                "params": spec["params"],
                "future": future,
                "timeout_s": timeout_s,
            },
            priority=spec["priority"],
            deadline=deadline,
        )
        try:
            self.queue.push(queued)
        except QueueFullError as exc:
            self.metrics.record_request(spec["kind"], 429)
            return json_response(
                429,
                {"error": str(exc), "queue": self.queue.counters()},
                extra_headers={"Retry-After": "1"},
            )
        self._wake.set()
        if timeout_s is not None:
            # The queue purges on push/pop; this timer guarantees the
            # 504 fires at the deadline even if the worker is busy on a
            # long engine call and never pops.
            self._loop.call_later(timeout_s, self.queue.purge_expired)
        outcome = await future
        if outcome[0] in ("ok", "degraded"):
            body = {
                "graph": spec["graph"],
                "kind": spec["kind"],
                "result": outcome[1],
            }
            if outcome[0] == "degraded":
                # Stale-but-correct cached answer: the marker is the
                # contract — a degraded 200 is never silently normal.
                body["degraded"] = True
            return json_response(200, body)
        _, status, detail, *rest = outcome
        headers = dict(rest[0]) if rest else {}
        if status == 503:
            headers.setdefault("Retry-After", "1")
        return json_response(
            status, {"error": detail}, extra_headers=headers or None
        )

    def _parse_query(self, request: HttpRequest) -> dict:
        payload = request.json_body()
        graph = payload.get("graph")
        if not isinstance(graph, str) or not graph:
            raise HttpError(400, "'graph' must be a non-empty string")
        if graph not in self.registry.names():
            raise HttpError(
                404,
                f"unknown graph {graph!r}; hosted graphs: "
                f"{list(self.registry.names())}",
            )
        kind = payload.get("kind")
        if kind not in QUERY_KINDS:
            raise HttpError(
                400,
                f"'kind' must be one of {list(QUERY_KINDS)}, got {kind!r}",
            )
        priority = payload.get("priority", DEFAULT_PRIORITY)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise HttpError(400, f"'priority' must be an integer, got {priority!r}")
        timeout_s = payload.get("timeout_s", self.config.default_timeout_s)
        if timeout_s is not None:
            if isinstance(timeout_s, bool) or not isinstance(
                timeout_s, (int, float)
            ):
                raise HttpError(
                    400, f"'timeout_s' must be a number, got {timeout_s!r}"
                )
            if timeout_s <= 0:
                raise HttpError(
                    400, f"'timeout_s' must be > 0, got {timeout_s}"
                )
            timeout_s = float(timeout_s)
        params = {
            key: value
            for key, value in payload.items()
            if key not in ("graph", "kind", "priority", "timeout_s")
        }
        return {
            "graph": graph,
            "kind": kind,
            "priority": priority,
            "timeout_s": timeout_s,
            "params": params,
        }


# ---------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------
async def _serve(
    registry: GraphRegistry,
    config: ServeConfig,
    *,
    announce=None,
    stop_event: Optional[asyncio.Event] = None,
    fault_plan: Optional[ServeFaultPlan] = None,
) -> SkylineServer:
    server = SkylineServer(registry, config, fault_plan=fault_plan)
    await server.start()
    if announce is not None:
        announce(server)
    loop = asyncio.get_running_loop()
    sigterm = asyncio.Event()
    try:
        # Graceful SIGTERM: stop admitting, drain queued work with 503,
        # tear sessions/segments down, exit 0.  Signal handlers only
        # install on a main-thread loop; ServerThread harnesses use
        # their stop_event instead.
        loop.add_signal_handler(signal.SIGTERM, sigterm.set)
        sigterm_installed = True
    except (NotImplementedError, RuntimeError, ValueError):
        sigterm_installed = False
    try:
        waiters = [
            asyncio.create_task(server._limit_reached.wait()),
            asyncio.create_task(sigterm.wait()),
        ]
        if stop_event is not None:
            waiters.append(asyncio.create_task(stop_event.wait()))
        # With neither a stop source nor a request limit this waits
        # forever; Ctrl-C unwinds through the finally.
        await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        for waiter in waiters:
            waiter.cancel()
    finally:
        if sigterm_installed:
            loop.remove_signal_handler(signal.SIGTERM)
        await server.close()
    return server


def run_server(
    registry: GraphRegistry,
    config: ServeConfig,
    *,
    announce=None,
    fault_plan: Optional[ServeFaultPlan] = None,
) -> int:
    """Blocking entry point (the CLI's ``repro serve``).

    Serves until Ctrl-C, SIGTERM or ``config.max_requests`` queries;
    returns the conventional exit code (0 normal — including SIGTERM,
    which drains gracefully — and 130 on interrupt).  Sessions and
    segments are torn down on every path.  ``fault_plan`` injects
    serve-level chaos (:class:`~repro.harness.faults.ServeFaultPlan`)
    for harness runs.
    """
    try:
        asyncio.run(
            _serve(registry, config, announce=announce, fault_plan=fault_plan)
        )
    except KeyboardInterrupt:
        registry.close()  # idempotent; asyncio.run already unwound close()
        return 130
    return 0


class ServerThread:
    """A live server on a background thread — the test/benchmark harness.

    Runs its own event loop so synchronous clients (``http.client``,
    load generators, pytest) can talk to a real socket::

        with ServerThread(registry, config) as handle:
            resp = handle.request("POST", "/query", {...})

    ``stop()`` requests a clean in-loop shutdown and joins the thread.
    """

    def __init__(
        self,
        registry: GraphRegistry,
        config: ServeConfig,
        *,
        fault_plan: Optional[ServeFaultPlan] = None,
    ):
        self.registry = registry
        self.config = config
        self.fault_plan = fault_plan
        self.server: Optional[SkylineServer] = None
        self._ready = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    @property
    def port(self) -> int:
        return self.server.port

    def _run(self) -> None:
        async def main():
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()

            def announce(server):
                self.server = server
                self._ready.set()

            await _serve(
                self.registry,
                self.config,
                announce=announce,
                stop_event=self._stop_event,
                fault_plan=self.fault_plan,
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface startup/serve failures
            self._startup_error = exc
            self._ready.set()

    def start(self) -> "ServerThread":
        """Launch the thread and wait until the server is listening."""
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError(
                "server thread failed to start"
            ) from self._startup_error
        if self.server is None:
            raise RuntimeError("server thread did not become ready")
        return self

    def call_in_loop(self, fn, *args) -> None:
        """Run ``fn(*args)`` on the server's event loop (test hooks)."""
        self._loop.call_soon_threadsafe(fn, *args)

    def stop(self) -> None:
        """Request in-loop shutdown and join the thread."""
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=30)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not shut down")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- synchronous client (stdlib http.client) -----------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        timeout: float = 60.0,
    ) -> tuple[int, dict]:
        """One HTTP round-trip; returns ``(status, decoded_json)``."""
        import http.client
        import json as _json

        conn = http.client.HTTPConnection(
            self.config.host, self.port, timeout=timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = _json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, _json.loads(data.decode("utf-8"))
        finally:
            conn.close()
