"""Skyline-as-a-service: asyncio HTTP serving layer.

The repo's first multi-request, multi-graph subsystem: a registry of
named graphs each fronted by one warm
:class:`~repro.parallel.session.EngineSession`, a bounded priority
queue with per-request deadlines and backpressure, and a handcrafted
asyncio HTTP front (no new dependencies).  See ``docs/serving.md`` for
the architecture and semantics, and ``repro serve --help`` for the CLI.
"""

from repro.serve.metrics import LatencyHistogram, ServerMetrics
from repro.serve.protocol import HttpError, HttpRequest
from repro.serve.queue import (
    DEFAULT_PRIORITY,
    BoundedRequestQueue,
    QueuedRequest,
    QueueFullError,
)
from repro.serve.registry import (
    QUERY_KINDS,
    GraphEntry,
    GraphRegistry,
    execute_query,
    load_spec_graph,
    parse_graph_spec,
)
from repro.serve.server import (
    ServeConfig,
    ServerThread,
    SkylineServer,
    run_server,
)
from repro.serve.supervision import (
    BREAKER_STATES,
    CircuitBreaker,
    EngineSupervisor,
    Heartbeat,
    SupervisionConfig,
)

__all__ = [
    "BREAKER_STATES",
    "BoundedRequestQueue",
    "CircuitBreaker",
    "DEFAULT_PRIORITY",
    "EngineSupervisor",
    "GraphEntry",
    "GraphRegistry",
    "Heartbeat",
    "HttpError",
    "HttpRequest",
    "LatencyHistogram",
    "QUERY_KINDS",
    "QueueFullError",
    "QueuedRequest",
    "ServeConfig",
    "ServerMetrics",
    "ServerThread",
    "SkylineServer",
    "SupervisionConfig",
    "execute_query",
    "load_spec_graph",
    "parse_graph_spec",
    "run_server",
]
