"""Minimal HTTP/1.1 framing for the serving layer.

The server speaks just enough HTTP for ``curl``, ``http.client`` and
load generators: request-line + headers + ``Content-Length`` bodies in,
status-line + headers + body out.  It is handcrafted over asyncio
streams on purpose — the stdlib's ``http.server`` is thread-per-request
and synchronous, which would put a blocking accept loop in front of an
asyncio queue; a ~150-line parser keeps the whole data path on one
event loop with zero new dependencies.

Deliberately unsupported (rejected with an explicit status, never
silently mangled): chunked transfer encoding (411), header blocks past
:data:`MAX_HEADER_BYTES` (431), bodies past :data:`MAX_BODY_BYTES`
(413).  Connections are ``close``-only: one request per connection is
the simplest thing that is correct under client timeouts, and the
serving cost is dominated by graph work, not accept churn.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Mapping, Optional
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "STATUS_REASONS",
    "json_response",
    "read_request",
    "render_response",
]

#: Upper bound on the request line + header block, in bytes.
MAX_HEADER_BYTES = 16 * 1024

#: Upper bound on a request body, in bytes.  Query payloads are a few
#: hundred bytes of JSON; anything near this limit is a client bug.
MAX_BODY_BYTES = 1024 * 1024

#: Reason phrases for every status the server emits.
STATUS_REASONS: dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or unsupported request, carrying the reply status."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json_body(self) -> dict:
        """The body decoded as a JSON object (400 on anything else)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one request from an asyncio stream reader.

    Returns ``None`` for a connection closed before any bytes arrive
    (clients probing the port, or keep-alive racing our close).  Raises
    :class:`HttpError` for anything malformed.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head exceeds the header limit") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, "request head exceeds the header limit")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding"):
        raise HttpError(411, "chunked transfer encoding is not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_header!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body exceeds the size limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "connection closed mid-body") from None
    return HttpRequest(
        method=method,
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """The full wire form of one response (close-delimited connection)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if extra_headers:
        head.extend(f"{name}: {value}" for name, value in extra_headers.items())
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    status: int,
    payload: dict,
    *,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """A JSON-encoded response (sorted keys: deterministic on the wire)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return render_response(status, body, extra_headers=extra_headers)
