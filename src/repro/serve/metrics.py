"""Serving telemetry: counters + latency histograms for ``/metrics``.

The serving layer's observability contract is one JSON document that
stitches together every telemetry source the repo already has:

* the queue's admission counters (:meth:`~repro.serve.queue.
  BoundedRequestQueue.counters`),
* per-(kind, status) request totals,
* queue-wait and service-time histograms with exact percentile reads
  from recorded samples (bounded reservoir) plus fixed power-of-two
  bucket counts for dashboards,
* the engine's own work counters — :class:`~repro.core.counters.
  SkylineCounters` sums and the ``resilience_*`` / ``parallel_session``
  / ``data_plane`` extras every pooled call reports — summed across
  all served requests.

Everything is plain ints/floats/strings, so ``json.dumps`` of
:meth:`ServerMetrics.as_dict` *is* the ``/metrics`` payload.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

__all__ = ["LatencyHistogram", "ServerMetrics"]

#: Histogram bucket upper bounds, seconds (powers of two from 1 ms up).
_BUCKET_BOUNDS = tuple(0.001 * 2**i for i in range(16))  # 1ms .. ~32.8s

#: Exact-percentile reservoir size per histogram.  Serving benchmarks
#: replay thousands of requests; keeping the most recent samples gives
#: exact p50/p99 over a sliding window at trivial memory cost.
_MAX_SAMPLES = 8192


class LatencyHistogram:
    """Fixed-bucket histogram with an exact-sample percentile reservoir."""

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.bucket_counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self._samples: list[float] = []

    def observe(self, seconds: float) -> None:
        """Record one latency sample (bucket, sum, reservoir)."""
        self.count += 1
        self.sum += seconds
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if seconds <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self._samples.append(seconds)
        if len(self._samples) > _MAX_SAMPLES:
            del self._samples[: len(self._samples) - _MAX_SAMPLES]

    def percentile(self, p: float) -> Optional[float]:
        """Exact percentile over the retained samples (``None`` if empty).

        Nearest-rank on the sorted reservoir: ``p`` in ``[0, 100]``.
        """
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def as_dict(self) -> dict:
        """Count, sum, buckets and reservoir percentiles as plain JSON."""
        doc = {
            "count": self.count,
            "sum_s": self.sum,
            "buckets": {
                f"le_{bound:.3f}s": n
                for bound, n in zip(_BUCKET_BOUNDS, self.bucket_counts)
            },
        }
        doc["buckets"]["le_inf"] = self.bucket_counts[-1]
        for label, p in (("p50_s", 50), ("p90_s", 90), ("p99_s", 99)):
            value = self.percentile(p)
            if value is not None:
                doc[label] = value
        return doc


class ServerMetrics:
    """Aggregated serving telemetry, rendered as the ``/metrics`` body."""

    def __init__(self):
        self.requests_total: Counter = Counter()  # (kind, status) -> n
        self.queue_wait = LatencyHistogram()
        self.service_time = LatencyHistogram()
        self.engine_counters: Counter = Counter()
        self.engine_extra: Counter = Counter()
        self.session_calls: Counter = Counter()  # "cold"/"warm" -> n
        self.batches_total = 0
        self.batched_requests_total = 0
        # -- supervision / self-healing (PR 9) -------------------------
        self.engine_failures: Counter = Counter()  # (graph, kind) -> n
        self.rebuilds: Counter = Counter()  # graph -> sessions rebuilt
        self.breaker_transitions: Counter = Counter()  # (graph, old->new)
        self.degraded: Counter = Counter()  # (graph, kind) -> n
        self.injected_faults: Counter = Counter()  # (graph, kind) -> n
        self.abandoned_queries_total = 0  # hangs reclaimed by watchdog

    # -- recording -----------------------------------------------------
    def record_request(self, kind: str, status: int) -> None:
        """Count one completed request under its kind and HTTP status."""
        self.requests_total[(kind, status)] += 1

    def record_engine_failure(self, graph: str, kind: str) -> None:
        """Count one supervised engine failure by graph and failure kind."""
        self.engine_failures[(graph, kind)] += 1

    def record_rebuild(self, graph: str) -> None:
        """Count one session teardown-and-rebuild for ``graph``."""
        self.rebuilds[graph] += 1

    def record_breaker_transition(self, graph: str, old: str, new: str) -> None:
        """Count one circuit-breaker state transition for ``graph``."""
        self.breaker_transitions[(graph, f"{old}->{new}")] += 1

    def record_degraded(self, graph: str, kind: str) -> None:
        """Count one query answered from the degraded path (open breaker)."""
        self.degraded[(graph, kind)] += 1

    def record_injected_fault(self, graph: str, kind: str) -> None:
        """Count one chaos-plan fault performed on the engine thread."""
        self.injected_faults[(graph, kind)] += 1

    def record_abandoned_query(self) -> None:
        """Count one hung query abandoned by the per-query watchdog."""
        self.abandoned_queries_total += 1

    def record_batch(self, size: int) -> None:
        """Count one worker dispatch cycle of ``size`` requests."""
        self.batches_total += 1
        self.batched_requests_total += size

    def absorb_engine_counters(self, counters) -> None:
        """Fold one call's :class:`SkylineCounters` into the totals.

        Numeric ``extra`` values (``resilience_*`` event counts and the
        like) are summed; ``parallel_session`` cold/warm labels are
        tallied; other non-numeric extras are counted by value so the
        surface stays JSON-able.
        """
        if counters is None:
            return
        for key, value in counters.as_dict().items():
            self.engine_counters[key] += value
        for key, value in getattr(counters, "extra", {}).items():
            if key == "parallel_session":
                self.session_calls[str(value)] += 1
            elif isinstance(value, bool):
                self.engine_extra[f"{key}={value}"] += 1
            elif isinstance(value, (int, float)):
                self.engine_extra[key] += value
            else:
                self.engine_extra[f"{key}={value}"] += 1

    # -- rendering -----------------------------------------------------
    def as_dict(self, *, queue_counters: Optional[dict] = None) -> dict:
        """The full /metrics document (requests/queue/latency/engine)."""
        requests = {}
        for (kind, status), n in sorted(self.requests_total.items()):
            requests.setdefault(kind, {})[str(status)] = n
        return {
            "requests": requests,
            "queue": dict(queue_counters or {}),
            "queue_wait": self.queue_wait.as_dict(),
            "service_time": self.service_time.as_dict(),
            "batches": {
                "total": self.batches_total,
                "requests": self.batched_requests_total,
            },
            "engine": {
                "counters": dict(sorted(self.engine_counters.items())),
                "extra": dict(sorted(self.engine_extra.items())),
                "session_calls": dict(sorted(self.session_calls.items())),
            },
            "supervision": {
                "engine_failures": {
                    f"{graph}:{kind}": n
                    for (graph, kind), n in sorted(
                        self.engine_failures.items()
                    )
                },
                "rebuilds": dict(sorted(self.rebuilds.items())),
                "breaker_transitions": {
                    f"{graph}:{edge}": n
                    for (graph, edge), n in sorted(
                        self.breaker_transitions.items()
                    )
                },
                "degraded": {
                    f"{graph}:{kind}": n
                    for (graph, kind), n in sorted(self.degraded.items())
                },
                "injected_faults": {
                    f"{graph}:{kind}": n
                    for (graph, kind), n in sorted(
                        self.injected_faults.items()
                    )
                },
                "abandoned_queries_total": self.abandoned_queries_total,
            },
        }
