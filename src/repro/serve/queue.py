"""Bounded priority queue with deadlines, batching and backpressure.

The admission-control heart of the serving layer, kept free of asyncio
so a Hypothesis state machine can drive every transition against a
model with a fake clock (``tests/serve/test_queue_stateful.py``):

* **Bounded** — :meth:`BoundedRequestQueue.push` raises
  :class:`QueueFullError` once ``capacity`` live requests are pending.
  The server maps that to a 429: under overload the queue *rejects*,
  it never grows without bound.  (Purging expired requests happens
  before the capacity check, so a stale backlog cannot wedge the
  server into rejecting forever.)
* **Priority** — lower ``priority`` values dispatch first; ties break
  FIFO by arrival sequence.  Implemented as a heap with lazy deletion.
* **Deadlines** — each request may carry an absolute deadline (same
  clock as the queue's).  An expired request is completed exceptionally
  via ``on_expire`` at purge/pop time and **never returned to a
  dispatcher**: expiry is enforced at the queue boundary, so no engine
  cycle is spent on a request whose client has already given up.
* **Batching** — :meth:`pop_batch` returns the most urgent request
  plus up to ``batch_max - 1`` further requests *for the same graph*,
  in priority order.  Same-graph batches keep a warm
  :class:`~repro.parallel.session.EngineSession` hot instead of
  ping-ponging between graphs.

Counters (`enqueued`/`dequeued`/`rejected`/`expired`) and queue
wait-times are recorded on the queue itself; the server folds them
into ``/metrics``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ReproError

__all__ = [
    "DEFAULT_PRIORITY",
    "QueueFullError",
    "QueuedRequest",
    "BoundedRequestQueue",
]

#: Priority assigned when a client does not ask for one.  Clients may
#: go more urgent (lower) or less urgent (higher).
DEFAULT_PRIORITY = 10


class QueueFullError(ReproError):
    """Backpressure: the queue is at capacity; the request was rejected."""

    def __init__(self, capacity: int):
        super().__init__(
            f"request queue is full ({capacity} pending); retry later"
        )
        self.capacity = capacity


@dataclass
class QueuedRequest:
    """One admitted request, from enqueue to dispatch (or expiry).

    ``payload`` is opaque to the queue (the server stores the parsed
    query spec plus the asyncio future it will resolve); ``graph`` is
    the batching key; ``deadline`` is absolute, on the queue's clock,
    ``None`` meaning "wait forever".
    """

    graph: str
    kind: str
    payload: Any = None
    priority: int = DEFAULT_PRIORITY
    deadline: Optional[float] = None
    seq: int = -1  # assigned by the queue at admission
    enqueued_at: float = field(default=0.0, repr=False)

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed as of ``now`` (monotonic)."""
        return self.deadline is not None and now >= self.deadline


class BoundedRequestQueue:
    """A bounded, deadline-aware priority queue of :class:`QueuedRequest`.

    Parameters
    ----------
    capacity:
        Maximum number of live (admitted, not yet dispatched or
        expired) requests.
    on_expire:
        Called once per request whose deadline passed while queued —
        the server uses it to fail the request's future.  Never called
        for dispatched requests.
    clock:
        Monotonic time source; injectable for deterministic tests.

    Not thread-safe: the server drives it from one event loop, the
    tests from one state machine.
    """

    def __init__(
        self,
        capacity: int,
        *,
        on_expire: Optional[Callable[[QueuedRequest], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ReproError(
                f"queue capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._on_expire = on_expire
        self._clock = clock
        self._heap: list[tuple[int, int, QueuedRequest]] = []
        self._live: dict[int, QueuedRequest] = {}
        self._seq = itertools.count()
        # -- counters, surfaced via /metrics ---------------------------
        self.enqueued_total = 0
        self.dequeued_total = 0
        self.rejected_total = 0
        self.expired_total = 0
        self.wait_seconds: list[float] = []  # consumed by the server

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._live)

    @property
    def depth(self) -> int:
        """Live requests currently pending (the bounded quantity)."""
        return len(self._live)

    def pending_by_graph(self) -> dict[str, int]:
        """Live request count per graph (the /health queue breakdown).

        Lets an operator see whether a backlog is pinned to one
        degraded graph or spread across the fleet.
        """
        counts: dict[str, int] = {}
        for request in self._live.values():
            counts[request.graph] = counts.get(request.graph, 0) + 1
        return dict(sorted(counts.items()))

    def counters(self) -> dict[str, int]:
        """Lifetime admission/dispatch/rejection/expiry totals + depth."""
        return {
            "depth": self.depth,
            "capacity": self.capacity,
            "enqueued_total": self.enqueued_total,
            "dequeued_total": self.dequeued_total,
            "rejected_total": self.rejected_total,
            "expired_total": self.expired_total,
        }

    # -- transitions ---------------------------------------------------
    def _expire(self, request: QueuedRequest) -> None:
        self.expired_total += 1
        if self._on_expire is not None:
            self._on_expire(request)

    def purge_expired(self, now: Optional[float] = None) -> int:
        """Expire every live request whose deadline has passed."""
        if now is None:
            now = self._clock()
        stale = [r for r in self._live.values() if r.expired(now)]
        for request in stale:
            del self._live[request.seq]
            self._expire(request)
        return len(stale)

    def push(self, request: QueuedRequest) -> QueuedRequest:
        """Admit ``request`` or raise :class:`QueueFullError`.

        Assigns the arrival sequence number and enqueue timestamp.
        A request born expired is admitted and expired on the spot
        (counted in both totals) rather than rejected as overload —
        the client gets the deadline error its timeout asked for.
        """
        now = self._clock()
        self.purge_expired(now)
        if len(self._live) >= self.capacity:
            self.rejected_total += 1
            raise QueueFullError(self.capacity)
        request.seq = next(self._seq)
        request.enqueued_at = now
        self.enqueued_total += 1
        if request.expired(now):
            self._expire(request)
            return request
        self._live[request.seq] = request
        heapq.heappush(
            self._heap, (request.priority, request.seq, request)
        )
        return request

    def _pop_live(self, now: float) -> Optional[QueuedRequest]:
        """The most urgent unexpired request, expiring stale heads."""
        while self._heap:
            _, seq, request = heapq.heappop(self._heap)
            if seq not in self._live:  # lazily deleted (batch pull)
                continue
            del self._live[seq]
            if request.expired(now):
                self._expire(request)
                continue
            return request
        return None

    def pop_batch(self, batch_max: int = 1) -> list[QueuedRequest]:
        """Up to ``batch_max`` same-graph requests, most urgent first.

        The head of the batch is the globally most urgent live request;
        followers are the most urgent *remaining* requests for the same
        graph.  Expired requests encountered along the way are completed
        via ``on_expire`` and never returned.  Empty list = empty queue.
        """
        if batch_max < 1:
            raise ReproError(f"batch_max must be >= 1, got {batch_max}")
        now = self._clock()
        # Eager expiry at the pop boundary: every stale request is
        # completed now, so depth is truthful and no expired request
        # can linger in the live set between pops.
        self.purge_expired(now)
        head = self._pop_live(now)
        if head is None:
            return []
        batch = [head]
        if batch_max > 1:
            # Followers: scan live same-graph requests in priority order.
            same = sorted(
                (
                    r
                    for r in self._live.values()
                    if r.graph == head.graph
                ),
                key=lambda r: (r.priority, r.seq),
            )
            for request in same[: batch_max - 1]:
                del self._live[request.seq]  # heap entry now lazy-dead
                if request.expired(now):
                    self._expire(request)
                    continue
                batch.append(request)
        for request in batch:
            self.dequeued_total += 1
            self.wait_seconds.append(now - request.enqueued_at)
        return batch

    def drain(self) -> list[QueuedRequest]:
        """Remove and return every live request (shutdown path)."""
        pending = sorted(
            self._live.values(), key=lambda r: (r.priority, r.seq)
        )
        self._live.clear()
        self._heap.clear()
        return pending
