"""Structural invariant checks for :class:`~repro.graph.adjacency.Graph`.

The graph class trusts its constructors; :func:`validate_graph` is the
independent auditor used by property-based tests and by anyone loading
graphs through untrusted code paths.  It verifies:

* adjacency rows are strictly sorted (sorted + duplicate-free),
* the relation is symmetric,
* no self-loops,
* the stored edge count matches the adjacency lists.
"""

from __future__ import annotations

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph

__all__ = ["validate_graph"]


def validate_graph(graph: Graph) -> None:
    """Raise :class:`GraphFormatError` if any structural invariant fails."""
    n = graph.num_vertices
    half_edges = 0
    for u in graph.vertices():
        prev = -1
        for v in graph.neighbors(u):
            if not (0 <= v < n):
                raise GraphFormatError(
                    f"vertex {u} lists out-of-range neighbor {v}"
                )
            if v == u:
                raise GraphFormatError(f"self-loop at vertex {u}")
            if v <= prev:
                raise GraphFormatError(
                    f"adjacency of {u} not strictly sorted at {v}"
                )
            prev = v
            if not graph.has_edge(v, u):
                raise GraphFormatError(
                    f"asymmetric edge: {u} lists {v} but not vice versa"
                )
            half_edges += 1
    if half_edges != 2 * graph.num_edges:
        raise GraphFormatError(
            f"edge count mismatch: num_edges={graph.num_edges} but "
            f"adjacency holds {half_edges} half-edges"
        )
