"""Numpy-backed CSR graph — the canonical large-graph substrate.

:class:`CSRGraph` stores adjacency as two contiguous ``int32`` ndarrays
(``indptr``/``indices``) and satisfies the full :class:`~repro.graph.
adjacency.Graph` protocol, so every algorithm in the package runs on it
unchanged.  What the array backing buys:

* **O(1) construction from a snapshot** — :meth:`CSRGraph.from_arrays`
  wraps existing buffers (including ``np.memmap`` views of the on-disk
  binary format, :mod:`repro.graph.binfmt`) without copying;
  :meth:`~repro.graph.adjacency.Graph.to_csr` returns the same arrays
  back, zero-copy, which is exactly what the shared-memory data plane
  publishes to workers.
* **Vectorized whole-graph scans** — ``degrees()`` is one ``np.diff``,
  and the filter phase (:mod:`repro.core.filter_phase`) runs its bulk
  neighborhood-inclusion pretests directly over :meth:`csr_arrays`.
* **List-speed scalar loops** — ``neighbors(u)`` materializes a row
  into a plain tuple on first touch and caches it (the
  :class:`~repro.graph.adjacency.CSRGraphView` pattern), so the
  refine/clique/greedy inner loops never pay numpy's per-element boxing
  cost.

Arrays are exposed read-only (``writeable=False`` views), matching the
immutability contract of the list-backed graph.

``numpy`` is optional at runtime: gate on :data:`HAVE_NUMPY` (callers
like :func:`as_csr` degrade to the list-backed graph when it is
missing).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph

try:  # pragma: no cover - exercised via HAVE_NUMPY gating tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: ``True`` when numpy is importable and CSRGraph can be built.
HAVE_NUMPY = _np is not None

__all__ = [
    "CSRGraph",
    "HAVE_NUMPY",
    "as_csr",
    "csr_from_edge_arrays",
    "graph_from_edge_arrays",
]


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise GraphFormatError(
            "CSRGraph requires numpy; gate on repro.graph.csr.HAVE_NUMPY "
            "or build a list-backed Graph instead"
        )


def _readonly_i32(data):
    """``data`` as a read-only ``int32`` ndarray (zero-copy when possible)."""
    arr = _np.asarray(data)
    if arr.dtype != _np.int32:
        arr = arr.astype(_np.int32)
    view = arr.view()
    view.flags.writeable = False
    return view


class CSRGraph(Graph):
    """A :class:`Graph` whose storage is two ``int32`` CSR ndarrays.

    Build with :meth:`from_arrays` (wrap existing buffers, zero-copy) or
    :meth:`from_graph` (snapshot a list-backed graph); generators and
    loaders use :func:`graph_from_edge_arrays` to assemble one straight
    from edge endpoint arrays without ever holding Python adjacency
    lists.

    Row materialization is lazy and cached exactly like
    :class:`~repro.graph.adjacency.CSRGraphView`: algorithms touching a
    fraction of the graph only pay for the rows they visit, and rows are
    plain int tuples, so results (and iteration order) are identical to
    the list-backed graph's — the differential property suite pins this.
    """

    __slots__ = ("_np_indptr", "_np_indices")

    def __init__(self, indptr, indices):
        # Trusted constructor: use from_arrays / from_graph /
        # graph_from_edge_arrays, which normalize dtype and flags.
        n = int(len(indptr)) - 1
        super().__init__([None] * n, int(len(indices)) // 2)
        self._np_indptr = indptr
        self._np_indices = indices
        # to_csr() is the memoized self._csr — returning the backing
        # arrays themselves makes every snapshot/publish zero-copy.
        self._csr = (indptr, indices)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, indptr, indices) -> "CSRGraph":
        """Wrap ``(indptr, indices)`` buffers as a graph.

        The snapshot is trusted (sorted rows, symmetric edges, no
        loops) — it came from :meth:`~repro.graph.adjacency.Graph.
        to_csr`, the binary loader, or a validated build pipeline.
        Buffers already in ``int32`` (including memmaps) are wrapped
        zero-copy; anything else is converted once.
        """
        _require_numpy()
        indptr = _np.asarray(indptr)
        if len(indptr) == 0:
            raise GraphFormatError("CSR indptr must have at least 1 entry")
        if int(indptr[-1]) != len(indices):
            raise GraphFormatError(
                f"CSR indptr ends at {int(indptr[-1])} but indices holds "
                f"{len(indices)} entries"
            )
        if len(indices) >= 1 << 31:
            raise GraphFormatError(
                "CSR indices exceed int32 range; graphs beyond ~1.07e9 "
                "edges are not supported"
            )
        return cls(_readonly_i32(indptr), _readonly_i32(indices))

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """A CSR-backed copy of ``graph`` (``graph`` itself if already one)."""
        if isinstance(graph, CSRGraph):
            return graph
        indptr, indices = graph.to_csr()
        return cls.from_arrays(indptr, indices)

    # ------------------------------------------------------------------
    # Array access
    # ------------------------------------------------------------------
    def csr_arrays(self):
        """The backing ``(indptr, indices)`` ndarrays, read-only."""
        return self._np_indptr, self._np_indices

    def neighbors_array(self, u: int):
        """``N(u)`` as a zero-copy read-only ``int32`` slice."""
        indptr = self._np_indptr
        return self._np_indices[indptr[u] : indptr[u + 1]]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def degree(self, u: int) -> int:
        indptr = self._np_indptr
        return int(indptr[u + 1]) - int(indptr[u])

    def degrees(self) -> list[int]:
        return _np.diff(self._np_indptr).tolist()

    def neighbors(self, u: int) -> Sequence[int]:
        row = self._adj[u]
        if row is None:
            indptr = self._np_indptr
            row = tuple(
                self._np_indices[indptr[u] : indptr[u + 1]].tolist()
            )
            self._adj[u] = row
        return row

    def has_edge(self, u: int, v: int) -> bool:
        indptr = self._np_indptr
        du = int(indptr[u + 1]) - int(indptr[u])
        dv = int(indptr[v + 1]) - int(indptr[v])
        a, b = (u, v) if du <= dv else (v, u)
        s, e = int(indptr[a]), int(indptr[a + 1])
        ind = self._np_indices
        i = s + int(_np.searchsorted(ind[s:e], b))
        return i < e and int(ind[i]) == b

    def closed_neighborhood(self, u: int) -> list[int]:
        self.neighbors(u)
        return super().closed_neighborhood(u)

    # ------------------------------------------------------------------
    # Whole-graph operations (materialize rows, then defer to base)
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        for u in range(len(self._adj)):
            if self._adj[u] is None:
                self.neighbors(u)

    def edges(self) -> Iterator[tuple[int, int]]:
        self._materialize()
        return super().edges()

    def induced_subgraph(
        self, vertices: Iterable[int]
    ) -> tuple[Graph, list[int]]:
        self._materialize()
        return super().induced_subgraph(vertices)

    def __eq__(self, other: object) -> bool:
        self._materialize()
        return super().__eq__(other)

    def __hash__(self) -> int:
        self._materialize()
        return super().__hash__()

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"


def as_csr(graph: Graph) -> Graph:
    """``graph`` on the numpy substrate when available, else unchanged.

    The single upgrade point loaders and the workload registry call:
    results are bit-for-bit identical either way, so callers never need
    to know which backing they got.
    """
    if not HAVE_NUMPY or isinstance(graph, CSRGraph):
        return graph
    return CSRGraph.from_graph(graph)


def csr_from_edge_arrays(n: int, us, vs):
    """Vectorized CSR assembly from undirected edge endpoint arrays.

    ``us``/``vs`` hold one entry per undirected edge — already
    deduplicated, loop-free and in ``[0, n)`` (loaders and generators
    validate upstream).  Returns sorted ``(indptr, indices)`` ``int32``
    arrays; cost is one ``lexsort`` over the ``2m`` directed entries.
    """
    _require_numpy()
    us = _np.asarray(us, dtype=_np.int64)
    vs = _np.asarray(vs, dtype=_np.int64)
    src = _np.concatenate([us, vs])
    dst = _np.concatenate([vs, us])
    indptr = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(_np.bincount(src, minlength=n), out=indptr[1:])
    order = _np.lexsort((dst, src))
    indices = dst[order]
    return indptr.astype(_np.int32), indices.astype(_np.int32)


def graph_from_edge_arrays(n: int, us, vs) -> CSRGraph:
    """A :class:`CSRGraph` from undirected edge endpoint arrays."""
    indptr, indices = csr_from_edge_arrays(n, us, vs)
    return CSRGraph.from_arrays(indptr, indices)
