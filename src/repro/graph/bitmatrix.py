"""Packed adjacency bitsets for the candidate set of the refine phase.

The refine phase of ``FilterRefineSky`` repeatedly asks "is every
neighbor of ``u`` (except one) adjacent to ``w``?".  The bloom path
answers per neighbor; this module answers per *word*: candidate
adjacency rows are packed into ``numpy`` ``uint64`` words so the whole
test collapses to ``(row_u & ~row_w).any()`` — one word-parallel
AND-NOT over ``⌈n/64⌉`` machine words, exact by construction (bit ``x``
of row ``u`` is set iff ``(u, x) ∈ E``, no hashing involved).

Memory model
------------
Rows are built **only for the candidate set** ``C`` of the filter
phase, so the matrix holds ``|C| · ⌈n/64⌉`` words — not the ``n²`` bits
of a full dense adjacency matrix.  The potential dominators the refine
scan tests are always filter-phase candidates themselves (every other
vertex fails the ``O(w) = w`` check), so candidate rows are the only
rows the kernel ever reads.

Bit layout: vertex ``x`` lives in word ``x >> 6``, bit ``x & 63`` —
little-endian within the row, so the raw row bytes read back as one
arbitrary-precision integer via ``int.from_bytes(..., "little")``.
:meth:`CandidateBitMatrix.int_rows` exposes exactly that: in CPython a
single big-int ``&`` over the same packed words beats a chain of numpy
calls for rows of a few hundred words (per-call dispatch overhead
dominates below ~10⁴ words), so the hot scan uses the int view while
numpy remains the storage, packing and shipping format.

``numpy`` is optional at runtime: :data:`HAVE_NUMPY` is ``False`` when
it is missing and callers (see :mod:`repro.core.bitset_refine`) fall
back to the bloom path.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Optional, Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

try:  # pragma: no cover - exercised via HAVE_NUMPY gating tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: ``True`` when numpy is importable and packed matrices can be built.
HAVE_NUMPY = _np is not None

#: Rows packed per ``np.packbits`` batch — bounds the temporary boolean
#: buffer to ``PACK_CHUNK_ROWS * n`` bytes during construction.
PACK_CHUNK_ROWS = 256

__all__ = [
    "CandidateBitMatrix",
    "DEFAULT_WORD_BUDGET",
    "HAVE_NUMPY",
    "matrix_words",
    "validate_word_budget",
    "words_for_vertices",
]

#: Default dense/sparse cutover budget: 2²⁴ uint64 words = 128 MiB of
#: packed rows.  Shared by every refine entry point — this module is
#: the one home of the budget math (:func:`words_for_vertices` /
#: :func:`matrix_words` / :func:`validate_word_budget`).
DEFAULT_WORD_BUDGET = 1 << 24


def words_for_vertices(num_vertices: int) -> int:
    """Words per packed row: ``⌈n/64⌉``.

    >>> words_for_vertices(0), words_for_vertices(64), words_for_vertices(65)
    (0, 1, 2)
    """
    if num_vertices < 0:
        raise ParameterError(
            f"vertex count must be >= 0, got {num_vertices}"
        )
    return (num_vertices + 63) >> 6


def matrix_words(num_rows: int, num_vertices: int) -> int:
    """Total ``uint64`` words a packed matrix would occupy.

    This is the quantity the dense/sparse cutover heuristic of
    :func:`~repro.core.bitset_refine.filter_refine_bitset_sky` compares
    against its word budget — computable from ``|C|`` and ``n`` alone,
    before any packing happens.
    """
    if num_rows < 0:
        raise ParameterError(f"row count must be >= 0, got {num_rows}")
    return num_rows * words_for_vertices(num_vertices)


def validate_word_budget(word_budget: Optional[int]) -> int:
    """Resolve and validate a ``word_budget`` at the API/CLI boundary.

    ``None`` resolves to :data:`DEFAULT_WORD_BUDGET`.  Nonpositive
    budgets are rejected outright: a budget of zero used to route
    silently to the bloom fallback, which callers invariably meant as
    "pick the kernel for me" — that spelling is ``refine="auto"`` (or
    simply a small positive budget); a *parameter* that can never admit
    any matrix is a mistake worth surfacing.
    """
    if word_budget is None:
        return DEFAULT_WORD_BUDGET
    if word_budget <= 0:
        raise ParameterError(
            f"word_budget must be a positive number of uint64 words, "
            f"got {word_budget} (the bloom fallback is chosen "
            f"automatically whenever the packed matrix would exceed "
            f"the budget)"
        )
    return word_budget


class CandidateBitMatrix:
    """Adjacency rows of selected vertices, packed 64 neighbors per word.

    Build with :meth:`from_graph` (packs via ``np.packbits``) or
    :meth:`from_payload` (rebuilds a zero-copy view on a snapshot
    shipped to a worker process).  Rows are indexed by *vertex id*
    through an internal position map; only the vertices the matrix was
    built for have rows.
    """

    __slots__ = ("num_vertices", "vertices", "rows", "_pos", "_ints", "_comps")

    def __init__(
        self,
        num_vertices: int,
        vertices: Sequence[int],
        rows,  # np.ndarray[(k, words), uint64]
    ):
        # Not part of the public API: use from_graph / from_payload.
        self.num_vertices = num_vertices
        self.vertices = tuple(vertices)
        self.rows = rows
        self._pos = {u: i for i, u in enumerate(self.vertices)}
        self._ints: Optional[dict[int, int]] = None
        self._comps: Optional[dict[int, int]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: Graph, vertices: Iterable[int]
    ) -> "CandidateBitMatrix":
        """Pack the adjacency rows of ``vertices`` (typically ``C``)."""
        if not HAVE_NUMPY:
            raise ParameterError(
                "CandidateBitMatrix requires numpy; gate on "
                "repro.graph.bitmatrix.HAVE_NUMPY before building"
            )
        verts = tuple(vertices)
        n = graph.num_vertices
        words = words_for_vertices(n)
        rows = _np.zeros((len(verts), words), dtype=_np.uint64)
        if not words or not verts:
            return cls(n, verts, rows)
        # packbits(bitorder="little") writes vertex x to byte x>>3,
        # bit x&7 — byte-for-byte the little-endian uint64 layout.
        bits = _np.zeros((PACK_CHUNK_ROWS, words * 64), dtype=bool)
        csr_arrays = getattr(graph, "csr_arrays", None)
        if csr_arrays is not None:
            # CSR substrate: one ragged gather + one fancy-index
            # scatter per chunk sets every bit of up to
            # PACK_CHUNK_ROWS rows at once — no per-row Python.
            indptr, indices = csr_arrays()
            indptr = _np.asarray(indptr).astype(_np.int64, copy=False)
            indices = _np.asarray(indices)
            vert_arr = _np.asarray(verts, dtype=_np.int64)
            for lo in range(0, len(verts), PACK_CHUNK_ROWS):
                chunk = vert_arr[lo : lo + PACK_CHUNK_ROWS]
                bits[: len(chunk)] = False
                lens = indptr[chunk + 1] - indptr[chunk]
                total = int(lens.sum())
                if total:
                    offsets = _np.arange(
                        total, dtype=_np.int64
                    ) - _np.repeat(_np.cumsum(lens) - lens, lens)
                    cols = indices[
                        _np.repeat(indptr[chunk], lens) + offsets
                    ]
                    row_ids = _np.repeat(
                        _np.arange(len(chunk), dtype=_np.int64), lens
                    )
                    bits[row_ids, cols] = True
                packed = _np.packbits(
                    bits[: len(chunk)], axis=1, bitorder="little"
                )
                rows[lo : lo + len(chunk)] = packed.view(_np.uint64)
        else:
            # List substrate: per-row scatter (a bare tuple would be
            # misread as a multi-dimensional index, hence the list()).
            for lo in range(0, len(verts), PACK_CHUNK_ROWS):
                chunk = verts[lo : lo + PACK_CHUNK_ROWS]
                bits[: len(chunk)] = False
                for i, u in enumerate(chunk):
                    nbrs = list(graph.neighbors(u))
                    if nbrs:
                        bits[i, nbrs] = True
                packed = _np.packbits(
                    bits[: len(chunk)], axis=1, bitorder="little"
                )
                rows[lo : lo + len(chunk)] = packed.view(_np.uint64)
        return cls(n, verts, rows)

    @classmethod
    def from_payload(cls, payload: tuple) -> "CandidateBitMatrix":
        """Rebuild a matrix from a :meth:`to_payload` snapshot.

        The row data is wrapped in a read-only ``np.frombuffer`` view —
        workers rebuild *views*, never re-pack rows.
        """
        num_vertices, vertices, raw = payload
        return cls.from_buffer(num_vertices, vertices, raw)

    @classmethod
    def from_buffer(
        cls, num_vertices: int, vertices: Sequence[int], raw
    ) -> "CandidateBitMatrix":
        """Wrap any buffer of packed row words, zero-copy.

        ``raw`` may be ``bytes`` (a pickled payload) or a live
        :class:`memoryview` over a shared-memory segment
        (:func:`repro.parallel.shm.attach_view`) — either way the rows
        are ``np.frombuffer`` views and the caller's buffer must outlive
        the matrix.
        """
        if not HAVE_NUMPY:
            raise ParameterError(
                "CandidateBitMatrix requires numpy; gate on "
                "repro.graph.bitmatrix.HAVE_NUMPY before building"
            )
        verts = tuple(vertices)
        words = words_for_vertices(num_vertices)
        nbytes = memoryview(raw).nbytes
        if nbytes != len(verts) * words * 8:
            raise ParameterError(
                f"bit-matrix payload holds {nbytes} bytes; expected "
                f"{len(verts) * words * 8} for {len(verts)} rows of "
                f"{words} words"
            )
        rows = _np.frombuffer(raw, dtype=_np.uint64).reshape(
            len(verts), words
        )
        return cls(num_vertices, verts, rows)

    def to_payload(self) -> tuple:
        """A pickle-cheap snapshot: ``(n, vertex ids, raw row bytes)``."""
        return (
            self.num_vertices,
            array("q", self.vertices),
            self.rows.tobytes(),
        )

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    @property
    def word_count(self) -> int:
        """Words per row, ``⌈n/64⌉``."""
        return self.rows.shape[1]

    def memory_words(self) -> int:
        """Total words held — the budget-heuristic quantity, realized."""
        return self.rows.shape[0] * self.rows.shape[1]

    def has_row(self, u: int) -> bool:
        """``True`` iff a row was packed for vertex ``u``."""
        return u in self._pos

    def row(self, u: int):
        """The packed ``uint64`` row of vertex ``u`` (KeyError if absent)."""
        return self.rows[self._pos[u]]

    def subset_conflicts(self, u: int, w: int, exclude: Optional[int] = None):
        """Neighbors of ``u`` missing from ``N(w)``, as a packed word array.

        ``(row_u & ~row_w)`` with bit ``exclude`` cleared — the refine
        test ``N(u) \\ {exclude} ⊆ N(w)`` holds iff the result has no
        bit set (``not conflicts.any()``).
        """
        conflicts = self.rows[self._pos[u]] & ~self.rows[self._pos[w]]
        if exclude is not None and 0 <= exclude < self.num_vertices:
            conflicts[exclude >> 6] &= ~_np.uint64(1 << (exclude & 63))
        return conflicts

    # ------------------------------------------------------------------
    # Big-int views (the CPython-fast kernel representation)
    # ------------------------------------------------------------------
    def int_rows(self) -> dict[int, int]:
        """Each packed row as one arbitrary-precision integer.

        Bit ``x`` of ``int_rows()[u]`` is set iff ``x ∈ N(u)`` — the
        same words as :attr:`rows`, reinterpreted little-endian.  Cached
        after the first call.
        """
        if self._ints is None:
            raw = self.rows.tobytes()
            stride = self.word_count * 8
            self._ints = {
                u: int.from_bytes(raw[i * stride : (i + 1) * stride], "little")
                for i, u in enumerate(self.vertices)
            }
        return self._ints

    def complement_int_rows(self) -> dict[int, int]:
        """``~row`` per vertex, for the ``need & comp`` conflict test.

        Python's infinite-precision complement is safe here: ANDing the
        (negative) complement with a finite non-negative ``need`` mask
        yields exactly the finite conflict set.
        """
        if self._comps is None:
            self._comps = {u: ~x for u, x in self.int_rows().items()}
        return self._comps

    def __len__(self) -> int:
        return len(self.vertices)

    def __repr__(self) -> str:
        return (
            f"CandidateBitMatrix(rows={len(self.vertices)}, "
            f"words={self.word_count}, n={self.num_vertices})"
        )
