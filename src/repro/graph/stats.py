"""Summary statistics of a graph (the columns of the paper's Table I).

:class:`GraphStats` captures ``n``, ``m``, ``dmax``, the average degree
and density; :func:`degree_histogram` supports the power-law shape checks
used by the synthetic-dataset tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.adjacency import Graph

__all__ = ["GraphStats", "graph_stats", "degree_histogram"]


@dataclass(frozen=True)
class GraphStats:
    """Immutable summary of a graph's size and degree structure."""

    num_vertices: int
    num_edges: int
    max_degree: int
    average_degree: float
    density: float

    def as_row(self) -> tuple:
        """The values in Table I column order (n, m, dmax)."""
        return (self.num_vertices, self.num_edges, self.max_degree)


def graph_stats(graph: Graph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph`` in one pass."""
    n = graph.num_vertices
    m = graph.num_edges
    dmax = max((graph.degree(u) for u in graph.vertices()), default=0)
    avg = (2.0 * m / n) if n else 0.0
    density = (2.0 * m / (n * (n - 1))) if n > 1 else 0.0
    return GraphStats(
        num_vertices=n,
        num_edges=m,
        max_degree=dmax,
        average_degree=avg,
        density=density,
    )


def degree_histogram(graph: Graph) -> list[int]:
    """``hist[d]`` = number of vertices with degree ``d``."""
    dmax = max((graph.degree(u) for u in graph.vertices()), default=0)
    hist = [0] * (dmax + 1)
    for u in graph.vertices():
        hist[graph.degree(u)] += 1
    return hist
