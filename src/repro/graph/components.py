"""Connected components of an undirected graph.

The centrality applications (Sec. IV-A/B of the paper) measure
shortest-path distances from every vertex; the paper's datasets are
(essentially) connected, so the benchmark harness extracts the largest
connected component with :func:`largest_connected_component` before
running group-centrality experiments.
"""

from __future__ import annotations

from collections import deque

from repro.graph.adjacency import Graph

__all__ = [
    "connected_components",
    "largest_connected_component",
    "is_connected",
]


def connected_components(graph: Graph) -> list[list[int]]:
    """All connected components as sorted vertex lists, largest first.

    Runs a BFS per undiscovered vertex: ``O(n + m)`` total.
    """
    n = graph.num_vertices
    seen = bytearray(n)
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        component = [start]
        queue = deque((start,))
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = 1
                    component.append(v)
                    queue.append(v)
        component.sort()
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """``True`` iff the graph has at most one connected component."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)[0]) == graph.num_vertices


def largest_connected_component(graph: Graph) -> tuple[Graph, list[int]]:
    """Induced subgraph on the largest component plus the ID mapping.

    Returns ``(subgraph, mapping)`` with ``mapping[new_id] = old_id``;
    for an empty graph returns the empty graph with an empty mapping.
    """
    if graph.num_vertices == 0:
        return graph, []
    biggest = connected_components(graph)[0]
    return graph.induced_subgraph(biggest)
