"""Threshold graphs — where the domination pre-order is *total*.

The paper's introduction singles out threshold graphs as the class the
neighborhood-inclusion ("vicinal") pre-order characterizes: a graph is a
threshold graph iff any two vertices are comparable under neighborhood
inclusion (Mahadev & Peled).  They are the extreme case for the skyline:
every vertex is comparable, so the skyline collapses to a single
equivalence class.

Provided here:

* :func:`threshold_graph` — build one from a creation sequence
  (``'i'`` = add an isolated vertex, ``'d'`` = add a dominating vertex);
* :func:`is_threshold_graph` — recognition via iterated removal of
  isolated/dominating vertices (linear-ish, degree-bucket based);
* :func:`creation_sequence` — recover a creation sequence, or ``None``.

Tests use these to validate the characterization against the domination
predicates of :mod:`repro.core.domination`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder

__all__ = ["threshold_graph", "is_threshold_graph", "creation_sequence"]


def threshold_graph(sequence: str) -> Graph:
    """Build the threshold graph of a creation sequence.

    ``sequence[k]`` describes vertex ``k``: ``'i'`` arrives isolated,
    ``'d'`` arrives dominating (adjacent to all earlier vertices).  The
    first character is conventionally ``'i'`` (a single vertex is both).

    >>> threshold_graph("iid").num_edges
    2
    """
    builder = GraphBuilder(len(sequence))
    for k, op in enumerate(sequence):
        if op == "d":
            for earlier in range(k):
                builder.add_edge(earlier, k)
        elif op != "i":
            raise ParameterError(
                f"creation sequence may contain only 'i'/'d', got {op!r}"
            )
    return builder.build()


def creation_sequence(graph: Graph) -> Optional[str]:
    """A creation sequence for ``graph``, or ``None`` if not threshold.

    A graph is threshold iff it can be dismantled by repeatedly removing
    a vertex that is either isolated or adjacent to every other
    remaining vertex; the reversed removal order is a creation sequence.
    Isolated vertices are always found at the low-degree end and
    dominating vertices at the high-degree end, and both removal kinds
    shift every remaining degree uniformly (a dominating removal by −1,
    an isolated removal by 0), so one degree sort plus a global offset
    suffices: ``O(n log n)``.
    """
    n = graph.num_vertices
    if n == 0:
        return ""
    by_degree = sorted(graph.vertices(), key=lambda u: (graph.degree(u), u))
    lo, hi = 0, n - 1
    alive = n
    dominating_removed = 0
    removal_ops: list[str] = []
    while alive > 0:
        low_vertex = by_degree[lo]
        if graph.degree(low_vertex) - dominating_removed == 0:
            removal_ops.append("i")
            lo += 1
            alive -= 1
            continue
        high_vertex = by_degree[hi]
        if graph.degree(high_vertex) - dominating_removed == alive - 1:
            removal_ops.append("d")
            hi -= 1
            alive -= 1
            dominating_removed += 1
            continue
        return None
    return "".join(reversed(removal_ops))


def is_threshold_graph(graph: Graph) -> bool:
    """``True`` iff ``graph`` is a threshold graph."""
    return creation_sequence(graph) is not None
