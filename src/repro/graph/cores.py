"""k-core decomposition — the degeneracy substrate for refine and clique.

The k-core of a graph is its maximal subgraph of minimum degree ``k``;
``core(u)`` is the largest ``k`` whose core contains ``u`` (Batagelj &
Zaveršnik, "Generalized Cores").  Two consumers in this package lean on
the decomposition:

* **Refine pretest.**  ``N(u) ⊆ N(w)`` implies ``core(w) ≥ core(u)``:
  adding ``w`` to the ``core(u)``-core keeps the minimum degree at
  ``core(u)`` (every neighbor of ``u`` inside the core is also a
  neighbor of ``w``), so ``w`` sits in that core too.  A candidate's
  core number therefore bounds its possible dominators, and the block
  refine kernel (:mod:`repro.core.block_refine`) rejects pairs with
  ``core(w) < core(u)`` before paying for the inclusion test.
* **Clique ordering and bounds.**  The peel order is a degeneracy
  ordering (right-neighborhoods of size at most the degeneracy), and a
  clique of size ``s`` forces ``core(v) ≥ s - 1`` on every member —
  the work-avoidance bound :mod:`repro.clique.mcbrb` prunes roots and
  candidates with.

The decomposition is computed by **round-based batch peeling** rather
than the classic one-vertex-at-a-time bucket queue: at level ``k``,
peel *every* remaining vertex of degree ≤ ``k`` at once (ascending ID
within a batch), decrement the survivors' degrees in bulk, and cascade
until the level empties.  Batch peeling is what vectorizes: the numpy
path runs one gather + ``np.unique`` per cascade round instead of a
Python loop per edge.  A pure-Python implementation of the *same*
schedule backs hosts without numpy — both paths produce the identical
``(core, order, degeneracy)`` triple, so nothing downstream depends on
which one ran.

>>> from repro.graph.karate import karate_club
>>> core_decomposition(karate_club()).degeneracy
4
"""

from __future__ import annotations

from typing import NamedTuple

from repro.graph.adjacency import Graph

try:  # pragma: no cover - exercised via HAVE_NUMPY gating tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: ``True`` when numpy is importable and the vectorized peel can run.
HAVE_NUMPY = _np is not None

__all__ = ["CoreDecomposition", "HAVE_NUMPY", "core_decomposition"]


class CoreDecomposition(NamedTuple):
    """The full output of one peel: core numbers, peel order, degeneracy.

    ``core[u]`` is vertex ``u``'s core number; ``order`` lists all
    vertices in peel order (a valid degeneracy ordering: every vertex
    has at most ``degeneracy`` neighbors later in the order);
    ``degeneracy`` equals ``max(core)`` (0 on the empty graph).  Both
    sequences hold plain Python ints on every backend.
    """

    core: list[int]
    order: list[int]
    degeneracy: int


def _graph_arrays(graph: Graph):
    """``(indptr, indices)`` as numpy arrays, or ``None`` off-substrate."""
    if not HAVE_NUMPY:
        return None
    csr_arrays = getattr(graph, "csr_arrays", None)
    if csr_arrays is not None:
        return csr_arrays()
    try:
        indptr, indices = graph.to_csr()
    except Exception:  # pragma: no cover - exotic graph protocol objects
        return None
    return _np.asarray(indptr), _np.asarray(indices)


def _peel_numpy(graph: Graph) -> CoreDecomposition:
    indptr, indices = _graph_arrays(graph)
    n = graph.num_vertices
    indptr = indptr.astype(_np.int64, copy=False)
    # row_len stays the structural CSR row length (it sizes the ragged
    # gathers); deg is the residual degree the peel decrements.
    row_len = indptr[1:] - indptr[:-1]
    deg = row_len.astype(_np.int64, copy=True)
    alive = _np.ones(n, dtype=bool)
    core = _np.zeros(n, dtype=_np.int64)
    order = _np.empty(n, dtype=_np.int64)
    pos = 0
    k = 0
    while pos < n:
        live_deg = deg[alive]
        k = max(k, int(live_deg.min()))
        batch = _np.flatnonzero(alive & (deg <= k))
        while batch.size:
            alive[batch] = False
            core[batch] = k
            order[pos : pos + batch.size] = batch
            pos += batch.size
            lens = row_len[batch]
            total = int(lens.sum())
            if not total:
                batch = _np.empty(0, dtype=_np.int64)
                continue
            # Ragged gather of the batch's neighbor rows in one shot.
            offsets = _np.arange(total, dtype=_np.int64) - _np.repeat(
                _np.cumsum(lens) - lens, lens
            )
            nbrs = indices[_np.repeat(indptr[batch], lens) + offsets]
            touched, counts = _np.unique(nbrs, return_counts=True)
            deg[touched] -= counts
            # Only vertices whose degree just crossed the level can join
            # the next cascade round; np.unique keeps them ID-ascending.
            sel = alive[touched] & (deg[touched] <= k)
            batch = touched[sel].astype(_np.int64, copy=False)
    degeneracy = int(core.max()) if n else 0
    return CoreDecomposition(
        [int(c) for c in core], [int(u) for u in order], degeneracy
    )


def _peel_python(graph: Graph) -> CoreDecomposition:
    # The same batch-peel schedule as the numpy path, entry for entry:
    # level jump to the minimum live degree, cascade rounds of every
    # vertex at or below the level (ascending IDs), bulk decrements.
    n = graph.num_vertices
    neighbors = graph.neighbors
    deg = list(graph.degrees())
    alive = bytearray([1]) * n if n else bytearray()
    core = [0] * n
    order: list[int] = []
    k = 0
    while len(order) < n:
        k = max(k, min(deg[u] for u in range(n) if alive[u]))
        batch = [u for u in range(n) if alive[u] and deg[u] <= k]
        while batch:
            for u in batch:
                alive[u] = 0
                core[u] = k
            order.extend(batch)
            touched: dict[int, int] = {}
            for u in batch:
                for v in neighbors(u):
                    touched[v] = touched.get(v, 0) + 1
            for v, cnt in touched.items():
                deg[v] -= cnt
            batch = sorted(
                v for v in touched if alive[v] and deg[v] <= k
            )
    degeneracy = max(core) if n else 0
    return CoreDecomposition(core, order, degeneracy)


def core_decomposition(graph: Graph) -> CoreDecomposition:
    """Peel ``graph`` completely; see :class:`CoreDecomposition`.

    Runs vectorized over the CSR arrays when numpy is available and
    falls back to a pure-Python peel with the identical batch schedule
    otherwise — same core numbers (they are unique), same order, same
    degeneracy, regardless of backend.
    """
    if graph.num_vertices == 0:
        return CoreDecomposition([], [], 0)
    if HAVE_NUMPY and _graph_arrays(graph) is not None:
        return _peel_numpy(graph)
    return _peel_python(graph)
