"""Subgraph sampling for the scalability experiments (Exp-7).

The paper evaluates scalability along two axes on LiveJournal:

* **vary n** — induced subgraphs on a random 20/40/60/80/100 % of the
  vertices (:func:`sample_vertices`);
* **vary ρ** — spanning subgraphs keeping a random 20/40/60/80/100 % of
  the edges (:func:`sample_edges`).

Both samplers are deterministic given ``seed`` and, crucially for
benchmark comparability, nested: the 40 % sample contains the 20 % sample,
and so on, because they draw from a single seeded permutation.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["sample_vertices", "sample_edges", "sample_prefix"]


def _check_fraction(fraction: float) -> None:
    if not (0.0 <= fraction <= 1.0):
        raise ParameterError(
            f"fraction must be in [0, 1], got {fraction}"
        )


def sample_vertices(
    graph: Graph, fraction: float, *, seed: Optional[int] = None
) -> Graph:
    """Induced subgraph on ``round(fraction * n)`` randomly chosen vertices.

    The kept vertices are the prefix of a seeded permutation of ``V``, so
    increasing ``fraction`` with a fixed seed grows the sample
    monotonically (the paper's "vary n" curves are nested in this sense).
    """
    _check_fraction(fraction)
    n = graph.num_vertices
    count = round(fraction * n)
    order = list(range(n))
    random.Random(seed).shuffle(order)
    sub, _mapping = graph.induced_subgraph(order[:count])
    return sub


def sample_prefix(graph: Graph, fraction: float) -> Graph:
    """Induced subgraph on the first ``round(fraction * n)`` vertex IDs.

    For graphs produced by a *growth* model (copying, Barabási–Albert),
    vertex IDs are arrival order, so the ID-prefix subgraph is exactly
    the graph as it looked earlier in its growth — connected whenever
    the generator attaches each arrival to an earlier vertex, and nested
    across fractions by construction.  This is the structure-preserving
    "vary n" axis for synthetic stand-ins, where uniform vertex sampling
    would shatter the satellite periphery.
    """
    _check_fraction(fraction)
    count = round(fraction * graph.num_vertices)
    sub, _mapping = graph.induced_subgraph(range(count))
    return sub


def sample_edges(
    graph: Graph, fraction: float, *, seed: Optional[int] = None
) -> Graph:
    """Spanning subgraph keeping ``round(fraction * m)`` random edges.

    The vertex set is unchanged (vertices may become isolated), matching
    the paper's density (``ρ``) axis where ``n`` stays fixed.
    """
    _check_fraction(fraction)
    edges = list(graph.edges())
    random.Random(seed).shuffle(edges)
    count = round(fraction * len(edges))
    return Graph.from_edges(graph.num_vertices, edges[:count])
