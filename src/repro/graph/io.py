"""Reading and writing edge-list files.

Two on-disk formats are supported, matching the sources the paper draws
its datasets from:

* **Plain edge lists** (SNAP style): one ``u v`` pair per line, ``#``
  comments, blank lines ignored.
* **KONECT ``out.*`` files**: identical except comment lines start with
  ``%`` and vertex IDs are 1-based.  :func:`read_edge_list` handles both
  via the ``comment`` and ``base`` parameters; :func:`read_konect` is the
  preconfigured convenience wrapper.

Vertex IDs in a file may be sparse (e.g. ``{3, 17, 90}``); by default they
are compacted to ``0 .. n-1`` preserving numeric order, so that the
ID-based tie-break of Definition 2 stays deterministic.
"""

from __future__ import annotations

import io
import os
from typing import IO, Iterable, Union

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder

__all__ = ["read_edge_list", "read_konect", "write_edge_list"]

PathOrFile = Union[str, os.PathLike, IO[str]]


def _open_for_read(source: PathOrFile) -> tuple[IO[str], bool]:
    if isinstance(source, (str, os.PathLike)):
        try:
            return open(source, "r", encoding="utf-8"), True
        except OSError as exc:
            raise GraphFormatError(
                f"{_source_label(source)}: {exc.strerror or exc}"
            ) from exc
    return source, False


def _source_label(source: PathOrFile) -> str:
    """A name for ``source`` usable in error messages.

    Paths render as themselves; file objects use their ``name`` when
    they have one (open files do, ``StringIO`` does not).
    """
    if isinstance(source, (str, os.PathLike)):
        return str(os.fspath(source))
    name = getattr(source, "name", None)
    return str(name) if name else "<edge list>"


def read_edge_list(
    source: PathOrFile,
    *,
    comment: str = "#",
    base: int = 0,
    compact: bool = True,
    allow_duplicates: bool = True,
) -> Graph:
    """Parse a whitespace-separated edge list into a :class:`Graph`.

    Parameters
    ----------
    source:
        A path or an open text file.
    comment:
        Lines starting with this prefix are skipped.
    base:
        Subtracted from every vertex ID (KONECT files are 1-based).
    compact:
        Relabel the IDs that actually occur to ``0 .. n-1`` in sorted
        order.  When ``False``, the largest ID determines ``n`` and
        unreferenced IDs become isolated vertices.
    allow_duplicates:
        Real-world dumps routinely repeat edges (and list both
        orientations); with the default ``True`` they are silently
        deduplicated.  Set to ``False`` to make repeats an error.

    Malformed rows raise :class:`GraphFormatError` naming the source
    file and the 1-based line number.
    """
    label = _source_label(source)
    fh, should_close = _open_for_read(source)
    pairs: list[tuple[int, int]] = []
    try:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise GraphFormatError(
                    f"{label}: line {lineno}: expected two vertex ids, "
                    f"got {stripped!r}"
                )
            try:
                u, v = int(fields[0]) - base, int(fields[1]) - base
            except ValueError as exc:
                raise GraphFormatError(
                    f"{label}: line {lineno}: non-integer vertex id in "
                    f"{stripped!r}"
                ) from exc
            if u < 0 or v < 0:
                raise GraphFormatError(
                    f"{label}: line {lineno}: negative vertex id after "
                    f"applying base={base}"
                )
            if u == v:
                # Self-loops appear in some raw dumps; the paper's model is
                # simple graphs, so they are dropped rather than fatal.
                continue
            pairs.append((u, v))
    finally:
        if should_close:
            fh.close()

    if compact:
        ids = sorted({x for pair in pairs for x in pair})
        remap = {old: new for new, old in enumerate(ids)}
        pairs = [(remap[u], remap[v]) for u, v in pairs]

    builder = GraphBuilder()
    for u, v in pairs:
        if not allow_duplicates and builder.has_edge(u, v):
            raise GraphFormatError(f"{label}: duplicate edge ({u}, {v})")
        builder.add_edge(u, v)
    return builder.build()


def read_konect(source: PathOrFile, **kwargs) -> Graph:
    """Parse a KONECT ``out.*`` file (``%`` comments, 1-based IDs)."""
    kwargs.setdefault("comment", "%")
    kwargs.setdefault("base", 1)
    return read_edge_list(source, **kwargs)


def write_edge_list(graph: Graph, target: PathOrFile) -> None:
    """Write ``graph`` as a plain 0-based edge list, one edge per line."""
    if isinstance(target, (str, os.PathLike)):
        fh: IO[str] = open(target, "w", encoding="utf-8")
        should_close = True
    else:
        fh, should_close = target, False
    try:
        fh.write(f"# n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
    finally:
        if should_close:
            fh.close()


def edges_to_string(edges: Iterable[tuple[int, int]]) -> str:
    """Render edges as edge-list text (handy in tests and examples)."""
    buf = io.StringIO()
    for u, v in edges:
        buf.write(f"{u} {v}\n")
    return buf.getvalue()
