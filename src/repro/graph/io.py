"""Reading and writing graph files.

Three on-disk formats are supported, matching the sources the paper
draws its datasets from plus the package's own binary snapshots:

* **Plain edge lists** (SNAP style): one ``u v`` pair per line, ``#``
  comments, blank lines ignored.
* **KONECT ``out.*`` files**: identical except comment lines start with
  ``%`` and vertex IDs are 1-based.  :func:`read_edge_list` handles both
  via the ``comment`` and ``base`` parameters; :func:`read_konect` is the
  preconfigured convenience wrapper.
* **Binary CSR snapshots** (:mod:`repro.graph.binfmt`): raw
  ``indptr``/``indices`` bytes behind a magic header, opened O(1) via
  ``np.memmap``.  :func:`load_graph` sniffs the magic and routes to the
  right reader, so callers never name the format.

Vertex IDs in a file may be sparse (e.g. ``{3, 17, 90}``); by default they
are compacted to ``0 .. n-1`` preserving numeric order, so that the
ID-based tie-break of Definition 2 stays deterministic.

Parsing is streaming: edges accumulate into one flat machine-typed
buffer as lines are read (no intermediate list of pair tuples, so peak
memory is the edge array itself), and when numpy is available the
dedupe/compaction/CSR assembly happens vectorized and the result is a
:class:`~repro.graph.csr.CSRGraph` — behaviorally identical to the
list-backed build, including every error message.
"""

from __future__ import annotations

import io
import os
from array import array
from typing import IO, Iterable, Union

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder

try:  # pragma: no cover - list-backed fallback exercised via gating
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["load_graph", "read_edge_list", "read_konect", "write_edge_list"]

PathOrFile = Union[str, os.PathLike, IO[str]]


def _open_for_read(source: PathOrFile) -> tuple[IO[str], bool]:
    if isinstance(source, (str, os.PathLike)):
        try:
            return open(source, "r", encoding="utf-8"), True
        except OSError as exc:
            raise GraphFormatError(
                f"{_source_label(source)}: {exc.strerror or exc}"
            ) from exc
    return source, False


def _source_label(source: PathOrFile) -> str:
    """A name for ``source`` usable in error messages.

    Paths render as themselves; file objects use their ``name`` when
    they have one (open files do, ``StringIO`` does not).
    """
    if isinstance(source, (str, os.PathLike)):
        return str(os.fspath(source))
    name = getattr(source, "name", None)
    return str(name) if name else "<edge list>"


def read_edge_list(
    source: PathOrFile,
    *,
    comment: str = "#",
    base: int = 0,
    compact: bool = True,
    allow_duplicates: bool = True,
) -> Graph:
    """Parse a whitespace-separated edge list into a :class:`Graph`.

    Parameters
    ----------
    source:
        A path or an open text file.
    comment:
        Lines starting with this prefix are skipped.
    base:
        Subtracted from every vertex ID (KONECT files are 1-based).
    compact:
        Relabel the IDs that actually occur to ``0 .. n-1`` in sorted
        order.  When ``False``, the largest ID determines ``n`` and
        unreferenced IDs become isolated vertices.
    allow_duplicates:
        Real-world dumps routinely repeat edges (and list both
        orientations); with the default ``True`` they are silently
        deduplicated.  Set to ``False`` to make repeats an error.

    Malformed rows raise :class:`GraphFormatError` naming the source
    file and the 1-based line number.
    """
    label = _source_label(source)
    fh, should_close = _open_for_read(source)
    # Streaming accumulation: one flat (u, v, u, v, ...) machine buffer,
    # never a Python list of pair tuples — peak memory is the buffer.
    endpoints = array("q")
    append = endpoints.append
    try:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise GraphFormatError(
                    f"{label}: line {lineno}: expected two vertex ids, "
                    f"got {stripped!r}"
                )
            try:
                u, v = int(fields[0]) - base, int(fields[1]) - base
            except ValueError as exc:
                raise GraphFormatError(
                    f"{label}: line {lineno}: non-integer vertex id in "
                    f"{stripped!r}"
                ) from exc
            if u < 0 or v < 0:
                raise GraphFormatError(
                    f"{label}: line {lineno}: negative vertex id after "
                    f"applying base={base}"
                )
            if u == v:
                # Self-loops appear in some raw dumps; the paper's model is
                # simple graphs, so they are dropped rather than fatal.
                continue
            append(u)
            append(v)
    finally:
        if should_close:
            fh.close()

    if _np is not None and len(endpoints):
        return _assemble_csr(endpoints, label, compact, allow_duplicates)

    pairs = [
        (endpoints[i], endpoints[i + 1])
        for i in range(0, len(endpoints), 2)
    ]
    if compact:
        ids = sorted({x for pair in pairs for x in pair})
        remap = {old: new for new, old in enumerate(ids)}
        pairs = [(remap[u], remap[v]) for u, v in pairs]

    builder = GraphBuilder()
    for u, v in pairs:
        if not allow_duplicates and builder.has_edge(u, v):
            raise GraphFormatError(f"{label}: duplicate edge ({u}, {v})")
        builder.add_edge(u, v)
    return builder.build()


def _assemble_csr(
    endpoints: array, label: str, compact: bool, allow_duplicates: bool
) -> Graph:
    """Vectorized compaction + dedupe + CSR build of parsed endpoints."""
    from repro.graph.csr import graph_from_edge_arrays

    flat = _np.frombuffer(endpoints, dtype=_np.int64)
    us, vs = flat[0::2], flat[1::2]
    if compact:
        ids = _np.unique(flat)
        n = len(ids)
        us = _np.searchsorted(ids, us)
        vs = _np.searchsorted(ids, vs)
    else:
        n = int(flat.max()) + 1
    # Orientation-normalize to scalar codes; unique = dedupe in one pass.
    lo = _np.minimum(us, vs)
    hi = _np.maximum(us, vs)
    codes, counts = _np.unique(lo * n + hi, return_counts=True)
    if not allow_duplicates and len(codes) != len(us):
        c = int(codes[_np.argmax(counts > 1)])
        raise GraphFormatError(
            f"{label}: duplicate edge ({c // n}, {c % n})"
        )
    return graph_from_edge_arrays(n, codes // n, codes % n)


def read_konect(source: PathOrFile, **kwargs) -> Graph:
    """Parse a KONECT ``out.*`` file (``%`` comments, 1-based IDs)."""
    kwargs.setdefault("comment", "%")
    kwargs.setdefault("base", 1)
    return read_edge_list(source, **kwargs)


def load_graph(source: PathOrFile, **kwargs) -> Graph:
    """Load a graph from any supported on-disk format, auto-detected.

    Paths whose first bytes carry the binary magic open O(1) through
    :func:`~repro.graph.binfmt.read_binary_graph` (``kwargs`` would be
    meaningless there and are rejected); everything else — including
    open file objects — parses as edge-list text with ``kwargs``
    forwarded to :func:`read_edge_list`.
    """
    if isinstance(source, (str, os.PathLike)):
        from repro.graph.binfmt import is_binary_graph, read_binary_graph

        if is_binary_graph(source):
            if kwargs:
                raise GraphFormatError(
                    f"{_source_label(source)}: binary graphs take no "
                    f"parser options (got {sorted(kwargs)})"
                )
            return read_binary_graph(source)
    return read_edge_list(source, **kwargs)


def write_edge_list(graph: Graph, target: PathOrFile) -> None:
    """Write ``graph`` as a plain 0-based edge list, one edge per line."""
    if isinstance(target, (str, os.PathLike)):
        fh: IO[str] = open(target, "w", encoding="utf-8")
        should_close = True
    else:
        fh, should_close = target, False
    try:
        fh.write(f"# n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")
    finally:
        if should_close:
            fh.close()


def edges_to_string(edges: Iterable[tuple[int, int]]) -> str:
    """Render edges as edge-list text (handy in tests and examples)."""
    buf = io.StringIO()
    for u, v in edges:
        buf.write(f"{u} {v}\n")
    return buf.getvalue()
