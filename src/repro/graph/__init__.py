"""Graph substrate: representation, construction, IO, generation, sampling.

Public surface:

* :class:`~repro.graph.adjacency.Graph` — immutable simple undirected graph.
* :class:`~repro.graph.builder.GraphBuilder` — incremental construction.
* :mod:`~repro.graph.io` — edge-list / KONECT parsing.
* :mod:`~repro.graph.generators` — ER, Chung–Lu power-law, BA and the
  special graphs of the paper's Fig. 2.
* :mod:`~repro.graph.components` / :mod:`~repro.graph.sampling` /
  :mod:`~repro.graph.stats` — component extraction, Exp-7 subsampling,
  Table I statistics.
"""

from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.components import (
    connected_components,
    is_connected,
    largest_connected_component,
)
from repro.graph.generators import (
    barabasi_albert,
    chung_lu_power_law,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graph.io import read_edge_list, read_konect, write_edge_list
from repro.graph.karate import karate_club
from repro.graph.metrics import (
    approximate_diameter,
    average_local_clustering,
    degree_assortativity,
    global_clustering,
    triangle_count,
    triangles_per_vertex,
)
from repro.graph.sampling import sample_edges, sample_prefix, sample_vertices
from repro.graph.stats import GraphStats, degree_histogram, graph_stats
from repro.graph.twins import (
    false_twin_classes,
    true_twin_classes,
    twin_representatives,
)
from repro.graph.threshold import (
    creation_sequence,
    is_threshold_graph,
    threshold_graph,
)
from repro.graph.validation import validate_graph

__all__ = [
    "Graph",
    "GraphBuilder",
    "connected_components",
    "is_connected",
    "largest_connected_component",
    "barabasi_albert",
    "chung_lu_power_law",
    "complete_binary_tree",
    "complete_graph",
    "cycle_graph",
    "empty_graph",
    "erdos_renyi",
    "path_graph",
    "star_graph",
    "read_edge_list",
    "read_konect",
    "write_edge_list",
    "karate_club",
    "approximate_diameter",
    "average_local_clustering",
    "degree_assortativity",
    "global_clustering",
    "triangle_count",
    "triangles_per_vertex",
    "sample_edges",
    "sample_prefix",
    "sample_vertices",
    "GraphStats",
    "creation_sequence",
    "is_threshold_graph",
    "threshold_graph",
    "false_twin_classes",
    "true_twin_classes",
    "twin_representatives",
    "degree_histogram",
    "graph_stats",
    "validate_graph",
]
