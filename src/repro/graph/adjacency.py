"""Immutable adjacency-list representation of a simple undirected graph.

This is the substrate every algorithm in the package runs on.  Design goals:

* **Simple, undirected, loop-free** — the paper (Sec. II) assumes exactly
  this model, so validation happens once at construction time and the
  algorithms never re-check.
* **Sorted neighbor lists** — neighborhood-inclusion tests, the
  ``NBRcheck`` of Algorithm 3 and clique candidate intersections all rely
  on ``O(log d)`` membership via :mod:`bisect` and linear-time merges.
* **Immutable** — graphs are shared freely between algorithms, caches
  (e.g. per-vertex bloom filters) and benchmark fixtures without defensive
  copies.  Mutation happens only through :class:`~repro.graph.builder.GraphBuilder`.

Vertices are the integers ``0 .. n-1``.  The vertex *ID* order is
semantically meaningful: Definition 2 of the paper breaks mutual-inclusion
ties by ID.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, Iterator, Sequence

from repro.errors import GraphFormatError

__all__ = ["CSRGraphView", "Graph"]


class Graph:
    """A simple undirected graph with integer vertices ``0 .. n-1``.

    Instances are created via :meth:`from_edges` (validating) or the
    internal :meth:`_from_sorted_adjacency` fast path used by builders and
    generators that guarantee well-formed input.

    The class intentionally exposes a small, read-only surface: degree and
    neighbor queries, edge membership, and iteration.  Everything else
    (statistics, sampling, IO) lives in sibling modules so the hot loops
    stay on top of plain lists.
    """

    __slots__ = ("_adj", "_m", "_csr")

    def __init__(self, adjacency: list[list[int]], num_edges: int):
        # Not part of the public API: use from_edges / GraphBuilder.
        # Rows are normalized to tuples so neighbors() can hand out
        # internal storage without exposing anything mutable (None rows
        # are the lazy-subclass placeholder and pass through untouched).
        self._adj = [
            row if (type(row) is tuple or row is None) else tuple(row)
            for row in adjacency
        ]
        self._m = num_edges
        self._csr: tuple[array, array] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph on ``n`` vertices from an iterable of edge pairs.

        Duplicate edges (in either orientation) are rejected, as are
        self-loops and endpoints outside ``[0, n)``.

        >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
        >>> g.degree(1)
        2
        """
        if n < 0:
            raise GraphFormatError(f"vertex count must be >= 0, got {n}")
        adj: list[list[int]] = [[] for _ in range(n)]
        m = 0
        for u, v in edges:
            if u == v:
                raise GraphFormatError(f"self-loop at vertex {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise GraphFormatError(
                    f"edge ({u}, {v}) out of range for n={n}"
                )
            adj[u].append(v)
            adj[v].append(u)
            m += 1
        for u, neighbors in enumerate(adj):
            neighbors.sort()
            for i in range(1, len(neighbors)):
                if neighbors[i] == neighbors[i - 1]:
                    raise GraphFormatError(
                        f"duplicate edge ({u}, {neighbors[i]})"
                    )
        return cls(adj, m)

    @classmethod
    def _from_sorted_adjacency(
        cls, adjacency: list[list[int]], num_edges: int
    ) -> "Graph":
        """Trusted constructor for callers that pre-validated their input."""
        return cls(adjacency, num_edges)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_csr(self) -> tuple[array, array]:
        """The graph as a compressed-sparse-row ``(indptr, indices)`` pair.

        Both are ``array('q')`` (signed 64-bit) buffers: neighbors of
        vertex ``u`` are ``indices[indptr[u]:indptr[u+1]]``, sorted.
        Arrays pickle as flat bytes, so a CSR snapshot is the cheap way
        to ship a graph to worker processes — :meth:`from_csr` restores
        an equal :class:`Graph` on the other side.

        The snapshot is memoized: graphs are immutable, so the first
        call builds it and every later call (each parallel run, each
        session publish) returns the **same** array pair.  Callers must
        treat the returned arrays as read-only — the graph contract,
        extended to its snapshot.

        >>> g = Graph.from_edges(3, [(0, 1), (1, 2)])
        >>> Graph.from_csr(*g.to_csr()) == g
        True
        >>> g.to_csr() is g.to_csr()
        True
        """
        if self._csr is None:
            n = len(self._adj)
            indptr = array("q", bytes(8 * (n + 1)))
            indices = array("q")
            total = 0
            for u, nbrs in enumerate(self._adj):
                indices.extend(nbrs)
                total += len(nbrs)
                indptr[u + 1] = total
            self._csr = (indptr, indices)
        return self._csr

    @classmethod
    def from_csr(cls, indptr: Sequence[int], indices: Sequence[int]) -> "Graph":
        """Rebuild a graph from a :meth:`to_csr` snapshot.

        The snapshot is trusted (it came from a validated graph), so the
        adjacency is handed straight to :meth:`_from_sorted_adjacency`.
        """
        # tolist() normalizes numpy arrays and memoryviews to plain
        # Python ints in one pass; array('q') supports it too.
        flat = (
            indices.tolist() if hasattr(indices, "tolist")
            else list(indices)
        )
        starts = (
            indptr.tolist() if hasattr(indptr, "tolist") else list(indptr)
        )
        adj = [
            tuple(flat[starts[u] : starts[u + 1]])
            for u in range(len(starts) - 1)
        ]
        # Every undirected edge contributes two CSR entries.
        return cls._from_sorted_adjacency(adj, len(flat) // 2)

    # ------------------------------------------------------------------
    # Size
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._m

    def __len__(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def degree(self, u: int) -> int:
        """Degree ``deg(u) = |N(u)|``."""
        return len(self._adj[u])

    def neighbors(self, u: int) -> Sequence[int]:
        """The sorted open neighborhood ``N(u)``.

        The returned tuple is the graph's internal storage: immutable,
        so handing it out directly is safe and keeps the refine loop of
        Algorithm 3 allocation-free.
        """
        return self._adj[u]

    def degrees(self) -> list[int]:
        """All degrees at once: ``[deg(0), ..., deg(n-1)]``.

        Subclasses backed by CSR arrays answer from ``indptr`` without
        materializing any adjacency row — prefer this over a
        ``degree(u)`` loop when every vertex is needed.
        """
        return [len(row) for row in self._adj]

    def closed_neighborhood(self, u: int) -> list[int]:
        """The sorted closed neighborhood ``N[u] = N(u) ∪ {u}`` (a copy)."""
        nbrs = self._adj[u]
        pos = bisect_left(nbrs, u)
        out = list(nbrs)
        out.insert(pos, u)
        return out

    def has_edge(self, u: int, v: int) -> bool:
        """``True`` iff ``(u, v) ∈ E``.  ``O(log min(deg u, deg v))``."""
        a, b = (u, v) if len(self._adj[u]) <= len(self._adj[v]) else (v, u)
        nbrs = self._adj[a]
        i = bisect_left(nbrs, b)
        return i < len(nbrs) and nbrs[i] == b

    def vertices(self) -> range:
        """The vertex set as a range ``0 .. n-1``."""
        return range(len(self._adj))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u, neighbors in enumerate(self._adj):
            for v in neighbors:
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(
        self, vertices: Iterable[int]
    ) -> tuple["Graph", list[int]]:
        """Vertex-induced subgraph, relabelled to ``0 .. |S|-1``.

        Returns ``(subgraph, mapping)`` where ``mapping[new_id]`` is the
        original vertex ID.  Input order does not matter; the mapping is
        sorted so that the ID-based tie-break of Definition 2 is preserved
        relative to the original graph's ordering.
        """
        keep = sorted(set(vertices))
        index = {old: new for new, old in enumerate(keep)}
        n = len(self._adj)
        for old in keep:
            if not (0 <= old < n):
                raise GraphFormatError(
                    f"vertex {old} out of range for n={n}"
                )
        adj: list[list[int]] = [[] for _ in keep]
        m = 0
        for new, old in enumerate(keep):
            row = adj[new]
            for w in self._adj[old]:
                mapped = index.get(w)
                if mapped is not None:
                    row.append(mapped)
                    if mapped > new:
                        m += 1
        return Graph._from_sorted_adjacency(adj, m), keep

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:  # graphs are immutable, so hashing is safe
        return hash(tuple(map(tuple, self._adj)))

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"


class CSRGraphView(Graph):
    """A :class:`Graph` reading straight from borrowed CSR buffers.

    Built by shared-memory workers over attached ``(indptr, indices)``
    views (:mod:`repro.parallel.shm`): no adjacency lists are copied at
    construction.  ``degree`` is O(1) from ``indptr``; ``neighbors``
    materializes a row on first touch and caches it in the ordinary
    ``_adj`` slot, so a refine scan only ever pays for the rows it
    visits — on a chunked worker that is a fraction of the graph —
    while repeated visits run on plain lists exactly like the base
    class.  Rows are identical to ``Graph.from_csr``'s, so every
    algorithm and equivalence proof carries over unchanged.

    The buffers are borrowed, not owned: whoever attached them must
    keep them mapped for the view's lifetime (worker module state does).
    Whole-graph operations (``edges``, ``induced_subgraph``, equality,
    hashing, ``to_csr``) materialize every row first and then defer to
    the base class.
    """

    __slots__ = ("_indptr", "_indices", "_np_arrays")

    def __init__(self, indptr, indices):
        n = len(indptr) - 1
        super().__init__([None] * n, len(indices) // 2)
        self._indptr = indptr
        self._indices = indices
        self._np_arrays = None

    def degree(self, u: int) -> int:
        return self._indptr[u + 1] - self._indptr[u]

    def degrees(self) -> list[int]:
        indptr = self._indptr
        return [
            indptr[u + 1] - indptr[u] for u in range(len(self._adj))
        ]

    def neighbors(self, u: int) -> Sequence[int]:
        row = self._adj[u]
        if row is None:
            indptr = self._indptr
            row = tuple(self._indices[indptr[u] : indptr[u + 1]])
            self._adj[u] = row
        return row

    def csr_arrays(self):
        """The borrowed buffers wrapped as zero-copy ndarrays.

        Requires numpy (callers on the array substrate are already
        numpy-gated); the wrappers are built once and cached.
        """
        if self._np_arrays is None:
            import numpy as np

            self._np_arrays = (
                np.asarray(self._indptr),
                np.asarray(self._indices),
            )
        return self._np_arrays

    def neighbors_array(self, u: int):
        """``N(u)`` as a zero-copy slice of the borrowed indices buffer."""
        indptr, indices = self.csr_arrays()
        return indices[indptr[u] : indptr[u + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        a, b = (u, v) if self.degree(u) <= self.degree(v) else (v, u)
        nbrs = self.neighbors(a)
        i = bisect_left(nbrs, b)
        return i < len(nbrs) and nbrs[i] == b

    def closed_neighborhood(self, u: int) -> list[int]:
        self.neighbors(u)
        return super().closed_neighborhood(u)

    def _materialize(self) -> None:
        for u in range(len(self._adj)):
            if self._adj[u] is None:
                self.neighbors(u)

    def edges(self) -> Iterator[tuple[int, int]]:
        self._materialize()
        return super().edges()

    def induced_subgraph(
        self, vertices: Iterable[int]
    ) -> tuple["Graph", list[int]]:
        self._materialize()
        return super().induced_subgraph(vertices)

    def to_csr(self) -> tuple[array, array]:
        self._materialize()
        return super().to_csr()

    def __eq__(self, other: object) -> bool:
        self._materialize()
        return super().__eq__(other)

    def __hash__(self) -> int:
        self._materialize()
        return super().__hash__()
