"""On-disk binary CSR graph format with O(1) memmap loading.

Text edge lists cost a full parse — integer conversion, dedup, CSR
assembly — every time a graph is opened.  For the million-edge workload
tier that parse dominates end-to-end benchmark time, so converted
graphs are stored as raw CSR bytes that :func:`read_binary_graph` maps
straight into a :class:`~repro.graph.csr.CSRGraph` via ``np.memmap``:
opening is O(1), and pages are faulted in lazily as algorithms touch
rows.

Layout (all fields little-endian)::

    offset  size              field
    0       4                 magic  b"RSKY"
    4       4                 format version (uint32; currently 1)
    8       8                 n  (uint64, vertex count)
    16      8                 m  (uint64, undirected edge count)
    24      4*(n+1)           indptr   (int32)
    24+...  4*(2*m)           indices  (int32, rows sorted ascending)

The arrays are exactly the ``int32`` snapshot :meth:`~repro.graph.csr.
CSRGraph.csr_arrays` exposes, so ``write → read`` round-trips to an
identical graph and a memmap-loaded graph feeds the shared-memory data
plane, the vectorized filter phase and the traversal kernels without
any conversion.

Every load validates the magic, version, declared counts and the file
size they imply; a truncated or corrupted file raises
:class:`~repro.errors.GraphFormatError` naming the path and the
specific mismatch, never a numpy shape error downstream.
"""

from __future__ import annotations

import os
import struct
from typing import Union

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph, HAVE_NUMPY

try:  # pragma: no cover - absence exercised via HAVE_NUMPY gating
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "BINARY_MAGIC",
    "BINARY_VERSION",
    "is_binary_graph",
    "read_binary_graph",
    "write_binary_graph",
]

PathLike = Union[str, os.PathLike]

#: First four bytes of every binary graph file.
BINARY_MAGIC = b"RSKY"

#: Current format version; bumped on any layout change.
BINARY_VERSION = 1

_HEADER = struct.Struct("<4sIQQ")


def _require_numpy(what: str) -> None:
    if not HAVE_NUMPY:
        raise GraphFormatError(
            f"{what} requires numpy; convert/load edge-list text instead"
        )


def is_binary_graph(path: PathLike) -> bool:
    """``True`` iff ``path`` starts with the binary-graph magic.

    Used by the sniffing loader (:func:`repro.graph.io.load_graph`) to
    route between formats; unreadable paths simply report ``False`` and
    let the text loader surface the real error.
    """
    try:
        with open(path, "rb") as fh:
            return fh.read(len(BINARY_MAGIC)) == BINARY_MAGIC
    except OSError:
        return False


def write_binary_graph(graph: Graph, path: PathLike) -> int:
    """Serialize ``graph`` to ``path``; returns the bytes written.

    Any :class:`~repro.graph.adjacency.Graph` works — list-backed
    graphs are snapshotted through their CSR memo first.  Writes are
    atomic-ish: data lands in ``path + ".tmp"`` and is renamed over the
    target, so a crashed convert never leaves a half-written file that
    still carries a valid magic.
    """
    _require_numpy("writing a binary graph")
    csr = CSRGraph.from_graph(graph)
    indptr, indices = csr.csr_arrays()
    header = _HEADER.pack(
        BINARY_MAGIC, BINARY_VERSION, graph.num_vertices, graph.num_edges
    )
    tmp = os.fspath(path) + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(memoryview(indptr).cast("B"))
        fh.write(memoryview(indices).cast("B"))
        fh.flush()
        os.fsync(fh.fileno())
        total = fh.tell()
    os.replace(tmp, os.fspath(path))
    return total


def read_binary_graph(path: PathLike) -> CSRGraph:
    """Open a binary graph as a memmap-backed :class:`CSRGraph`.

    The arrays are read-only ``np.memmap`` views — nothing is copied at
    open time, and the OS pages data in on demand.  The returned graph
    keeps the mapping alive for its lifetime.
    """
    _require_numpy("reading a binary graph")
    label = os.fspath(path)
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            head = fh.read(_HEADER.size)
    except OSError as exc:
        raise GraphFormatError(
            f"{label}: {exc.strerror or exc}"
        ) from exc
    if len(head) < _HEADER.size:
        raise GraphFormatError(
            f"{label}: truncated header ({len(head)} bytes, "
            f"need {_HEADER.size})"
        )
    magic, version, n, m = _HEADER.unpack(head)
    if magic != BINARY_MAGIC:
        raise GraphFormatError(
            f"{label}: bad magic {magic!r}; not a binary graph file"
        )
    if version != BINARY_VERSION:
        raise GraphFormatError(
            f"{label}: unsupported format version {version} "
            f"(this build reads version {BINARY_VERSION})"
        )
    if 2 * m >= 1 << 31:
        raise GraphFormatError(
            f"{label}: edge count {m} exceeds the int32 index range"
        )
    expected = _HEADER.size + 4 * (n + 1) + 4 * (2 * m)
    if size != expected:
        raise GraphFormatError(
            f"{label}: file holds {size} bytes but the header declares "
            f"n={n}, m={m} ({expected} bytes) — truncated or corrupt"
        )
    indptr = _np.memmap(
        label, dtype=_np.int32, mode="r", offset=_HEADER.size, shape=(n + 1,)
    )
    if m:
        indices = _np.memmap(
            label,
            dtype=_np.int32,
            mode="r",
            offset=_HEADER.size + 4 * (n + 1),
            shape=(2 * m,),
        )
    else:
        # mmap rejects zero-length windows; an edgeless graph needs none.
        indices = _np.zeros(0, dtype=_np.int32)
    if int(indptr[0]) != 0 or int(indptr[n]) != 2 * m:
        raise GraphFormatError(
            f"{label}: indptr endpoints ({int(indptr[0])}, "
            f"{int(indptr[n])}) do not match the declared 2m={2 * m} — "
            "corrupt index"
        )
    return CSRGraph.from_arrays(indptr, indices)
