"""Structural graph metrics beyond degree statistics.

Characterization metrics for datasets and generated stand-ins:
triangle counts, clustering coefficients, degree assortativity and
(approximate) diameter.  The benchmark suite uses them to demonstrate
that the synthetic stand-ins carry the structural properties (triangle
density, hub correlation) that the skyline results depend on; tests use
them to sanity-check generators against known closed forms.
"""

from __future__ import annotations

import math

from repro.graph.adjacency import Graph
from repro.paths.bfs import bfs_distances

__all__ = [
    "triangle_count",
    "triangles_per_vertex",
    "global_clustering",
    "average_local_clustering",
    "degree_assortativity",
    "approximate_diameter",
]


def triangles_per_vertex(graph: Graph) -> list[int]:
    """``t[u]`` = number of triangles through ``u``.

    Standard forward counting over the degree order: each triangle is
    found exactly once at its lowest-ordered corner and credited to all
    three.  ``O(m^{3/2})`` on sparse graphs.
    """
    n = graph.num_vertices
    order = sorted(range(n), key=lambda u: (graph.degree(u), u))
    rank = [0] * n
    for position, u in enumerate(order):
        rank[u] = position
    forward: list[list[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v in graph.neighbors(u):
            if rank[v] > rank[u]:
                forward[u].append(v)
    triangles = [0] * n
    forward_sets = [set(f) for f in forward]
    for u in range(n):
        fu = forward[u]
        for i, v in enumerate(fu):
            fv = forward_sets[v]
            for w in fu[i + 1 :]:
                if w in fv or v in forward_sets[w]:
                    triangles[u] += 1
                    triangles[v] += 1
                    triangles[w] += 1
    return triangles


def triangle_count(graph: Graph) -> int:
    """Total number of triangles in the graph."""
    return sum(triangles_per_vertex(graph)) // 3


def global_clustering(graph: Graph) -> float:
    """Transitivity: ``3 · triangles / wedges`` (0 when wedge-free)."""
    wedges = sum(
        d * (d - 1) // 2
        for d in (graph.degree(u) for u in graph.vertices())
    )
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def average_local_clustering(graph: Graph) -> float:
    """Mean of per-vertex clustering coefficients (deg < 2 counts as 0)."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    triangles = triangles_per_vertex(graph)
    total = 0.0
    for u in range(n):
        d = graph.degree(u)
        if d >= 2:
            total += 2.0 * triangles[u] / (d * (d - 1))
    return total / n


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over edges.

    Negative on hub-satellite graphs (hubs attach to leaves), positive
    on collaboration-style graphs.  Returns 0.0 when degenerate (no
    edges or zero variance).
    """
    xs: list[int] = []
    ys: list[int] = []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        # Count each edge in both orientations for symmetry.
        xs.extend((du, dv))
        ys.extend((dv, du))
    if not xs:
        return 0.0
    count = len(xs)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def approximate_diameter(graph: Graph, *, sweeps: int = 4) -> int:
    """Lower bound on the diameter via repeated double sweeps.

    Starts at the maximum-degree vertex, repeatedly BFS-ing to the
    farthest vertex found.  Exact on trees; a strong lower bound in
    general.  Operates within the component of the start vertex.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    start = max(graph.vertices(), key=graph.degree)
    best = 0
    current = start
    for _ in range(max(1, sweeps)):
        dist = bfs_distances(graph, current)
        far_vertex = current
        far_distance = 0
        for v, d in enumerate(dist):
            if d > far_distance:
                far_vertex, far_distance = v, d
        if far_distance <= best:
            break
        best = far_distance
        current = far_vertex
    return best
