"""Random and structured graph generators.

The paper's evaluation needs three generator families:

* **Special graphs** (Fig. 2): clique, complete binary tree, cycle, path —
  used to illustrate how the skyline size varies with structure.
* **Erdős–Rényi** ``G(n, p)`` graphs (Fig. 6a): on these the skyline is
  close to the whole vertex set.
* **Power-law graphs** (Fig. 6b): generated here with the Chung–Lu model
  parameterized by the degree exponent ``beta``, plus a Barabási–Albert
  generator as an alternative preferential-attachment source.  On these
  the skyline is much smaller than ``V`` — the regime the paper's pruning
  applications rely on.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from typing import Optional

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder

try:  # pragma: no cover - the large-tier generators are numpy-gated
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "erdos_renyi",
    "chung_lu_power_law",
    "copying_power_law",
    "barabasi_albert",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_binary_tree",
    "empty_graph",
    "kronecker_graph",
    "watts_strogatz",
    "configuration_model",
]


def _check_n(n: int) -> None:
    if n < 0:
        raise ParameterError(f"number of vertices must be >= 0, got {n}")


def empty_graph(n: int) -> Graph:
    """``n`` isolated vertices, no edges."""
    _check_n(n)
    return Graph._from_sorted_adjacency([[] for _ in range(n)], 0)


def complete_graph(n: int) -> Graph:
    """The clique ``K_n`` (Fig. 2a: ``|R| = |C| = 1``)."""
    _check_n(n)
    adj = [[v for v in range(n) if v != u] for u in range(n)]
    return Graph._from_sorted_adjacency(adj, n * (n - 1) // 2)


def path_graph(n: int) -> Graph:
    """The path ``P_n`` (Fig. 2d: ``|R| = |C| = n - 2`` for ``n >= 4``)."""
    _check_n(n)
    return Graph.from_edges(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` (Fig. 2c: ``|R| = |C| = n`` for ``n >= 5``)."""
    _check_n(n)
    if n == 0:
        return empty_graph(0)
    if n < 3:
        raise ParameterError(f"a cycle needs at least 3 vertices, got {n}")
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((n - 1, 0))
    return Graph.from_edges(n, edges)


def star_graph(n: int) -> Graph:
    """The star ``K_{1,n-1}`` with center 0."""
    _check_n(n)
    return Graph.from_edges(n, ((0, i) for i in range(1, n)))


def complete_binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (root = vertex 0).

    Fig. 2b: the skyline is exactly the set of internal (non-leaf)
    vertices.  ``depth=0`` is a single vertex.
    """
    if depth < 0:
        raise ParameterError(f"depth must be >= 0, got {depth}")
    n = 2 ** (depth + 1) - 1
    edges = []
    for child in range(1, n):
        edges.append(((child - 1) // 2, child))
    return Graph.from_edges(n, edges)


def erdos_renyi(n: int, p: float, *, seed: Optional[int] = None) -> Graph:
    """Sample ``G(n, p)`` using geometric edge skipping.

    Runs in ``O(n + m)`` expected time instead of ``O(n^2)`` — each
    non-edge run length is drawn from a geometric distribution, which is
    what makes the Fig. 6a sweep (``n = 10^5`` in the paper, ``10^4``
    here) affordable.
    """
    _check_n(n)
    if not (0.0 <= p <= 1.0):
        raise ParameterError(f"edge probability must be in [0, 1], got {p}")
    if p == 0.0 or n < 2:
        return empty_graph(n)
    rng = random.Random(seed)
    builder = GraphBuilder(n)
    if p == 1.0:
        return complete_graph(n)
    log_q = math.log1p(-p)
    if log_q == 0.0:
        # p so small that 1 - p rounds to 1: no edges in expectation.
        return empty_graph(n)
    # Enumerate the pairs (u, v), u < v, in lexicographic order and jump
    # ahead geometrically.
    max_pairs = n * n  # any skip beyond this exhausts the pair space
    u, v = 0, 0
    while u < n - 1:
        r = rng.random()
        skip = int(min(math.log1p(-r) / log_q, max_pairs))  # >= 0 skipped
        v += skip + 1
        while v >= n and u < n - 1:
            u += 1
            v = u + (v - n) + 1
        if u < n - 1 and v < n:
            builder.add_edge(u, v)
    return builder.build()


def _chung_lu_weights(n: int, beta: float) -> list[float]:
    """Expected-degree weights ``w_i ∝ (i + i0)^(-1/(beta-1))``.

    This is the standard construction giving a degree distribution with
    power-law exponent ``beta`` (Aiello–Chung–Lu).
    """
    gamma = 1.0 / (beta - 1.0)
    return [(i + 1.0) ** (-gamma) for i in range(n)]


def chung_lu_power_law(
    n: int,
    beta: float,
    *,
    average_degree: float = 8.0,
    seed: Optional[int] = None,
) -> Graph:
    """Power-law graph via the Chung–Lu expected-degree model.

    Parameters
    ----------
    n:
        Number of vertices.
    beta:
        Target power-law exponent of the degree distribution (the
        ``β`` axis of Fig. 6b; the paper sweeps 2.6–3.4).
    average_degree:
        Target average degree; weights are rescaled to hit it.
    seed:
        RNG seed for reproducibility.

    Implementation: weights are sorted descending; for each ``u`` the
    neighbors are sampled with the standard geometric-skipping trick of
    Miller & Hagberg, giving ``O(n + m)`` expected time.
    """
    _check_n(n)
    if beta <= 2.0:
        raise ParameterError(f"beta must be > 2 for a finite mean, got {beta}")
    if average_degree <= 0:
        raise ParameterError(
            f"average_degree must be positive, got {average_degree}"
        )
    if n < 2:
        return empty_graph(n)

    weights = _chung_lu_weights(n, beta)
    total = sum(weights)
    scale = average_degree * n / total
    w = [min(x * scale, math.sqrt(average_degree * n)) for x in weights]
    # w is already sorted descending because the raw weights are.
    s = sum(w)
    rng = random.Random(seed)
    builder = GraphBuilder(n)

    for u in range(n - 1):
        v = u + 1
        p = min(w[u] * w[v] / s, 1.0)
        while v < n and p > 0:
            if p != 1.0:
                r = rng.random()
                v += int(math.log(1.0 - r) / math.log(1.0 - p))
            if v < n:
                q = min(w[u] * w[v] / s, 1.0)
                if rng.random() < q / p:
                    builder.add_edge(u, v)
                p = q
                v += 1
    return builder.build()


def copying_power_law(
    n: int,
    degree_exponent: float = 2.5,
    copy_prob: float = 0.85,
    *,
    proto_link_prob: float = 0.0,
    max_out_degree: int = 30,
    seed: Optional[int] = None,
) -> Graph:
    """Power-law graph via the linkage-copying model (Kleinberg et al.).

    Each arriving vertex draws an out-degree ``d`` from the discrete
    power law ``P(d) ∝ d^-degree_exponent`` on ``[1, max_out_degree]``,
    picks a random *prototype* among the existing vertices, and creates
    each of its ``d`` links either by **copying** a random neighbor of
    the prototype (probability ``copy_prob``) or by linking to a uniform
    random vertex.

    Two properties make this the right stand-in for the paper's
    real-world datasets (DESIGN.md §3):

    * the degree distribution is a genuine power law with the full
      ``P(deg = 1) ≈ 1/ζ(β)`` mass of pendant vertices, and
    * copying *nests neighborhoods by construction* — a vertex whose
      links were all copied from one prototype satisfies
      ``N(u) ⊆ N[prototype]`` at birth — giving the strong
      neighborhood-inclusion structure (small skyline) that real web,
      social and communication graphs show and that independent-edge
      models like Chung–Lu lack.

    ``copy_prob`` tunes the skyline fraction: higher copying → smaller
    skyline.  ``proto_link_prob`` is the probability that the new vertex
    *additionally* links the prototype itself — a vertex whose remaining
    links were all copied then satisfies ``N[u] ⊆ N[prototype]`` (an
    *edge-constrained* inclusion, Def. 4), creating the triangle-rich
    hub-satellite structure through which the paper's filter phase does
    most of its pruning on real graphs.  The prototype is chosen
    degree-biased (a uniform half-edge endpoint), the standard
    preferential flavor of the copying model.  Deterministic for a fixed
    ``seed``.
    """
    _check_n(n)
    if not (0.0 <= copy_prob <= 1.0):
        raise ParameterError(
            f"copy_prob must be in [0, 1], got {copy_prob}"
        )
    if not (0.0 <= proto_link_prob <= 1.0):
        raise ParameterError(
            f"proto_link_prob must be in [0, 1], got {proto_link_prob}"
        )
    if degree_exponent <= 1.0:
        raise ParameterError(
            f"degree_exponent must be > 1, got {degree_exponent}"
        )
    if max_out_degree < 1:
        raise ParameterError(
            f"max_out_degree must be >= 1, got {max_out_degree}"
        )
    seed_size = 5
    if n <= seed_size:
        return complete_graph(n)
    rng = random.Random(seed)

    # Inverse-CDF sampler for the out-degree power law.
    masses = [d ** -degree_exponent for d in range(1, max_out_degree + 1)]
    total = sum(masses)
    cdf: list[float] = []
    acc = 0.0
    for mass in masses:
        acc += mass / total
        cdf.append(acc)

    def sample_out_degree() -> int:
        return bisect_left(cdf, rng.random()) + 1

    builder = GraphBuilder(n)
    adjacency: list[list[int]] = [
        [v for v in range(seed_size) if v != u] for u in range(seed_size)
    ]
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            builder.add_edge(u, v)

    for u in range(seed_size, n):
        prototype = rng.randrange(u)
        targets: set[int] = set()
        if rng.random() < proto_link_prob:
            # Linking the prototype alongside copies of its neighborhood
            # makes u a triangle-satellite: N[u] ⊆ N[prototype]-shaped
            # structure when the copies stay inside N(prototype).
            targets.add(prototype)
        for _ in range(sample_out_degree()):
            if rng.random() < copy_prob and adjacency[prototype]:
                t = rng.choice(adjacency[prototype])
            else:
                t = rng.randrange(u)
            if t != u:
                targets.add(t)
        adjacency.append(sorted(targets))
        for t in targets:
            builder.add_edge(u, t)
            adjacency[t].append(u)
    return builder.build()


def barabasi_albert(
    n: int, attach: int, *, seed: Optional[int] = None
) -> Graph:
    """Barabási–Albert preferential attachment with ``attach`` edges/vertex.

    A second power-law source (exponent ≈ 3) used by tests to confirm the
    skyline-size findings are not an artifact of the Chung–Lu sampler.
    """
    _check_n(n)
    if attach < 1:
        raise ParameterError(f"attach must be >= 1, got {attach}")
    if n <= attach:
        return complete_graph(n)
    rng = random.Random(seed)
    builder = GraphBuilder(n)
    # Seed clique of attach + 1 vertices.
    repeated: list[int] = []
    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            builder.add_edge(u, v)
            repeated.extend((u, v))
    for u in range(attach + 1, n):
        targets: set[int] = set()
        while len(targets) < attach:
            targets.add(rng.choice(repeated))
        for v in targets:
            builder.add_edge(u, v)
            repeated.extend((u, v))
    return builder.build()


# ----------------------------------------------------------------------
# Large-tier generators (vectorized, numpy-backed)
# ----------------------------------------------------------------------
# The million-edge workload tier needs graphs that materialize in
# seconds, which rules out the per-edge Python loops above.  These three
# generators assemble endpoint arrays with numpy and hand them to
# :func:`repro.graph.csr.graph_from_edge_arrays`, so the result is a
# CSR-backed graph from the start — no adjacency lists are ever built.
# All are deterministic given ``seed`` (``np.random.default_rng``).


def _require_numpy_gen(name: str):
    if _np is None:
        raise ParameterError(
            f"{name} requires numpy; use the list-backed generators for "
            "small graphs instead"
        )


def _edges_from_endpoints(n: int, us, vs) -> Graph:
    """Drop loops, dedupe both orientations, build the CSR graph."""
    from repro.graph.csr import graph_from_edge_arrays

    keep = us != vs
    us, vs = us[keep], vs[keep]
    lo = _np.minimum(us, vs)
    hi = _np.maximum(us, vs)
    codes = _np.unique(lo * _np.int64(n) + hi)
    return graph_from_edge_arrays(n, codes // n, codes % n)


def kronecker_graph(
    scale: int,
    edge_factor: int,
    *,
    initiator: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: Optional[int] = None,
) -> Graph:
    """A stochastic Kronecker (R-MAT) graph on ``2**scale`` vertices.

    ``edge_factor * 2**scale`` directed edges are sampled bit by bit:
    at each of the ``scale`` recursion levels one quadrant of the
    initiator matrix ``(a, b, c, d)`` is chosen and contributes one bit
    to each endpoint — the Graph500 construction, fully vectorized (one
    uniform draw per level across all edges at once).  Self-loops and
    duplicates are erased afterwards, so the realized edge count lands
    somewhat below the sample count — skewed initiators (large ``a``)
    collapse more samples onto the same hub pairs.
    """
    if scale < 0:
        raise ParameterError(f"scale must be >= 0, got {scale}")
    if edge_factor < 1:
        raise ParameterError(
            f"edge_factor must be >= 1, got {edge_factor}"
        )
    a, b, c, d = initiator
    if min(a, b, c, d) < 0 or abs(a + b + c + d - 1.0) > 1e-9:
        raise ParameterError(
            "initiator probabilities must be non-negative and sum to 1, "
            f"got {initiator}"
        )
    _require_numpy_gen("kronecker_graph")
    n = 1 << scale
    m = edge_factor * n
    rng = _np.random.default_rng(seed)
    us = _np.zeros(m, dtype=_np.int64)
    vs = _np.zeros(m, dtype=_np.int64)
    for _ in range(scale):
        r = rng.random(m)
        # Quadrant 0..3 = (a | b / c | d); high bit goes to u, low to v.
        quadrant = (
            (r >= a).astype(_np.int64)
            + (r >= a + b).astype(_np.int64)
            + (r >= a + b + c).astype(_np.int64)
        )
        us = (us << 1) | (quadrant >> 1)
        vs = (vs << 1) | (quadrant & 1)
    return _edges_from_endpoints(n, us, vs)


def watts_strogatz(
    n: int, k: int, beta: float, *, seed: Optional[int] = None
) -> Graph:
    """A Watts–Strogatz small world: ring lattice + random rewiring.

    Each vertex starts connected to its ``k // 2`` nearest neighbors on
    either side; every lattice edge is then rewired to a uniform random
    endpoint with probability ``beta``.  Rewiring is vectorized (one
    mask draw + one batch of replacement endpoints); rewired edges that
    collide as loops or duplicates are erased, matching the erased
    construction the other large-tier generators use.
    """
    _check_n(n)
    if k < 0 or k >= n and n > 0:
        raise ParameterError(
            f"ring degree k must satisfy 0 <= k < n, got k={k}, n={n}"
        )
    if not 0.0 <= beta <= 1.0:
        raise ParameterError(f"beta must be in [0, 1], got {beta}")
    _require_numpy_gen("watts_strogatz")
    half = k // 2
    if n == 0 or half == 0:
        return empty_graph(n)
    rng = _np.random.default_rng(seed)
    us = _np.repeat(_np.arange(n, dtype=_np.int64), half)
    vs = (
        us + _np.tile(_np.arange(1, half + 1, dtype=_np.int64), n)
    ) % n
    rewire = rng.random(len(us)) < beta
    vs = _np.where(
        rewire, rng.integers(0, n, size=len(us), dtype=_np.int64), vs
    )
    return _edges_from_endpoints(n, us, vs)


def configuration_model(
    degrees, *, seed: Optional[int] = None
) -> Graph:
    """An erased configuration-model graph with the given degree targets.

    Stubs (half-edges) are laid out per vertex, shuffled with one
    permutation, and paired off consecutively; self-loops and parallel
    edges are erased, so realized degrees can fall slightly below the
    targets (the standard erased construction).  An odd stub total
    silently drops the last stub.
    """
    _require_numpy_gen("configuration_model")
    deg = _np.asarray(degrees, dtype=_np.int64)
    if len(deg) and int(deg.min()) < 0:
        raise ParameterError("degrees must be non-negative")
    n = len(deg)
    stubs = _np.repeat(_np.arange(n, dtype=_np.int64), deg)
    rng = _np.random.default_rng(seed)
    stubs = rng.permutation(stubs)
    half = len(stubs) // 2
    if half == 0:
        return empty_graph(n)
    return _edges_from_endpoints(n, stubs[:half], stubs[half : 2 * half])


def power_law_degrees(
    n: int,
    exponent: float,
    *,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    seed: Optional[int] = None,
):
    """A seeded power-law degree sequence for :func:`configuration_model`.

    Inverse-CDF sampling of ``P(deg >= x) ∝ x^(1 - exponent)`` clipped
    to ``[min_degree, max_degree]`` (default cap ``√n``, keeping the
    erased construction's loop/multi-edge loss small).
    """
    _check_n(n)
    if exponent <= 1.0:
        raise ParameterError(
            f"degree exponent must be > 1, got {exponent}"
        )
    if min_degree < 1:
        raise ParameterError(f"min_degree must be >= 1, got {min_degree}")
    _require_numpy_gen("power_law_degrees")
    if max_degree is None:
        max_degree = max(min_degree, int(math.isqrt(n)))
    rng = _np.random.default_rng(seed)
    u = rng.random(n)
    raw = min_degree * (1.0 - u) ** (-1.0 / (exponent - 1.0))
    return _np.minimum(raw.astype(_np.int64), max_degree)
