"""Incremental construction of :class:`~repro.graph.adjacency.Graph`.

:class:`GraphBuilder` is the one mutable entry point into the graph layer.
It deduplicates edges, ignores orientation, rejects self-loops, and can
grow the vertex set on demand — convenient for parsing edge lists whose
vertex count is not known up front.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import GraphFormatError
from repro.graph.adjacency import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and produces an immutable :class:`Graph`.

    >>> b = GraphBuilder()
    >>> b.add_edge(0, 2)
    >>> b.add_edge(2, 0)   # duplicate orientation — ignored
    >>> g = b.build()
    >>> (g.num_vertices, g.num_edges)
    (3, 1)
    """

    def __init__(self, num_vertices: int = 0):
        if num_vertices < 0:
            raise GraphFormatError(
                f"vertex count must be >= 0, got {num_vertices}"
            )
        self._n = num_vertices
        self._edges: set[tuple[int, int]] = set()

    @property
    def num_vertices(self) -> int:
        """Current vertex count (grows automatically with added edges)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges added so far."""
        return len(self._edges)

    def ensure_vertex(self, u: int) -> None:
        """Grow the vertex set so that ``u`` is a valid vertex."""
        if u < 0:
            raise GraphFormatError(f"negative vertex id {u}")
        if u >= self._n:
            self._n = u + 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``; duplicates are ignored."""
        if u == v:
            raise GraphFormatError(f"self-loop at vertex {u}")
        self.ensure_vertex(u)
        self.ensure_vertex(v)
        self._edges.add((u, v) if u < v else (v, u))

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Add every edge from an iterable of pairs."""
        for u, v in edges:
            self.add_edge(u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """``True`` iff the edge was already added (either orientation)."""
        return ((u, v) if u < v else (v, u)) in self._edges

    def build(self) -> Graph:
        """Freeze the accumulated edges into an immutable :class:`Graph`."""
        adj: list[list[int]] = [[] for _ in range(self._n)]
        for u, v in self._edges:
            adj[u].append(v)
            adj[v].append(u)
        for row in adj:
            row.sort()
        return Graph._from_sorted_adjacency(adj, len(self._edges))
