"""Twin-vertex detection — the equivalence classes of mutual inclusion.

Two flavors, both linear-time by hashing sorted adjacency:

* **false twins** — equal open neighborhoods, ``N(u) = N(v)`` (always
  non-adjacent); these are exactly the distance-2 mutual inclusions of
  Def. 2, and the classes the PLL label compression of
  :mod:`repro.paths.labeling` shares labels across;
* **true twins** — equal closed neighborhoods, ``N[u] = N[v]`` (always
  adjacent); these are exactly the mutual *edge-constrained* inclusions
  of Def. 5, i.e. the ties the filter phase breaks by ID.

Within either kind of class, Def. 2's tie-break means the smallest-ID
member dominates the rest — so every twin class contributes at most one
vertex to the neighborhood skyline, which the tests cross-check.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph

__all__ = ["false_twin_classes", "true_twin_classes", "twin_representatives"]


def false_twin_classes(graph: Graph) -> list[list[int]]:
    """Partition ``V`` by open neighborhood; singleton classes included.

    Classes are sorted internally and ordered by their smallest member.
    """
    classes: dict[tuple[int, ...], list[int]] = {}
    for u in graph.vertices():
        classes.setdefault(tuple(graph.neighbors(u)), []).append(u)
    return sorted(classes.values(), key=lambda cls: cls[0])


def true_twin_classes(graph: Graph) -> list[list[int]]:
    """Partition ``V`` by closed neighborhood; singleton classes included."""
    classes: dict[tuple[int, ...], list[int]] = {}
    for u in graph.vertices():
        key = tuple(graph.closed_neighborhood(u))
        classes.setdefault(key, []).append(u)
    return sorted(classes.values(), key=lambda cls: cls[0])


def twin_representatives(graph: Graph, *, closed: bool = False) -> list[int]:
    """``rep[u]`` = smallest member of u's twin class.

    ``closed=True`` groups by closed neighborhoods (true twins).
    """
    rep = [0] * graph.num_vertices
    classes = (
        true_twin_classes(graph) if closed else false_twin_classes(graph)
    )
    for cls in classes:
        head = cls[0]
        for u in cls:
            rep[u] = head
    return rep
