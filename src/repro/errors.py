"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The subclasses separate the three
broad failure categories: malformed graph input, bad algorithm parameters
and unknown registry look-ups.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class GraphFormatError(ReproError):
    """A graph could not be constructed or parsed.

    Raised for self-loops, duplicate edges, out-of-range endpoints,
    negative vertex counts and malformed edge-list files.
    """


class ParameterError(ReproError):
    """An algorithm was invoked with an invalid parameter value.

    Examples: a non-positive group size ``k``, a bloom-filter width that
    is not a positive multiple of the word size, or an unknown algorithm
    name passed to :func:`repro.core.api.neighborhood_skyline`.
    """


class RecoveryError(ReproError):
    """A supervised parallel run could not be recovered.

    The pool supervisor (:mod:`repro.parallel.supervisor`) retries
    failed chunks and, once a chunk's retry budget is exhausted,
    re-runs it sequentially in-process.  That fallback is the last
    line of defense: if it *also* raises, the run cannot produce a
    correct result and this error is raised, chaining the fallback's
    exception.  Worker crashes, hangs, corrupt payloads and worker
    exceptions alone never surface as ``RecoveryError`` — they are
    absorbed by retry and fallback.
    """


class DatasetNotFoundError(ReproError, KeyError):
    """An unknown dataset name was requested from the workload registry."""

    def __init__(self, name: str, known: tuple[str, ...]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown dataset {name!r}; known datasets: {', '.join(known)}"
        )
