"""Group closeness maximization: ``BaseGC``/Greedy++-style vs ``NeiSkyGC``.

Sec. IV-A of the paper.  The greedy evaluator is shared (truncated-BFS
marginal gains, the core engineering of Greedy++); the two entry points
differ only in the candidate pool:

* :func:`base_gc` — all vertices (the paper's BaseGC / Greedy++ role);
* :func:`neisky_gc` — Algorithm 4: only skyline vertices, justified by
  Lemma 3 (``v ≤ u`` implies ``GC(S∪{u}) ≥ GC(S∪{v})``).

Gains are measured in **farness units**: adding ``u`` changes farness by
``Σ (old − new)`` over improved vertices, with ``u``'s own removed term
appearing naturally as the ``new = 0`` improvement.  Maximizing the
farness drop per round is identical to maximizing
``GC(S ∪ {u}) = n / F(S ∪ {u})``.
"""

from __future__ import annotations

from typing import Optional

from repro.centrality.greedy import GreedyResult, greedy_maximize
from repro.core.filter_refine import filter_refine_sky
from repro.graph.adjacency import Graph

__all__ = ["ClosenessObjective", "base_gc", "neisky_gc"]


class ClosenessObjective:
    """Farness-drop gain weights for group closeness.

    ``old == -1`` (unreachable) is valued at the penalty ``n`` — see
    :mod:`repro.centrality.closeness` for the convention.
    """

    name = "group_closeness"

    def __init__(self, graph: Graph):
        self._penalty = graph.num_vertices

    def gain_weight(self, old: int, new: int) -> float:
        """Farness drop contributed by one improved vertex."""
        old_value = self._penalty if old == -1 else old
        return float(old_value - new)


def base_gc(graph: Graph, k: int) -> GreedyResult:
    """Greedy group-closeness over the full vertex set (``BaseGC``).

    Performs ``k(2n − k + 1)/2`` marginal-gain evaluations.
    """
    return greedy_maximize(graph, k, ClosenessObjective(graph))


def neisky_gc(
    graph: Graph,
    k: int,
    *,
    skyline: Optional[tuple[int, ...]] = None,
) -> GreedyResult:
    """Algorithm 4 (``NeiSkyGC``): greedy restricted to the skyline.

    ``skyline`` may be passed in when already computed (benchmarks reuse
    one skyline across many ``k``); otherwise FilterRefineSky runs first.
    Performs ``k(2r − k + 1)/2`` evaluations for ``r = |R|``.
    """
    if skyline is None:
        skyline = filter_refine_sky(graph).skyline
    return greedy_maximize(
        graph, k, ClosenessObjective(graph), candidates=skyline
    )
