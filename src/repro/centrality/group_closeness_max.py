"""Group closeness maximization: ``BaseGC``/Greedy++-style vs ``NeiSkyGC``.

Sec. IV-A of the paper.  The greedy evaluator is shared (truncated-BFS
marginal gains, the core engineering of Greedy++); the two entry points
differ only in the candidate pool:

* :func:`base_gc` — all vertices (the paper's BaseGC / Greedy++ role);
* :func:`neisky_gc` — Algorithm 4: only skyline vertices, justified by
  Lemma 3 (``v ≤ u`` implies ``GC(S∪{u}) ≥ GC(S∪{v})``).

Gains are measured in **farness units**: adding ``u`` changes farness by
``Σ (old − new)`` over improved vertices, with ``u``'s own removed term
appearing naturally as the ``new = 0`` improvement.  Maximizing the
farness drop per round is identical to maximizing
``GC(S ∪ {u}) = n / F(S ∪ {u})``.

Both entry points accept ``strategy="lazy"`` to run the CELF engine of
:mod:`repro.centrality.lazy_greedy` (identical output, far fewer gain
evaluations) and, with it, ``workers`` for the parallel round 0.
"""

from __future__ import annotations

from typing import Optional

from repro.centrality.greedy import GreedyResult
from repro.centrality.lazy_greedy import run_greedy
from repro.core.filter_refine import filter_refine_sky
from repro.graph.adjacency import Graph

__all__ = ["ClosenessObjective", "base_gc", "neisky_gc"]


class ClosenessObjective:
    """Farness-drop gain weights for group closeness.

    ``old == -1`` (unreachable) is valued at the penalty ``n`` — see
    :mod:`repro.centrality.closeness` for the convention.
    """

    name = "group_closeness"
    #: Specialized CSR gain kernel (see :func:`repro.paths.csr.make_evaluator`).
    csr_kernel = "closeness"

    def __init__(self, graph: Graph):
        self.penalty = graph.num_vertices

    def gain_weight(self, old: int, new: int) -> float:
        """Farness drop contributed by one improved vertex."""
        old_value = self.penalty if old == -1 else old
        return float(old_value - new)


def base_gc(
    graph: Graph,
    k: int,
    *,
    strategy: str = "eager",
    workers: int = 1,
    timeout: Optional[float] = None,
    data_plane: str = "auto",
    session=None,
    gain_batch="auto",
) -> GreedyResult:
    """Greedy group-closeness over the full vertex set (``BaseGC``).

    The eager strategy performs ``k(2n − k + 1)/2`` marginal-gain
    evaluations; ``strategy="lazy"`` returns the identical result with
    (typically far) fewer.  ``data_plane`` / ``session`` configure the
    lazy round-0 fan-out (see :func:`~repro.centrality.lazy_greedy.
    lazy_greedy_maximize`).
    """
    return run_greedy(
        graph,
        k,
        ClosenessObjective(graph),
        strategy=strategy,
        workers=workers,
        timeout=timeout,
        data_plane=data_plane,
        session=session,
        gain_batch=gain_batch,
    )


def neisky_gc(
    graph: Graph,
    k: int,
    *,
    skyline: Optional[tuple[int, ...]] = None,
    strategy: str = "eager",
    workers: int = 1,
    timeout: Optional[float] = None,
    data_plane: str = "auto",
    session=None,
    gain_batch="auto",
) -> GreedyResult:
    """Algorithm 4 (``NeiSkyGC``): greedy restricted to the skyline.

    ``skyline`` may be passed in when already computed (benchmarks reuse
    one skyline across many ``k``); otherwise FilterRefineSky runs first.
    The eager strategy performs ``k(2r − k + 1)/2`` evaluations for
    ``r = |R|``.
    """
    if skyline is None:
        skyline = filter_refine_sky(graph).skyline
    return run_greedy(
        graph,
        k,
        ClosenessObjective(graph),
        candidates=skyline,
        strategy=strategy,
        workers=workers,
        timeout=timeout,
        data_plane=data_plane,
        session=session,
        gain_batch=gain_batch,
    )
