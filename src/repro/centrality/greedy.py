"""Generic greedy driver for group-centrality maximization.

Both applications of Sec. IV (group closeness and group harmonic) — and
the Base*/NeiSky* variants of each — are instances of one loop:

    repeat k times:
        evaluate the marginal gain of every candidate not yet in S
        add the best candidate to S

The pieces that vary are factored out:

* the **objective** supplies a ``gain_weight(old, new)`` function that
  converts one improved distance into gain units (closeness: farness
  drop ``old - new``; harmonic: ``1/new - 1/old``), evaluated over the
  stream of a truncated BFS (:mod:`repro.paths.truncated`);
* the **candidate pool** is either all of ``V`` (BaseGC / BaseGH) or the
  neighborhood skyline ``R`` (NeiSkyGC / NeiSkyGH, Algorithm 4) — the
  pruning is *only* a pool restriction, exactly as the paper argues in
  Sec. IV-D, so measured speedups isolate the skyline's contribution.

``evaluations`` counts marginal-gain computations: ``k(2n - k + 1)/2``
for the full pool versus ``k(2r - k + 1)/2`` for the skyline pool — the
quantities the paper compares in Example 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Protocol

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.paths.csr import (
    CSRTraversal,
    make_batch_evaluator,
    make_evaluator,
    resolve_gain_batch,
)
from repro.paths.truncated import improvements

try:  # pragma: no cover - scalar fallback exercised via monkeypatching
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["GainObjective", "GreedyResult", "greedy_maximize"]


class GainObjective(Protocol):
    """What the greedy driver needs from an objective."""

    #: Human-readable name used in reports.
    name: str

    def gain_weight(self, old: int, new: int) -> float:
        """Gain contributed by one vertex whose distance to the group
        drops from ``old`` to ``new`` (``old == -1`` means unreachable;
        ``new == 0`` identifies the added vertex itself)."""
        ...


@dataclass(frozen=True)
class GreedyResult:
    """Outcome of a greedy group-centrality run.

    ``gains[i]`` is the marginal gain realized in round ``i`` (in the
    objective's own units); ``evaluations`` counts marginal-gain
    computations — the work measure the paper's Example 2 compares;
    ``pool_size`` is the candidate-pool cardinality the run started from.

    ``evaluations_saved`` is how many evaluations the run avoided
    relative to the eager schedule over the same pool (always 0 for the
    eager driver itself); ``strategy`` records which driver produced the
    result (``"eager"`` or ``"lazy"``).
    """

    group: tuple[int, ...]
    gains: tuple[float, ...]
    evaluations: int
    pool_size: int
    objective: str
    evaluations_saved: int = 0
    strategy: str = "eager"

    @property
    def total_gain(self) -> float:
        return sum(self.gains)


def greedy_maximize(
    graph: Graph,
    k: int,
    objective: GainObjective,
    *,
    candidates: Optional[Iterable[int]] = None,
    gain_batch="auto",
) -> GreedyResult:
    """Greedily build a size-``k`` group maximizing ``objective``.

    Parameters
    ----------
    graph:
        The host graph.
    k:
        Desired group size (capped at ``n``).
    objective:
        A :class:`GainObjective` (see
        :mod:`repro.centrality.group_closeness_max` /
        :mod:`repro.centrality.group_harmonic_max`).
    candidates:
        Candidate pool; default is all of ``V``.  When the pool runs dry
        before ``k`` picks (``k > |R|`` under skyline pruning), the
        remaining rounds fall back to evaluating all of ``V \\ S`` so the
        requested group size is always honoured.
    gain_batch:
        Marginal-gain lanes per batched kernel call — ``"auto"`` (the
        default) sizes from ``n`` and the pool and resolves to 1 (the
        scalar generator loop) on small graphs or without numpy; any
        value produces the identical result, since the batched kernel
        replays the scalar emission order bit for bit (see
        :mod:`repro.paths.csr`).  ``evaluations`` accounting never
        changes: one per candidate per round, regardless of lanes.

    Ties between equal gains break to the smaller vertex ID, making runs
    deterministic and Base/NeiSky variants comparable.
    """
    if k < 0:
        raise ParameterError(f"group size k must be >= 0, got {k}")
    n = graph.num_vertices
    k = min(k, n)
    if candidates is None:
        pool = list(range(n))
    else:
        pool = sorted(set(candidates))
        for u in pool:
            if not (0 <= u < n):
                raise ParameterError(f"candidate {u} out of range")

    in_group = bytearray(n)
    dist = [-1] * n  # d(v, S); -1 = infinity while S is empty
    group: list[int] = []
    gains: list[float] = []
    evaluations = 0
    weight = objective.gain_weight

    batch = resolve_gain_batch(gain_batch, n, len(pool))
    batch_evaluate = None
    dist_nd = None
    if batch > 1:
        trav = CSRTraversal.from_graph(graph)
        batch_evaluate = make_batch_evaluator(trav, objective)
        if batch_evaluate is None:
            batch = 1
        else:
            evaluate = make_evaluator(trav, objective)
            dist_nd = _np.full(n, -1, dtype=_np.int32)

    for _round in range(k):
        active = [u for u in pool if not in_group[u]]
        if not active:
            # Pool exhausted (k > |pool|): fall back to the full vertex
            # set for the remaining rounds.
            active = [u for u in range(n) if not in_group[u]]
            if not active:
                break
        best_u = -1
        best_gain = float("-inf")
        best_updates: list[tuple[int, int]] = []
        if batch_evaluate is not None:
            # Batched round: score `batch` lanes per kernel pass.  The
            # first-strict-maximum scan order is the scalar loop's, so
            # tie-breaks are identical; the winner's update list is
            # re-derived with one uncounted scalar traversal (same
            # precedent as the pooled round 0 of the lazy driver).
            for lo in range(0, len(active), batch):
                lane = active[lo : lo + batch]
                results = batch_evaluate(lane, dist_nd, False)
                for u, (gain, _none) in zip(lane, results):
                    evaluations += 1
                    if gain > best_gain:
                        best_gain = gain
                        best_u = u
            _gain, best_updates = evaluate(best_u, dist, True)
        else:
            for u in active:
                evaluations += 1
                gain = 0.0
                updates: list[tuple[int, int]] = []
                append = updates.append
                for v, old, new in improvements(graph, u, dist):
                    gain += weight(old, new)
                    append((v, new))
                if gain > best_gain:
                    best_gain = gain
                    best_u = u
                    best_updates = updates
        # Commit: apply the winner's improvements, cached during the
        # scan — re-running its BFS here would be pure duplicate work.
        if dist_nd is None:
            for v, new in best_updates:
                dist[v] = new
        else:
            for v, new in best_updates:
                dist[v] = new
                dist_nd[v] = new
        in_group[best_u] = 1
        group.append(best_u)
        gains.append(best_gain)

    return GreedyResult(
        group=tuple(group),
        gains=tuple(gains),
        evaluations=evaluations,
        pool_size=len(pool),
        objective=objective.name,
    )
