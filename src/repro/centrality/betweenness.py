"""Betweenness centrality (Brandes' algorithm) and shortest-path counts.

Used by the group-betweenness extension (Sec. IV-D of the paper flags
group betweenness maximization as a further target for skyline pruning)
and by tests as an independent structural probe.
"""

from __future__ import annotations

from collections import deque

from repro.graph.adjacency import Graph

__all__ = ["betweenness_centrality", "sp_counts_from"]


def sp_counts_from(graph: Graph, source: int) -> tuple[list[int], list[int]]:
    """BFS from ``source`` returning ``(dist, sigma)``.

    ``sigma[v]`` is the number of distinct shortest ``source → v`` paths;
    ``dist[v] = -1`` marks unreachable (with ``sigma[v] = 0``).
    """
    n = graph.num_vertices
    dist = [-1] * n
    sigma = [0] * n
    dist[source] = 0
    sigma[source] = 1
    queue = deque((source,))
    neighbors = graph.neighbors
    while queue:
        u = queue.popleft()
        next_level = dist[u] + 1
        for v in neighbors(u):
            if dist[v] == -1:
                dist[v] = next_level
                queue.append(v)
            if dist[v] == next_level:
                sigma[v] += sigma[u]
    return dist, sigma


def betweenness_centrality(graph: Graph, *, normalized: bool = False) -> list[float]:
    """Exact vertex betweenness via Brandes' dependency accumulation.

    ``O(n · m)`` on unweighted graphs.  With ``normalized=True`` scores
    are divided by ``(n-1)(n-2)/2`` (undirected convention).
    """
    n = graph.num_vertices
    centrality = [0.0] * n
    neighbors = graph.neighbors
    for s in range(n):
        # Single-source shortest-path DAG.
        dist = [-1] * n
        sigma = [0] * n
        dist[s] = 0
        sigma[s] = 1
        order: list[int] = []
        queue = deque((s,))
        while queue:
            u = queue.popleft()
            order.append(u)
            next_level = dist[u] + 1
            for v in neighbors(u):
                if dist[v] == -1:
                    dist[v] = next_level
                    queue.append(v)
                if dist[v] == next_level:
                    sigma[v] += sigma[u]
        # Dependency accumulation in reverse BFS order.
        delta = [0.0] * n
        for v in reversed(order):
            dv = dist[v]
            coeff = (1.0 + delta[v]) / sigma[v]
            for w in neighbors(v):
                if dist[w] == dv - 1:
                    delta[w] += sigma[w] * coeff
            if v != s:
                centrality[v] += delta[v]
    # Each undirected pair was counted from both endpoints.
    scale = 0.5
    if normalized and n > 2:
        scale /= (n - 1) * (n - 2) / 2.0
    return [c * scale for c in centrality]
