"""Vertex and group harmonic centrality (Defs. 8–9 of the paper).

``H(u) = Σ_{v≠u} 1/d(v, u)`` and ``GH(S) = Σ_{v∉S} 1/d(v, S)``.

Harmonic centrality handles disconnection natively: an unreachable
vertex contributes ``1/∞ = 0``, no penalty convention needed — one of
the reasons the measure is popular on fragmented real-world graphs.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.adjacency import Graph
from repro.paths.bfs import UNREACHED, bfs_distances, multi_source_distances

__all__ = ["harmonic_centrality", "group_harmonic"]


def harmonic_centrality(graph: Graph, u: int) -> float:
    """Vertex harmonic centrality ``H(u)`` (Def. 8)."""
    dist = bfs_distances(graph, u)
    return sum(1.0 / d for d in dist if d > 0)


def group_harmonic(graph: Graph, group: Iterable[int]) -> float:
    """Group harmonic centrality ``GH(S)`` (Def. 9).

    Note ``GH`` is *not* monotone in ``S``: adding a vertex deletes its
    own ``1/d(u, S)`` term, which can outweigh the improvements — the
    paper leans on Angriman et al.'s result that greedy still gives a
    0.5-approximation.
    """
    members = set(group)
    dist = multi_source_distances(graph, members)
    return sum(
        1.0 / d
        for v, d in enumerate(dist)
        if v not in members and d != UNREACHED and d > 0
    )
