"""Group betweenness maximization — the Sec. IV-D extension.

The paper proves its skyline pruning for closeness and harmonic group
centralities and argues (Sec. IV-D) that the same inequalities hold for
*any* shortest-path-based group measure, naming group betweenness
maximization as future work.  This module implements that extension:

* :func:`group_betweenness` — exact ``GB(S)``: the number of ordered-
  pair shortest-path "coverages", where a pair ``(s, t)`` with
  ``s, t ∉ S`` contributes the fraction of its shortest paths meeting
  ``S``.  Computed by comparing path counts in ``G`` against path counts
  in ``G − S`` (a path avoids ``S`` iff it survives the deletion).
* :func:`base_gb` / :func:`neisky_gb` — greedy maximization over all
  vertices / over the skyline.

Cost caveat: one ``GB`` evaluation is ``O(n·m)`` and greedy evaluates it
per candidate per round, so this is a small-graph tool — consistent
with its status as an extension rather than a headline experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.centrality.betweenness import sp_counts_from
from repro.core.filter_refine import filter_refine_sky
from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["group_betweenness", "base_gb", "neisky_gb", "GroupBetweennessResult"]


def group_betweenness(graph: Graph, group: Iterable[int]) -> float:
    """Exact group betweenness of ``group`` (unordered pairs, unnormalized).

    ``GB(S) = Σ_{ {s,t} ⊆ V∖S } σ_st(S) / σ_st`` where ``σ_st(S)`` counts
    the shortest ``s–t`` paths passing through at least one member of
    ``S``.  A pair contributes 1 when *every* shortest path is hit
    (deleting ``S`` lengthens or disconnects it).
    """
    members = sorted(set(group))
    member_set = set(members)
    n = graph.num_vertices
    if not member_set:
        return 0.0
    remaining = [v for v in range(n) if v not in member_set]
    reduced, mapping = graph.induced_subgraph(remaining)
    to_reduced = {old: new for new, old in enumerate(mapping)}

    total = 0.0
    for s in remaining:
        dist_full, sigma_full = sp_counts_from(graph, s)
        dist_red, sigma_red = sp_counts_from(reduced, to_reduced[s])
        for t in remaining:
            if t <= s:
                continue
            d = dist_full[t]
            if d == -1:
                continue
            rt = to_reduced[t]
            if dist_red[rt] == d:
                surviving = sigma_red[rt]
            else:
                surviving = 0  # all shortest paths pass through S
            total += 1.0 - surviving / sigma_full[t]
    return total


@dataclass(frozen=True)
class GroupBetweennessResult:
    """Greedy group-betweenness outcome (scores are exact ``GB`` values)."""

    group: tuple[int, ...]
    scores: tuple[float, ...]
    evaluations: int
    pool_size: int

    @property
    def final_score(self) -> float:
        return self.scores[-1] if self.scores else 0.0


def _greedy_gb(
    graph: Graph, k: int, pool: list[int]
) -> GroupBetweennessResult:
    if k < 0:
        raise ParameterError(f"group size k must be >= 0, got {k}")
    n = graph.num_vertices
    k = min(k, n)
    group: list[int] = []
    scores: list[float] = []
    evaluations = 0
    chosen: set[int] = set()
    for _round in range(k):
        active = [u for u in pool if u not in chosen]
        if not active:
            active = [u for u in range(n) if u not in chosen]
            if not active:
                break
        best_u, best_score = -1, float("-inf")
        for u in active:
            evaluations += 1
            score = group_betweenness(graph, group + [u])
            if score > best_score:
                best_u, best_score = u, score
        chosen.add(best_u)
        group.append(best_u)
        scores.append(best_score)
    return GroupBetweennessResult(
        group=tuple(group),
        scores=tuple(scores),
        evaluations=evaluations,
        pool_size=len(pool),
    )


def base_gb(graph: Graph, k: int) -> GroupBetweennessResult:
    """Greedy group-betweenness over the full vertex set."""
    return _greedy_gb(graph, k, list(graph.vertices()))


def neisky_gb(
    graph: Graph,
    k: int,
    *,
    skyline: Optional[tuple[int, ...]] = None,
) -> GroupBetweennessResult:
    """Greedy group-betweenness restricted to the neighborhood skyline."""
    if skyline is None:
        skyline = filter_refine_sky(graph).skyline
    return _greedy_gb(graph, k, sorted(skyline))
