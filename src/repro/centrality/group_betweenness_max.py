"""Group betweenness maximization — the Sec. IV-D extension.

The paper proves its skyline pruning for closeness and harmonic group
centralities and argues (Sec. IV-D) that the same inequalities hold for
*any* shortest-path-based group measure, naming group betweenness
maximization as future work.  This module implements that extension:

* :func:`group_betweenness` — exact ``GB(S)``: the number of ordered-
  pair shortest-path "coverages", where a pair ``(s, t)`` with
  ``s, t ∉ S`` contributes the fraction of its shortest paths meeting
  ``S``.  Computed by comparing path counts in ``G`` against path counts
  in ``G − S`` (a path avoids ``S`` iff it survives the deletion).
* :func:`base_gb` / :func:`neisky_gb` — greedy maximization over all
  vertices / over the skyline.

Cost caveat: one ``GB`` evaluation is ``O(n·m)`` and greedy evaluates it
per candidate per round, so this is a small-graph tool — consistent
with its status as an extension rather than a headline experiment.

Both entry points share the driver API of the closeness/harmonic pair:
``strategy="lazy"`` runs a CELF schedule over the *marginal gains*
``GB(S∪{u}) − GB(S)`` (group betweenness is monotone submodular, so
stale gains are upper bounds).  One wrinkle the distance-based
objectives don't have: the eager scan compares absolute scores, and the
float subtraction ``score − prev`` can collapse distinct scores into
equal gains — so when the heap top is fresh, every gain-tied entry is
drained and re-evaluated, and the round settles on the highest *score*
(smallest ID on ties), reproducing the eager pick exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.centrality.betweenness import sp_counts_from
from repro.core.filter_refine import filter_refine_sky
from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["group_betweenness", "base_gb", "neisky_gb", "GroupBetweennessResult"]


def group_betweenness(graph: Graph, group: Iterable[int]) -> float:
    """Exact group betweenness of ``group`` (unordered pairs, unnormalized).

    ``GB(S) = Σ_{ {s,t} ⊆ V∖S } σ_st(S) / σ_st`` where ``σ_st(S)`` counts
    the shortest ``s–t`` paths passing through at least one member of
    ``S``.  A pair contributes 1 when *every* shortest path is hit
    (deleting ``S`` lengthens or disconnects it).
    """
    members = sorted(set(group))
    member_set = set(members)
    n = graph.num_vertices
    if not member_set:
        return 0.0
    remaining = [v for v in range(n) if v not in member_set]
    reduced, mapping = graph.induced_subgraph(remaining)
    to_reduced = {old: new for new, old in enumerate(mapping)}

    total = 0.0
    for s in remaining:
        dist_full, sigma_full = sp_counts_from(graph, s)
        dist_red, sigma_red = sp_counts_from(reduced, to_reduced[s])
        for t in remaining:
            if t <= s:
                continue
            d = dist_full[t]
            if d == -1:
                continue
            rt = to_reduced[t]
            if dist_red[rt] == d:
                surviving = sigma_red[rt]
            else:
                surviving = 0  # all shortest paths pass through S
            total += 1.0 - surviving / sigma_full[t]
    return total


@dataclass(frozen=True)
class GroupBetweennessResult:
    """Greedy group-betweenness outcome (scores are exact ``GB`` values).

    ``evaluations_saved``/``strategy`` mirror
    :class:`~repro.centrality.greedy.GreedyResult`.
    """

    group: tuple[int, ...]
    scores: tuple[float, ...]
    evaluations: int
    pool_size: int
    evaluations_saved: int = 0
    strategy: str = "eager"

    @property
    def final_score(self) -> float:
        return self.scores[-1] if self.scores else 0.0


def _eager_gb(
    graph: Graph, k: int, pool: list[int]
) -> GroupBetweennessResult:
    n = graph.num_vertices
    k = min(k, n)
    group: list[int] = []
    scores: list[float] = []
    evaluations = 0
    chosen: set[int] = set()
    for _round in range(k):
        active = [u for u in pool if u not in chosen]
        if not active:
            active = [u for u in range(n) if u not in chosen]
            if not active:
                break
        best_u, best_score = -1, float("-inf")
        for u in active:
            evaluations += 1
            score = group_betweenness(graph, group + [u])
            if score > best_score:
                best_u, best_score = u, score
        chosen.add(best_u)
        group.append(best_u)
        scores.append(best_score)
    return GroupBetweennessResult(
        group=tuple(group),
        scores=tuple(scores),
        evaluations=evaluations,
        pool_size=len(pool),
    )


def _lazy_gb(
    graph: Graph, k: int, pool: list[int]
) -> GroupBetweennessResult:
    n = graph.num_vertices
    k = min(k, n)
    group: list[int] = []
    scores: list[float] = []
    evaluations = 0
    eager_evaluations = 0
    chosen: set[int] = set()
    prev = 0.0  # GB(S) of the committed group so far
    #: CELF heap of (-(score - prev), u, round_tag); stale gains are
    #: upper bounds by submodularity of GB.
    heap: list[tuple[float, int, int]] = []

    for round_no in range(k):
        if not heap:
            active = [u for u in pool if u not in chosen]
            if not active:
                active = [u for u in range(n) if u not in chosen]
                if not active:
                    break
            eager_evaluations += len(active)
            evaluations += len(active)
            best_idx = -1
            best_score = float("-inf")
            entries: list[tuple[int, float]] = []
            for u in active:
                score = group_betweenness(graph, group + [u])
                if score > best_score:
                    best_score = score
                    best_idx = len(entries)
                entries.append((u, score))
            best_u = entries[best_idx][0]
            heap = [
                (-(score - prev), u, round_no)
                for i, (u, score) in enumerate(entries)
                if i != best_idx
            ]
            heapq.heapify(heap)
        else:
            eager_evaluations += len(heap)
            fresh_scores: dict[int, float] = {}
            while True:
                neg_gain, u, tag = heap[0]
                if tag == round_no:
                    break
                heapq.heappop(heap)
                score = group_betweenness(graph, group + [u])
                evaluations += 1
                fresh_scores[u] = score
                heapq.heappush(heap, (-(score - prev), u, round_no))
            # Contender drain: entries whose cached gain ties the fresh
            # top may hide distinct absolute scores behind the rounded
            # subtraction; eager compares scores, so re-evaluate every
            # gain-tied entry and settle by score (ID breaks ties via
            # the ascending pop order + strict comparison).
            top_gain = heap[0][0]
            contenders: list[tuple[int, float]] = []
            while heap and heap[0][0] == top_gain:
                _, u, tag = heapq.heappop(heap)
                if tag == round_no:
                    score = fresh_scores[u]
                else:
                    score = group_betweenness(graph, group + [u])
                    evaluations += 1
                contenders.append((u, score))
            best_u, best_score = contenders[0]
            for u, score in contenders[1:]:
                if score > best_score:
                    best_u, best_score = u, score
            for u, score in contenders:
                if u != best_u:
                    heapq.heappush(heap, (-(score - prev), u, round_no))

        chosen.add(best_u)
        group.append(best_u)
        scores.append(best_score)
        prev = best_score

    return GroupBetweennessResult(
        group=tuple(group),
        scores=tuple(scores),
        evaluations=evaluations,
        pool_size=len(pool),
        evaluations_saved=eager_evaluations - evaluations,
        strategy="lazy",
    )


def _greedy_gb(
    graph: Graph, k: int, pool: list[int], strategy: str = "eager"
) -> GroupBetweennessResult:
    if k < 0:
        raise ParameterError(f"group size k must be >= 0, got {k}")
    if strategy == "eager":
        return _eager_gb(graph, k, pool)
    if strategy != "lazy":
        raise ParameterError(
            f"unknown greedy strategy {strategy!r}; choose 'eager' or 'lazy'"
        )
    return _lazy_gb(graph, k, pool)


def base_gb(
    graph: Graph, k: int, *, strategy: str = "eager"
) -> GroupBetweennessResult:
    """Greedy group-betweenness over the full vertex set."""
    return _greedy_gb(graph, k, list(graph.vertices()), strategy)


def neisky_gb(
    graph: Graph,
    k: int,
    *,
    skyline: Optional[tuple[int, ...]] = None,
    strategy: str = "eager",
) -> GroupBetweennessResult:
    """Greedy group-betweenness restricted to the neighborhood skyline."""
    if skyline is None:
        skyline = filter_refine_sky(graph).skyline
    return _greedy_gb(graph, k, sorted(skyline), strategy)
