"""Vertex and group closeness centrality (Defs. 6–7 of the paper).

``C(u) = n / Σ_{v≠u} d(v, u)`` and
``GC(S) = n / Σ_{v∉S} d(v, S)``.

Disconnected graphs: the literal definitions give 0 (an infinite sum).
Following standard practice for greedy group-closeness solvers (and the
connected datasets of the paper), this module substitutes a finite
penalty of ``n`` for each unreachable distance — an upper bound no true
distance can reach, so reachable structure still orders groups sensibly.
On connected graphs the penalty never fires and the values equal the
paper's definitions exactly.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.adjacency import Graph
from repro.paths.bfs import UNREACHED, bfs_distances, multi_source_distances

__all__ = ["closeness_centrality", "group_closeness", "group_farness"]


def _penalized(d: int, penalty: int) -> int:
    return penalty if d == UNREACHED else d


def closeness_centrality(graph: Graph, u: int) -> float:
    """Vertex closeness ``C(u)`` with the ``n``-penalty convention."""
    n = graph.num_vertices
    if n <= 1:
        return 0.0
    dist = bfs_distances(graph, u)
    total = sum(_penalized(d, n) for v, d in enumerate(dist) if v != u)
    return n / total if total else 0.0


def group_farness(graph: Graph, group: Iterable[int]) -> float:
    """``F(S) = Σ_{v∉S} d(v, S)`` with the ``n``-penalty convention.

    Group closeness maximization is exactly farness minimization, and
    the greedy algorithms reason in farness units; exposing it makes the
    per-round gains testable.
    """
    members = set(group)
    n = graph.num_vertices
    dist = multi_source_distances(graph, members)
    return float(
        sum(_penalized(d, n) for v, d in enumerate(dist) if v not in members)
    )


def group_closeness(graph: Graph, group: Iterable[int]) -> float:
    """Group closeness ``GC(S)`` (Def. 7) with the ``n``-penalty convention."""
    members = set(group)
    n = graph.num_vertices
    if not members or len(members) >= n:
        return 0.0
    farness = group_farness(graph, members)
    return n / farness if farness else 0.0
