"""Centrality measures and the group-maximization applications.

* Vertex measures: closeness, harmonic, betweenness.
* Group measures: ``group_closeness`` (Def. 7), ``group_harmonic``
  (Def. 9), ``group_betweenness`` (Sec. IV-D extension).
* Greedy maximizers: ``base_gc``/``neisky_gc``, ``base_gh``/``neisky_gh``
  and ``base_gb``/``neisky_gb`` — the Base*/NeiSky* pairs differ only in
  the candidate pool, so timing comparisons isolate the skyline pruning.
  Each accepts ``strategy="lazy"`` for the CELF engine
  (:mod:`repro.centrality.lazy_greedy`): identical output, far fewer
  gain evaluations, optional parallel round 0.
"""

from repro.centrality.betweenness import betweenness_centrality, sp_counts_from
from repro.centrality.closeness import (
    closeness_centrality,
    group_closeness,
    group_farness,
)
from repro.centrality.greedy import GainObjective, GreedyResult, greedy_maximize
from repro.centrality.group_betweenness_max import (
    GroupBetweennessResult,
    base_gb,
    group_betweenness,
    neisky_gb,
)
from repro.centrality.group_closeness_max import (
    ClosenessObjective,
    base_gc,
    neisky_gc,
)
from repro.centrality.group_harmonic_max import HarmonicObjective, base_gh, neisky_gh
from repro.centrality.harmonic import group_harmonic, harmonic_centrality
from repro.centrality.lazy_greedy import lazy_greedy_maximize, run_greedy

__all__ = [
    "betweenness_centrality",
    "sp_counts_from",
    "closeness_centrality",
    "group_closeness",
    "group_farness",
    "GainObjective",
    "GreedyResult",
    "greedy_maximize",
    "lazy_greedy_maximize",
    "run_greedy",
    "GroupBetweennessResult",
    "base_gb",
    "group_betweenness",
    "neisky_gb",
    "ClosenessObjective",
    "base_gc",
    "neisky_gc",
    "HarmonicObjective",
    "base_gh",
    "neisky_gh",
    "group_harmonic",
    "harmonic_centrality",
]
