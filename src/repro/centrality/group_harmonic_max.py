"""Group harmonic maximization: ``BaseGH``/Greedy-H vs ``NeiSkyGH``.

Sec. IV-B of the paper.  Same structure as the closeness pair; the gain
weight is the harmonic delta: an improvement from ``old`` to ``new``
contributes ``1/new − 1/old``, and the added vertex itself (``new = 0``)
contributes ``−1/old`` — its term leaves the sum, which is what makes
``GH`` non-monotone.  With an empty group the first round's gain equals
the vertex harmonic centrality exactly, so the driver reproduces
Greedy-H's "seed with the highest harmonic vertex" behaviour without a
special case.

Skyline pruning is justified by Lemma 4 (``v ≤ u`` implies
``GH(S∪{u}) ≥ GH(S∪{v})``).

Both entry points accept ``strategy="lazy"`` to run the CELF engine of
:mod:`repro.centrality.lazy_greedy` (identical output, far fewer gain
evaluations) and, with it, ``workers`` for the parallel round 0.
"""

from __future__ import annotations

from typing import Optional

from repro.centrality.greedy import GreedyResult
from repro.centrality.lazy_greedy import run_greedy
from repro.core.filter_refine import filter_refine_sky
from repro.graph.adjacency import Graph

__all__ = ["HarmonicObjective", "base_gh", "neisky_gh"]


class HarmonicObjective:
    """Harmonic-sum gain weights for group harmonic."""

    name = "group_harmonic"
    #: Specialized CSR gain kernel (see :func:`repro.paths.csr.make_evaluator`).
    csr_kernel = "harmonic"

    def gain_weight(self, old: int, new: int) -> float:
        """Harmonic-sum delta contributed by one improved vertex."""
        old_term = 0.0 if old == -1 else 1.0 / old  # old >= 1 when finite
        if new == 0:
            # The candidate itself joins S: its own term is removed.
            return -old_term
        return 1.0 / new - old_term


def base_gh(
    graph: Graph,
    k: int,
    *,
    strategy: str = "eager",
    workers: int = 1,
    timeout: Optional[float] = None,
    data_plane: str = "auto",
    session=None,
    gain_batch="auto",
) -> GreedyResult:
    """Greedy group-harmonic over the full vertex set (``BaseGH``)."""
    return run_greedy(
        graph,
        k,
        HarmonicObjective(),
        strategy=strategy,
        workers=workers,
        timeout=timeout,
        data_plane=data_plane,
        session=session,
        gain_batch=gain_batch,
    )


def neisky_gh(
    graph: Graph,
    k: int,
    *,
    skyline: Optional[tuple[int, ...]] = None,
    strategy: str = "eager",
    workers: int = 1,
    timeout: Optional[float] = None,
    data_plane: str = "auto",
    session=None,
    gain_batch="auto",
) -> GreedyResult:
    """``NeiSkyGH``: greedy group-harmonic restricted to the skyline."""
    if skyline is None:
        skyline = filter_refine_sky(graph).skyline
    return run_greedy(
        graph,
        k,
        HarmonicObjective(),
        candidates=skyline,
        strategy=strategy,
        workers=workers,
        timeout=timeout,
        data_plane=data_plane,
        session=session,
        gain_batch=gain_batch,
    )
