"""Lazy-greedy (CELF) driver for group-centrality maximization.

Same contract as :func:`repro.centrality.greedy.greedy_maximize` — same
group, same gains, same tie-breaks, bit for bit — with three stacked
optimizations:

1. **Lazy evaluation.**  Marginal gains along the greedy chain are
   non-increasing for both bundled objectives (see
   ``docs/algorithms.md``), so a gain computed in an earlier round is an
   *upper bound* on the candidate's current gain.  The driver keeps a
   max-heap of ``(-gain, vertex, round_tag)`` entries; each round it
   pops the top, re-evaluates it if the tag is stale, pushes it back,
   and stops as soon as the top entry is fresh — every candidate left in
   the heap is bounded above by the winner's exact gain, so it cannot
   win, and most are never re-evaluated at all.  Tie-breaks survive
   because the heap orders equal gains by ascending vertex ID, which is
   exactly the eager scan's first-strict-maximum rule.

2. **CSR kernels.**  Evaluations run on a
   :class:`~repro.paths.csr.CSRTraversal` — flat-array truncated BFS
   with preallocated scratch reused across the whole run — instead of
   the per-call generator machinery of :mod:`repro.paths.truncated`.

3. **Parallel round 0.**  With an empty group every candidate costs a
   full BFS, which is the bulk of a run's work and embarrassingly
   parallel; ``workers > 1`` fans the first round over a process pool in
   chunks (one CSR snapshot shipped per worker, gains returned as flat
   arrays), then rounds ``1..k`` run lazily in-process.  Workers run the
   same kernels on the same snapshot, so the gains — and therefore the
   result — are bitwise independent of worker count and chunking.

4. **Batched lanes** (``gain_batch``).  Evaluations run ``B`` sources
   per vectorized kernel pass (:meth:`~repro.paths.csr.CSRTraversal.
   _batch_scan`) instead of one Python-level BFS per call.  Round 0
   scores the scope in blocks of ``B``; the CELF drain batches
   *speculatively*: when a stale pop needs a re-score, the kernel also
   scores the next ``B-1`` stale heap entries (the likeliest next pops)
   into a round-local cache, and each later stale pop is served from
   that cache.  The heap itself is driven by the exact scalar pop/push
   sequence — stale bounds are never replaced speculatively, and
   ``evaluations`` is charged per *consumed* pop only — so selections,
   gains, ``evaluations`` and ``evaluations_saved`` are bit-for-bit
   identical for every batch size.  Speculative work is visible in
   ``counters.extra``: ``batch_rounds`` (kernel dispatches),
   ``lanes_evaluated`` (total lanes scored) and
   ``lanes_short_circuited`` (speculative lanes the drain never
   consumed — wasted, bounded by ``B-1`` per round).

``evaluations`` counts gain evaluations actually performed;
``evaluations_saved`` is the eager schedule's count over the same pool
minus that, so ``evaluations + evaluations_saved`` always equals the
eager driver's ``evaluations`` for the same inputs.  (The one uncounted
traversal: after a pooled or batched round 0 the winner's update list is
re-derived in-process — eager already charged that candidate's
evaluation, and the recomputation is one BFS against the whole round's
fan-out.)
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

from repro.centrality.greedy import GainObjective, GreedyResult, greedy_maximize
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.parallel.engine import SMALL_GRAPH_EDGES
from repro.paths.csr import (
    CSRTraversal,
    make_batch_evaluator,
    make_evaluator,
    resolve_gain_batch,
)

try:  # pragma: no cover - scalar fallback exercised via monkeypatching
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["lazy_greedy_maximize", "run_greedy"]


def _pooled_round0(
    graph: Graph,
    objective: GainObjective,
    scope: list[int],
    workers: int,
    chunk_size: Optional[int],
    timeout: Optional[float],
    max_retries: int,
    fault_plan,
    extra: Optional[dict],
    data_plane: str = "pickle",
    session=None,
    batch: int = 1,
) -> list[float]:
    """Round-0 gains of ``scope``, fanned over a supervised worker pool.

    Runs under the :class:`~repro.parallel.supervisor.PoolSupervisor`:
    crashed/hung/corrupt workers are retried and, past the retry
    budget, their chunks are recomputed sequentially in-process on a
    state rebuilt from the *same* snapshot the workers got — the gains
    are bitwise identical either way, so recovery never changes the
    group.  On the pickle plane the snapshot ships through the pool
    initializer; on the shm plane workers attach published CSR/pool
    segments and each task carries a
    :class:`~repro.parallel.greedy_worker.GreedySpec`.  A ``session``
    supplies a warm pool and cached segments instead of per-call ones.
    ``batch`` is the gain-batch lane count workers use inside each
    chunk — gains are bitwise identical for any value, so it is purely
    a worker-side execution knob.

    ``extra`` (a ``counters.extra`` dict, or ``None``) receives this
    call's recovery-event deltas and data-plane facts.
    """
    import time as _time
    from hashlib import blake2b
    from pickle import dumps as _dumps

    from repro.parallel.chunks import chunk_ranges, default_chunk_size
    from repro.parallel.greedy_worker import (
        GreedySpec,
        build_greedy_payload,
        build_greedy_state,
        init_greedy_worker,
        pool_context,
        run_gain_chunk,
        validate_gain_chunk,
    )
    from repro.parallel.supervisor import PoolSupervisor, SupervisorConfig

    size = chunk_size or default_chunk_size(len(scope), workers)
    tasks = chunk_ranges(len(scope), size)
    session_label = None
    plane_publish_s = None

    _fb: list = []

    def _fallback_state():
        if not _fb:
            _fb.append(
                build_greedy_state(
                    build_greedy_payload(graph, objective, scope, batch)
                )
            )
        return _fb[0]

    if data_plane == "shm":
        from array import array

        from repro.parallel.shm import ShmDataPlane, buffer_typecode

        owns_plane = session is None
        publish_t0 = _time.perf_counter()
        if owns_plane:
            plane = ShmDataPlane()
            indptr, indices = graph.to_csr()
            graph_refs = {
                "indptr": plane.publish(
                    indptr, buffer_typecode(indptr)
                ),
                "indices": plane.publish(
                    indices, buffer_typecode(indices)
                ),
            }
            supervisor = PoolSupervisor(
                workers=workers,
                initializer=init_greedy_worker,
                initargs=(("shm", graph_refs),),
                config=SupervisorConfig(
                    timeout=timeout, max_retries=max_retries
                ),
                fault_plan=fault_plan,
                mp_context=pool_context(),
            )
            pool_ref = plane.publish(array("q", scope), "q")
            epoch = 1
        else:
            plane = session.plane
            supervisor = session.supervisor()
            session_label = session.note_pooled_call()
            pool_ref = session.cached_segment(
                "gpool", array("q", scope), "q"
            )
            epoch = session.next_epoch()
        # The key must distinguish objectives as well as scopes; the
        # bundled objectives are tiny scalar-holders, so their pickle
        # bytes are a stable identity.
        obj_tag = blake2b(_dumps(objective), digest_size=8).hexdigest()
        spec = GreedySpec(
            epoch=epoch,
            key=(pool_ref.name, obj_tag, batch),
            objective=objective,
            pool=pool_ref,
            batch=batch,
        )
        plane_publish_s = _time.perf_counter() - publish_t0
        events_before = dict(supervisor.events)
        try:
            parts = supervisor.run(
                run_gain_chunk,
                [(spec, lo, hi) for lo, hi in tasks],
                fallback=lambda task: run_gain_chunk(
                    task, _fallback_state()
                ),
                validate=validate_gain_chunk,
            )
        finally:
            if owns_plane:
                supervisor.shutdown()
                plane.close()
        events = {
            key: value - events_before.get(key, 0)
            for key, value in supervisor.events.items()
        }
    else:
        if session is not None:
            session_label = "cold"  # pickle-plane sessions never warm
        payload = build_greedy_payload(graph, objective, scope, batch)
        supervisor = PoolSupervisor(
            workers=workers,
            initializer=init_greedy_worker,
            initargs=(payload,),
            config=SupervisorConfig(
                timeout=timeout, max_retries=max_retries
            ),
            fault_plan=fault_plan,
            mp_context=pool_context(),
        )
        with supervisor:
            parts = supervisor.run(
                run_gain_chunk,
                tasks,
                fallback=lambda task: run_gain_chunk(
                    task, _fallback_state()
                ),
                validate=validate_gain_chunk,
            )
        events = supervisor.events
    if extra is not None:
        for key, value in events.items():
            extra[key] = extra.get(key, 0) + value
        extra["data_plane"] = data_plane
        if session_label is not None:
            extra["parallel_session"] = session_label
        if plane_publish_s is not None:
            extra["plane_publish_s"] = plane_publish_s
    gains: list[float] = []
    for part in parts:
        gains.extend(part)
    return gains


def lazy_greedy_maximize(
    graph: Graph,
    k: int,
    objective: GainObjective,
    *,
    candidates: Optional[Iterable[int]] = None,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    small_graph_edges: int = SMALL_GRAPH_EDGES,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    fault_plan=None,
    counters=None,
    data_plane: str = "auto",
    session=None,
    gain_batch="auto",
) -> GreedyResult:
    """CELF-style greedy maximization; output equals ``greedy_maximize``.

    Parameters beyond the eager driver's:

    workers:
        Worker processes for the round-0 fan-out; ``1`` (the default)
        stays in-process.  Any value yields the identical result.
    chunk_size:
        Candidates per round-0 task; ``None`` targets a few chunks per
        worker.  Purely a scheduling knob.
    small_graph_edges:
        In-process threshold: graphs with fewer edges never pay for a
        pool.  Pass ``0`` to force pooling (tests do).
    timeout / max_retries / fault_plan:
        Supervisor recovery policy and chaos injection for the round-0
        pool, as in :func:`~repro.parallel.engine.parallel_refine_sky`.
        None of them can change the result.
    counters:
        Optional :class:`~repro.core.counters.SkylineCounters`; a
        pooled round 0 records its recovery events under
        ``counters.extra["resilience_*"]`` and data-plane facts under
        ``counters.extra["data_plane"]`` etc.
    data_plane:
        How the CSR snapshot and candidate pool reach round-0 workers
        — ``"pickle"``, ``"shm"`` or ``"auto"``, exactly as in
        :func:`~repro.parallel.engine.parallel_refine_sky`.  Gains are
        bitwise identical on either plane.
    session:
        A warm :class:`~repro.parallel.session.EngineSession` for this
        graph; the round-0 fan-out reuses its pool and published
        segments.  The session's scheduling knobs are authoritative —
        conflicting per-call values raise
        :class:`~repro.errors.ParameterError` (``workers=1``, this
        driver's default, defers to the session's count).
    gain_batch:
        Marginal-gain lanes per batched kernel call (``"auto"``, the
        default, sizes from ``n`` and the pool;
        :func:`~repro.paths.csr.resolve_gain_batch`).  Purely an
        execution knob: the batched drain replays the scalar CELF
        pop/push sequence exactly, so the group, gains, tie-breaks,
        ``evaluations`` and ``evaluations_saved`` are identical for
        every value.  Batch telemetry lands in ``counters.extra``
        (``gain_batch`` / ``batch_rounds`` / ``lanes_evaluated`` /
        ``lanes_short_circuited``).
    """
    from repro.parallel.params import validate_pool_params
    from repro.parallel.shm import resolve_data_plane

    if k < 0:
        raise ParameterError(f"group size k must be >= 0, got {k}")
    if session is not None:
        session.check_open()
        if session.graph is not graph:
            raise ParameterError(
                "this EngineSession was created for a different graph; "
                "sessions pin one published graph snapshot"
            )
        if workers == 1:
            workers = session.workers
        elif workers != session.workers:
            raise ParameterError(
                f"workers={workers} conflicts with the session's "
                f"{session.workers}; the pool size is fixed at session "
                "construction"
            )
        if fault_plan is not None:
            raise ParameterError(
                "fault_plan is fixed at session construction; pass it "
                "to EngineSession instead"
            )
        fault_plan = session.fault_plan
        if timeout is not None and timeout != session.timeout:
            raise ParameterError(
                f"timeout={timeout} conflicts with the session's "
                f"{session.timeout}; the supervisor config is fixed at "
                "session construction"
            )
        timeout = session.timeout
        if max_retries not in (session.max_retries, 2):
            raise ParameterError(
                f"max_retries={max_retries} conflicts with the "
                f"session's {session.max_retries}"
            )
        max_retries = session.max_retries
        if chunk_size is None:
            chunk_size = session.chunk_size
        if data_plane != "auto":
            resolved, _ = resolve_data_plane(data_plane)
            if resolved != session.data_plane:
                raise ParameterError(
                    f"data_plane={data_plane!r} conflicts with the "
                    f"session's {session.data_plane!r}"
                )
        effective_plane = session.data_plane
    else:
        effective_plane, _ = resolve_data_plane(data_plane)
    validate_pool_params(
        workers=workers,
        chunk_size=chunk_size,
        timeout=timeout,
        max_retries=max_retries,
    )
    n = graph.num_vertices
    k = min(k, n)
    if candidates is None:
        pool = list(range(n))
    else:
        pool = sorted(set(candidates))
        for u in pool:
            if not (0 <= u < n):
                raise ParameterError(f"candidate {u} out of range")

    in_group = bytearray(n)
    dist = [-1] * n  # d(v, S); -1 = infinity while S is empty
    group: list[int] = []
    gains: list[float] = []
    evaluations = 0
    eager_evaluations = 0  # what the eager schedule would have spent
    trav = CSRTraversal.from_graph(graph)
    evaluate = make_evaluator(trav, objective)
    batch = resolve_gain_batch(gain_batch, n, len(pool))
    batch_evaluate = (
        make_batch_evaluator(trav, objective) if batch > 1 else None
    )
    if batch_evaluate is None:
        batch = 1
    # The batched kernel indexes the committed distances vectorized, so
    # the batch path maintains an int32 ndarray mirror of `dist` (the
    # scalar kernels keep the list: per-element list access is faster
    # for the one-off winner re-derivations).
    dist_nd = _np.full(n, -1, dtype=_np.int32) if batch > 1 else None
    batch_rounds = 0
    lanes_evaluated = 0
    lanes_short_circuited = 0
    #: CELF heap of (-cached_gain, vertex, round_tag); each not-yet-
    #: chosen candidate appears exactly once.  A tag older than the
    #: current round marks the cached gain as a stale upper bound.
    heap: list[tuple[float, int, int]] = []

    for round_no in range(k):
        best_updates: Optional[list[tuple[int, int]]] = None
        if not heap:
            # (Re)build: first round, or the pool ran dry last round —
            # mirror the eager driver's fallback to all of V \ S.
            scope = [u for u in pool if not in_group[u]]
            if not scope:
                scope = [u for u in range(n) if not in_group[u]]
                if not scope:
                    break
            eager_evaluations += len(scope)
            evaluations += len(scope)
            use_pool = (
                round_no == 0
                and workers > 1
                and len(scope) > 1
                and graph.num_edges >= small_graph_edges
            )
            if use_pool:
                gain_vec = _pooled_round0(
                    graph,
                    objective,
                    scope,
                    workers,
                    chunk_size,
                    timeout,
                    max_retries,
                    fault_plan,
                    None if counters is None else counters.extra,
                    data_plane=effective_plane,
                    session=session,
                    batch=batch,
                )
                # max() keeps the first maximum: smallest-ID tie-break.
                best_idx = max(
                    range(len(scope)), key=gain_vec.__getitem__
                )
                entries = list(zip(scope, gain_vec))
                if batch > 1:
                    batch_rounds += -(-len(scope) // batch)
                    lanes_evaluated += len(scope)
            elif batch > 1:
                # Batched scope scan: gains only; the winner's update
                # list is re-derived below (uncounted), like the pooled
                # path.  max() keeps the first maximum: same tie-break.
                gain_vec = []
                for lo in range(0, len(scope), batch):
                    lane = scope[lo : lo + batch]
                    gain_vec.extend(
                        g for g, _none in batch_evaluate(
                            lane, dist_nd, False
                        )
                    )
                    batch_rounds += 1
                lanes_evaluated += len(scope)
                best_idx = max(
                    range(len(scope)), key=gain_vec.__getitem__
                )
                entries = list(zip(scope, gain_vec))
            else:
                best_idx = -1
                best_gain = float("-inf")
                entries = []
                for u in scope:
                    gain, updates = evaluate(u, dist, True)
                    if gain > best_gain:
                        best_gain = gain
                        best_idx = len(entries)
                        best_updates = updates
                    entries.append((u, gain))
            best_u, best_gain = entries[best_idx]
            heap = [
                (-gain, u, round_no)
                for i, (u, gain) in enumerate(entries)
                if i != best_idx
            ]
            heapq.heapify(heap)
        elif batch > 1:
            # Batched CELF drain.  The heap evolution below is the
            # scalar drain's, verbatim: stale bounds are popped in the
            # same order, re-scored values pushed back one at a time,
            # and `evaluations` charged per consumed pop.  The batching
            # is purely speculative — a cache miss scores the popped
            # candidate *plus* the next B-1 stale uncached heap entries
            # (the likeliest next pops) in one kernel pass, and later
            # pops are served from the round-local cache.  Gains cached
            # mid-round stay valid because `dist` only changes at the
            # commit, after the drain.  Lanes ship gains only
            # (collect=False) — update lists for speculative lanes
            # would be wasted materialization — so the winner's updates
            # are re-derived below, like the pooled round 0's.
            eager_evaluations += len(heap)
            round_cache: dict[int, float] = {}
            while True:
                neg_gain, u, tag = heapq.heappop(heap)
                if tag == round_no:
                    best_u = u
                    best_gain = -neg_gain
                    break
                gain = round_cache.pop(u, None)
                if gain is None:
                    lane = [u]
                    for _ng, v, t in heapq.nsmallest(batch - 1, heap):
                        if t != round_no and v not in round_cache:
                            lane.append(v)
                    results = batch_evaluate(lane, dist_nd, False)
                    batch_rounds += 1
                    lanes_evaluated += len(lane)
                    for v, (g, _none) in zip(lane, results):
                        round_cache[v] = g
                    gain = round_cache.pop(u)
                evaluations += 1
                heapq.heappush(heap, (-gain, u, round_no))
            lanes_short_circuited += len(round_cache)
        else:
            # CELF: pop/re-evaluate/re-push until the top is fresh.
            eager_evaluations += len(heap)
            round_updates: dict[int, list[tuple[int, int]]] = {}
            while True:
                neg_gain, u, tag = heapq.heappop(heap)
                if tag == round_no:
                    best_u = u
                    best_gain = -neg_gain
                    best_updates = round_updates[u]
                    break
                gain, updates = evaluate(u, dist, True)
                evaluations += 1
                round_updates[u] = updates
                heapq.heappush(heap, (-gain, u, round_no))

        if best_updates is None:
            # Pooled/batched round 0 ships gains only; re-derive the
            # winner's update list (uncounted: this candidate's
            # evaluation was already charged above).
            _gain, best_updates = evaluate(best_u, dist, True)
        if dist_nd is None:
            for v, new in best_updates:
                dist[v] = new
        else:
            for v, new in best_updates:
                dist[v] = new
                dist_nd[v] = new
        in_group[best_u] = 1
        group.append(best_u)
        gains.append(best_gain)

    if counters is not None:
        extra = counters.extra
        extra["gain_batch"] = batch
        extra["batch_rounds"] = (
            extra.get("batch_rounds", 0) + batch_rounds
        )
        extra["lanes_evaluated"] = (
            extra.get("lanes_evaluated", 0) + lanes_evaluated
        )
        extra["lanes_short_circuited"] = (
            extra.get("lanes_short_circuited", 0) + lanes_short_circuited
        )
    return GreedyResult(
        group=tuple(group),
        gains=tuple(gains),
        evaluations=evaluations,
        pool_size=len(pool),
        objective=objective.name,
        evaluations_saved=eager_evaluations - evaluations,
        strategy="lazy",
    )


def run_greedy(
    graph: Graph,
    k: int,
    objective: GainObjective,
    *,
    candidates: Optional[Iterable[int]] = None,
    strategy: str = "eager",
    workers: int = 1,
    chunk_size: Optional[int] = None,
    small_graph_edges: int = SMALL_GRAPH_EDGES,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    fault_plan=None,
    counters=None,
    data_plane: str = "auto",
    session=None,
    gain_batch="auto",
) -> GreedyResult:
    """Strategy dispatcher shared by the Base*/NeiSky* entry points.

    ``strategy="eager"`` runs the reference driver; ``"lazy"`` runs the
    CELF engine (identical output).  ``workers`` applies only to the
    lazy strategy's round-0 fan-out — combining it with eager is
    rejected rather than silently ignored — and ``timeout`` /
    ``max_retries`` / ``fault_plan`` / ``counters`` / ``data_plane`` /
    ``session`` configure that fan-out's supervisor and data plane
    (see :func:`lazy_greedy_maximize`).  ``gain_batch`` sets the
    batched-kernel lane count for either strategy; every value yields
    the identical result.
    """
    if strategy == "eager":
        if workers != 1:
            raise ParameterError(
                "workers apply to the lazy strategy; eager greedy is "
                "sequential by definition"
            )
        if session is not None:
            raise ParameterError(
                "sessions drive the pooled lazy engine; eager greedy "
                "is sequential by definition"
            )
        return greedy_maximize(
            graph, k, objective, candidates=candidates,
            gain_batch=gain_batch,
        )
    if strategy != "lazy":
        raise ParameterError(
            f"unknown greedy strategy {strategy!r}; choose 'eager' or 'lazy'"
        )
    return lazy_greedy_maximize(
        graph,
        k,
        objective,
        candidates=candidates,
        workers=workers,
        chunk_size=chunk_size,
        small_graph_edges=small_graph_edges,
        timeout=timeout,
        max_retries=max_retries,
        fault_plan=fault_plan,
        counters=counters,
        data_plane=data_plane,
        session=session,
        gain_batch=gain_batch,
    )
