"""Wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Stopwatch", "time_call"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch, usable as a context manager.

    >>> sw = Stopwatch()
    >>> with sw.measure():
    ...     _ = sum(range(1000))
    >>> sw.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: list = field(default_factory=list)

    @contextmanager
    def measure(self):
        """Context manager: time the enclosed block and record a lap."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            lap = time.perf_counter() - start
            self.elapsed += lap
            self.laps.append(lap)


def time_call(fn: Callable[..., Any], *args, **kwargs) -> tuple[Any, float]:
    """Run ``fn`` once; return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
