"""Peak-memory measurement for the Exp-2 reproduction (Fig. 4).

The paper reports resident memory of C++ processes.  The Python
equivalent that isolates *algorithm* allocations from interpreter noise
is :mod:`tracemalloc`: :func:`measure_peak` runs a callable under a
fresh trace and reports the peak traced allocation, which captures the
data structures each algorithm builds (2-hop lists, bloom filters,
inverted index, counter arrays) — exactly the quantities Fig. 4
compares.  Interpreter baseline and the input graph are excluded, so
absolute MB differ from the paper but the between-algorithm ordering is
preserved.
"""

from __future__ import annotations

import gc
import tracemalloc
from typing import Any, Callable

__all__ = ["measure_peak", "format_bytes"]


def measure_peak(fn: Callable[..., Any], *args, **kwargs) -> tuple[Any, int]:
    """Run ``fn`` and return ``(result, peak_traced_bytes)``.

    Nesting inside another active tracemalloc session is not supported —
    the trace is stopped on exit either way.
    """
    gc.collect()
    tracemalloc.start()
    try:
        result = fn(*args, **kwargs)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (``"3.4 MB"``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} GB"
