"""Deterministic fault injection for the pooled engines.

Chaos testing a process pool is only useful if the chaos is
reproducible: a CI failure under "worker crashed on chunk 3" must
replay identically on a laptop.  This module provides that as data,
not monkeypatching — a :class:`FaultPlan` is a picklable map from
``(chunk_id, attempt)`` to a fault kind, shipped to every worker
through the pool initializer (the supervisor composes it in front of
the engine's own initializer).  At the top of each supervised chunk
the worker consults the installed plan and, if the cell matches,
misbehaves on purpose:

``"crash"``
    ``os._exit(66)`` — the process dies without cleanup, exactly like
    a segfault; the supervisor sees a broken pool.
``"hang"``
    sleep for :attr:`FaultPlan.hang_seconds` — the chunk blows its
    deadline and the supervisor must kill the pool to reclaim it.
``"slow"``
    sleep for :attr:`FaultPlan.slow_seconds`, then compute normally —
    latency jitter that must *not* trigger recovery under a sane
    deadline.
``"corrupt"``
    return :data:`CORRUPT_PAYLOAD` instead of the real result — the
    supervisor's schema validation must reject it.
``"oom"``
    raise :class:`MemoryError` — an in-worker allocation failure; the
    pool survives, the chunk is retried.

Keying on ``(chunk_id, attempt)`` is what makes recovery testable:
``{(3, 0): "crash"}`` crashes chunk 3's first attempt and lets the
retry succeed, while ``{(3, a): "oom" for a in range(9)}`` exhausts
the retry budget and forces the sequential fallback.  Either way the
final skyline/group is bit-for-bit the sequential one — that is the
supervisor's contract, and the chaos suite asserts it.
"""

from __future__ import annotations

import os
import time
from random import Random
from typing import Mapping, Optional

__all__ = [
    "CORRUPT_PAYLOAD",
    "FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "FaultPlan",
    "ServeFaultPlan",
    "active_fault",
    "install_fault_plan",
    "perform_fault",
]

#: Every fault kind a plan may inject.
FAULT_KINDS = ("crash", "hang", "slow", "corrupt", "oom")

#: What a "corrupt" worker returns: a payload no chunk schema accepts.
CORRUPT_PAYLOAD = "\x00corrupt-worker-payload\x00"

#: Returned by :func:`perform_fault` when the caller must substitute
#: :data:`CORRUPT_PAYLOAD` for the real result.
_RETURN_CORRUPT = object()


class FaultPlan:
    """A reproducible schedule of worker faults.

    ``faults`` maps ``(chunk_id, attempt)`` to a kind from
    :data:`FAULT_KINDS`.  Instances are immutable in spirit, cheap to
    pickle (plain dict + two floats) and compare/repr by content so
    test parametrization stays readable.
    """

    __slots__ = ("faults", "slow_seconds", "hang_seconds")

    def __init__(
        self,
        faults: Mapping[tuple[int, int], str],
        *,
        slow_seconds: float = 0.05,
        hang_seconds: float = 30.0,
    ):
        for cell, kind in faults.items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} at {cell}; choose "
                    f"from {FAULT_KINDS}"
                )
        self.faults = dict(faults)
        self.slow_seconds = slow_seconds
        self.hang_seconds = hang_seconds

    @classmethod
    def single(cls, kind: str, chunk_id: int = 0, attempt: int = 0, **kw):
        """A plan injecting one fault into one attempt of one chunk."""
        return cls({(chunk_id, attempt): kind}, **kw)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        max_chunks: int = 64,
        max_attempts: int = 2,
        rate: float = 0.25,
        kinds: tuple[str, ...] = ("crash", "slow", "corrupt", "oom"),
        **kw,
    ) -> "FaultPlan":
        """A random-but-reproducible plan drawn from ``seed``.

        Hangs are excluded by default: property tests sweep many seeds
        and a hang costs a full deadline each time it fires.
        """
        rng = Random(seed)
        faults = {
            (chunk, attempt): rng.choice(kinds)
            for chunk in range(max_chunks)
            for attempt in range(max_attempts)
            if rng.random() < rate
        }
        return cls(faults, **kw)

    def fault_for(self, chunk_id: int, attempt: int) -> Optional[str]:
        """The fault scheduled for this ``(chunk, attempt)`` cell, if any."""
        return self.faults.get((chunk_id, attempt))

    # Pickle support for __slots__ (no __dict__ to fall back on).
    def __getstate__(self):
        return (self.faults, self.slow_seconds, self.hang_seconds)

    def __setstate__(self, state):
        self.faults, self.slow_seconds, self.hang_seconds = state

    def __eq__(self, other):
        return (
            isinstance(other, FaultPlan)
            and self.__getstate__() == other.__getstate__()
        )

    def __repr__(self):
        return (
            f"FaultPlan({self.faults!r}, "
            f"slow_seconds={self.slow_seconds}, "
            f"hang_seconds={self.hang_seconds})"
        )


# ----------------------------------------------------------------------
# Serve-level faults (the serving layer's chaos harness)
# ----------------------------------------------------------------------

#: Fault kinds the *serving* layer can inject, one level above the
#: worker-pool kinds: these fire on the engine thread, at the moment a
#: query is dispatched onto a graph's warm session.
SERVE_FAULT_KINDS = (
    "engine-exception",
    "session-poison",
    "hang",
    "slow",
    "shm-attach-failure",
)


class ServeFaultPlan:
    """A reproducible schedule of serving-layer faults.

    Where :class:`FaultPlan` keys on ``(chunk_id, attempt)`` inside one
    pooled call, a serve plan keys on ``(graph, dispatch_index)`` —
    the *n*-th time the engine thread dispatches a query for ``graph``
    (retries consume indices too, so a fault on attempt 0 followed by a
    clean retry is the cell ``(g, 0): kind`` with ``(g, 1)`` absent).
    ``(graph, None)`` is a wildcard matching every dispatch of that
    graph — the way to model a persistently broken graph.

    Kinds (performed by the serving supervisor, on the engine thread):

    ``"engine-exception"``
        raise ``RuntimeError`` before the query runs — an uncaught
        engine bug.
    ``"session-poison"``
        tear the graph's warm :class:`~repro.parallel.session.
        EngineSession` down out from under the query, then raise — a
        leaked/poisoned session the supervisor must rebuild.
    ``"hang"``
        sleep :attr:`hang_seconds` before running — meant to blow the
        per-query deadline so the watchdog abandons the query.
    ``"slow"``
        sleep :attr:`slow_seconds`, then run normally — latency jitter
        that must *not* trip recovery under a sane deadline.
    ``"shm-attach-failure"``
        raise ``OSError`` as a worker failing to map a published
        segment would — infrastructure failure, session rebuilt.
    """

    __slots__ = ("faults", "slow_seconds", "hang_seconds")

    def __init__(
        self,
        faults: Mapping[tuple, str],
        *,
        slow_seconds: float = 0.05,
        hang_seconds: float = 5.0,
    ):
        for cell, kind in faults.items():
            if kind not in SERVE_FAULT_KINDS:
                raise ValueError(
                    f"unknown serve fault kind {kind!r} at {cell}; "
                    f"choose from {SERVE_FAULT_KINDS}"
                )
        self.faults = dict(faults)
        self.slow_seconds = slow_seconds
        self.hang_seconds = hang_seconds

    @classmethod
    def single(cls, kind: str, graph: str, index: int = 0, **kw):
        """A plan injecting one fault into one dispatch of one graph."""
        return cls({(graph, index): kind}, **kw)

    @classmethod
    def always(cls, kind: str, graph: str, **kw):
        """A plan faulting *every* dispatch of ``graph`` (wildcard cell)."""
        return cls({(graph, None): kind}, **kw)

    @classmethod
    def seeded(
        cls,
        seed: int,
        graphs,
        *,
        max_calls: int = 128,
        rate: float = 0.15,
        kinds: tuple[str, ...] = (
            "engine-exception",
            "session-poison",
            "slow",
            "shm-attach-failure",
        ),
        **kw,
    ) -> "ServeFaultPlan":
        """A random-but-reproducible plan drawn from ``seed``.

        Hangs are excluded by default for the same reason as in
        :meth:`FaultPlan.seeded`: each one costs a full per-query
        deadline.
        """
        # Validate the whole menu up front: sampling might never draw a
        # typo'd kind into a cell, and a bad plan must fail every time.
        for kind in kinds:
            if kind not in SERVE_FAULT_KINDS:
                raise ValueError(
                    f"unknown serve fault kind {kind!r}; "
                    f"choose from {SERVE_FAULT_KINDS}"
                )
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        rng = Random(seed)
        faults = {
            (graph, index): rng.choice(kinds)
            for graph in graphs
            for index in range(max_calls)
            if rng.random() < rate
        }
        return cls(faults, **kw)

    def fault_for(self, graph: str, index: int) -> Optional[str]:
        """The fault scheduled for this dispatch, if any (wildcard-aware)."""
        kind = self.faults.get((graph, index))
        if kind is None:
            kind = self.faults.get((graph, None))
        return kind

    def __getstate__(self):
        return (self.faults, self.slow_seconds, self.hang_seconds)

    def __setstate__(self, state):
        self.faults, self.slow_seconds, self.hang_seconds = state

    def __eq__(self, other):
        return (
            isinstance(other, ServeFaultPlan)
            and self.__getstate__() == other.__getstate__()
        )

    def __repr__(self):
        return (
            f"ServeFaultPlan({self.faults!r}, "
            f"slow_seconds={self.slow_seconds}, "
            f"hang_seconds={self.hang_seconds})"
        )


#: The plan installed in *this* process (worker-side module state,
#: populated by the supervisor's composed pool initializer).
_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` for :func:`active_fault` lookups (``None`` clears)."""
    global _PLAN
    _PLAN = plan


def active_fault(chunk_id: int, attempt: int) -> Optional[str]:
    """The fault the installed plan schedules for this cell, if any."""
    if _PLAN is None:
        return None
    return _PLAN.fault_for(chunk_id, attempt)


def perform_fault(kind: str):
    """Misbehave as ``kind`` dictates; see the module docstring.

    Returns :data:`_RETURN_CORRUPT` when the caller must return
    :data:`CORRUPT_PAYLOAD` in place of the real result, else ``None``
    (for ``"slow"``, after sleeping — the chunk then runs normally).
    """
    if kind == "crash":
        os._exit(66)
    if kind == "hang":
        time.sleep(_PLAN.hang_seconds if _PLAN else 30.0)
        return None
    if kind == "slow":
        time.sleep(_PLAN.slow_seconds if _PLAN else 0.05)
        return None
    if kind == "corrupt":
        return _RETURN_CORRUPT
    if kind == "oom":
        raise MemoryError("injected allocation failure (fault plan)")
    raise ValueError(f"unknown fault kind {kind!r}")


def wants_corrupt_return(token) -> bool:
    """``True`` iff :func:`perform_fault` asked for a corrupt payload."""
    return token is _RETURN_CORRUPT
