"""Report collection for the figure/table benchmarks.

Each benchmark module reproduces one paper artifact (a figure or a
table).  A module-level :class:`FigureReport` accumulates rows as the
parametrized benchmark tests run; ``benchmarks/conftest.py`` renders
every populated report at the end of the session and writes it under
``benchmarks/reports/``, so a full ``pytest benchmarks/ --benchmark-only``
run leaves one text file per paper artifact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.harness.table import format_table

__all__ = ["FigureReport"]


@dataclass
class FigureReport:
    """Accumulates rows for one paper figure/table and renders them."""

    artifact: str  # e.g. "Figure 3"
    title: str
    headers: Sequence[str]
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one result row (cells follow ``headers`` order)."""
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append a free-text note rendered under the table.

        Idempotent: benchmarks add their note from whichever
        parametrized test happens to complete a row last, which can
        fire more than once.
        """
        if note not in self.notes:
            self.notes.append(note)

    def render(self) -> str:
        """The complete report as text."""
        header = f"== {self.artifact}: {self.title} =="
        body = format_table(self.headers, self.rows)
        parts = [header, body]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts) + "\n"

    def write(self, directory: str) -> str:
        """Write the rendered report into ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        slug = (
            self.artifact.lower().replace(" ", "_").replace("/", "-")
        )
        path = os.path.join(directory, f"{slug}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())
        return path
