"""Measurement harness: timing, memory probes and report rendering."""

from repro.harness.benchjson import (
    bench_entry,
    load_bench_json,
    merge_entries,
    write_bench_json,
)
from repro.harness.memory import format_bytes, measure_peak
from repro.harness.runner import FigureReport
from repro.harness.table import format_table
from repro.harness.timer import Stopwatch, time_call

__all__ = [
    "bench_entry",
    "load_bench_json",
    "merge_entries",
    "write_bench_json",
    "format_bytes",
    "measure_peak",
    "FigureReport",
    "format_table",
    "Stopwatch",
    "time_call",
]
