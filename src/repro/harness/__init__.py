"""Measurement harness: timing, memory probes and report rendering."""

from repro.harness.memory import format_bytes, measure_peak
from repro.harness.runner import FigureReport
from repro.harness.table import format_table
from repro.harness.timer import Stopwatch, time_call

__all__ = [
    "format_bytes",
    "measure_peak",
    "FigureReport",
    "format_table",
    "Stopwatch",
    "time_call",
]
