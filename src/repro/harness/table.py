"""Plain-text table rendering for benchmark reports.

The benchmark suite regenerates each of the paper's tables/figures as an
ASCII table; this module is the single formatter so every report looks
the same.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def _render(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` with aligned columns.

    Numbers are right-aligned and thousands-separated; everything else
    is left-aligned.  An optional ``title`` line is prepended.
    """
    rendered = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str], original: Sequence[Any]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            numeric = isinstance(original[i], (int, float))
            parts.append(
                cell.rjust(widths[i]) if numeric else cell.ljust(widths[i])
            )
        return "  ".join(parts).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers, [""] * len(headers)))
    lines.append(sep)
    for raw, row in zip(rows, rendered):
        lines.append(fmt_row(row, raw))
    return "\n".join(lines)
