"""Machine-readable benchmark trajectory: ``BENCH_skyline.json``.

The figure reports under ``benchmarks/reports/`` are for humans; this
module writes the same measurements as one JSON document at the repo
root so tooling (CI smoke checks, the README table renderer, future
regression tracking) can consume them without parsing tables.

Document shape (``schema`` version 1)::

    {
      "schema": 1,
      "entries": [
        {
          "bench": "parallel_speedup",        # producing benchmark
          "instance": "wikitalk_sim",          # registry dataset name
          "algorithm": "FilterRefineSkyBitset",
          "wall_s": 0.0123,                    # end-to-end wall time
          "refine_s": 0.0075,                  # refine phase only (opt.)
          "counters": {"pair_tests": ...},     # as_dict() sums (opt.)
          "extra": {"speedup_vs_bloom": 3.5}   # free-form (opt.)
        },
        ...
      ]
    }

Entries are keyed by ``(bench, instance, algorithm)``: merging a new
batch replaces entries with matching keys and keeps the rest, so
benchmark modules can each contribute their slice without clobbering
one another, and re-runs update in place.  The entry list is kept
sorted by key and floats are written as-is — the file is deterministic
for deterministic measurements, and diff-friendly either way.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Iterable, Optional

__all__ = [
    "SCHEMA_VERSION",
    "bench_entry",
    "entry_key",
    "load_bench_json",
    "merge_entries",
    "write_bench_json",
]

SCHEMA_VERSION = 1

#: Default document name, expected at the repository root.
BENCH_FILENAME = "BENCH_skyline.json"


def bench_entry(
    *,
    bench: str,
    instance: str,
    algorithm: str,
    wall_s: float,
    refine_s: Optional[float] = None,
    counters: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict:
    """One measurement record, in the schema's entry shape."""
    entry: dict[str, Any] = {
        "bench": bench,
        "instance": instance,
        "algorithm": algorithm,
        "wall_s": wall_s,
    }
    if refine_s is not None:
        entry["refine_s"] = refine_s
    if counters:
        entry["counters"] = dict(counters)
    if extra:
        entry["extra"] = dict(extra)
    return entry


def entry_key(entry: dict) -> tuple[str, str, str]:
    """The identity under which an entry merges: bench/instance/algorithm."""
    return (entry["bench"], entry["instance"], entry["algorithm"])


def merge_entries(
    existing: Iterable[dict], new: Iterable[dict]
) -> list[dict]:
    """New entries replace same-key old ones; the rest carry over, sorted."""
    merged = {entry_key(e): e for e in existing}
    for e in new:
        merged[entry_key(e)] = e
    return [merged[k] for k in sorted(merged)]


def load_bench_json(path: str) -> list[dict]:
    """The entry list of an existing document (``[]`` if absent/alien).

    A document with an unexpected schema version is treated as absent
    rather than an error: the writer will replace it wholesale, which
    is the only sane upgrade path for a generated artifact.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return []
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
        return []
    entries = doc.get("entries", [])
    return entries if isinstance(entries, list) else []


def write_bench_json(path: str, entries: Iterable[dict]) -> list[dict]:
    """Merge ``entries`` into the document at ``path``; returns the result.

    The merge-then-replace is atomic (temp file + ``os.replace`` in the
    target directory), so a crashed benchmark run never leaves a
    half-written document behind.
    """
    merged = merge_entries(load_bench_json(path), entries)
    doc = {"schema": SCHEMA_VERSION, "entries": merged}
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".bench_json_", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return merged
