"""Machine-readable benchmark trajectory: ``BENCH_skyline.json``.

The figure reports under ``benchmarks/reports/`` are for humans; this
module writes the same measurements as one JSON document at the repo
root so tooling (CI smoke checks, the README table renderer, future
regression tracking) can consume them without parsing tables.

Document shape (``schema`` version 1)::

    {
      "schema": 1,
      "entries": [
        {
          "bench": "parallel_speedup",        # producing benchmark
          "instance": "wikitalk_sim",          # registry dataset name
          "algorithm": "FilterRefineSkyBitset",
          "wall_s": 0.0123,                    # end-to-end wall time
          "refine_s": 0.0075,                  # refine phase only (opt.)
          "counters": {"pair_tests": ...},     # as_dict() sums (opt.)
          "extra": {"speedup_vs_bloom": 3.5}   # free-form (opt.)
        },
        ...
      ]
    }

Entries are keyed by ``(bench, instance, algorithm)``: merging a new
batch replaces entries with matching keys and keeps the rest, so
benchmark modules can each contribute their slice without clobbering
one another, and re-runs update in place.  The entry list is kept
sorted by key and floats are written as-is — the file is deterministic
for deterministic measurements, and diff-friendly either way.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Iterable, Optional

__all__ = [
    "SCHEMA_VERSION",
    "bench_entry",
    "entry_key",
    "load_bench_json",
    "merge_entries",
    "validate_entry",
    "validate_file",
    "write_bench_json",
]

SCHEMA_VERSION = 1

#: Default document name, expected at the repository root.
BENCH_FILENAME = "BENCH_skyline.json"


def bench_entry(
    *,
    bench: str,
    instance: str,
    algorithm: str,
    wall_s: float,
    refine_s: Optional[float] = None,
    counters: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict:
    """One measurement record, in the schema's entry shape."""
    entry: dict[str, Any] = {
        "bench": bench,
        "instance": instance,
        "algorithm": algorithm,
        "wall_s": wall_s,
    }
    if refine_s is not None:
        entry["refine_s"] = refine_s
    if counters:
        entry["counters"] = dict(counters)
    if extra:
        entry["extra"] = dict(extra)
    return entry


def entry_key(entry: dict) -> tuple[str, str, str]:
    """The identity under which an entry merges: bench/instance/algorithm."""
    return (entry["bench"], entry["instance"], entry["algorithm"])


def merge_entries(
    existing: Iterable[dict], new: Iterable[dict]
) -> list[dict]:
    """New entries replace same-key old ones; the rest carry over, sorted."""
    merged = {entry_key(e): e for e in existing}
    for e in new:
        merged[entry_key(e)] = e
    return [merged[k] for k in sorted(merged)]


def load_bench_json(path: str) -> list[dict]:
    """The entry list of an existing document (``[]`` if absent/alien).

    A document with an unexpected schema version is treated as absent
    rather than an error: the writer will replace it wholesale, which
    is the only sane upgrade path for a generated artifact.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return []
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA_VERSION:
        return []
    entries = doc.get("entries", [])
    return entries if isinstance(entries, list) else []


#: Entry keys the schema defines; anything else is a writer bug.
_REQUIRED_KEYS = ("bench", "instance", "algorithm")
_OPTIONAL_KEYS = ("refine_s", "counters", "extra")
_KNOWN_KEYS = frozenset(_REQUIRED_KEYS + ("wall_s",) + _OPTIONAL_KEYS)


def validate_entry(entry: Any, where: str = "entry") -> list[str]:
    """Schema problems of one entry, as human-readable strings.

    Empty list means valid.  ``where`` prefixes each message so
    :func:`validate_file` can point at the offending list index.
    """
    problems: list[str] = []
    if not isinstance(entry, dict):
        return [f"{where}: not an object"]
    for key in _REQUIRED_KEYS:
        value = entry.get(key)
        if not isinstance(value, str) or not value:
            problems.append(f"{where}: {key!r} must be a non-empty str")
    wall = entry.get("wall_s")
    if not isinstance(wall, (int, float)) or isinstance(wall, bool) or (
        wall != wall or wall < 0
    ):
        problems.append(f"{where}: 'wall_s' must be a number >= 0")
    refine = entry.get("refine_s")
    if refine is not None and (
        not isinstance(refine, (int, float))
        or isinstance(refine, bool)
        or refine != refine
        or refine < 0
    ):
        problems.append(f"{where}: 'refine_s' must be a number >= 0")
    for key in ("counters", "extra"):
        if key in entry and not isinstance(entry[key], dict):
            problems.append(f"{where}: {key!r} must be an object")
    unknown = set(entry) - _KNOWN_KEYS
    if unknown:
        problems.append(
            f"{where}: unknown keys {sorted(unknown)}"
        )
    return problems


def validate_file(path: str) -> list[str]:
    """Schema problems of a whole document (``[]`` means valid).

    Checks the envelope (``schema`` version, ``entries`` list), every
    entry via :func:`validate_entry`, and key uniqueness — duplicate
    ``(bench, instance, algorithm)`` keys mean a writer bypassed
    :func:`merge_entries`.  CI's smoke step calls this after the bench
    modules write, so a malformed document fails the build instead of
    silently poisoning the README table renderer.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        return [f"unreadable: {exc}"]
    except ValueError as exc:
        return [f"not JSON: {exc}"]
    if not isinstance(doc, dict):
        return ["document is not an object"]
    problems: list[str] = []
    if doc.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema must be {SCHEMA_VERSION}, got {doc.get('schema')!r}"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        problems.append("'entries' must be a list")
        return problems
    unknown = set(doc) - {"schema", "entries"}
    if unknown:
        problems.append(f"unknown document keys {sorted(unknown)}")
    seen: dict[tuple, int] = {}
    for i, entry in enumerate(entries):
        entry_problems = validate_entry(entry, where=f"entries[{i}]")
        problems.extend(entry_problems)
        if not entry_problems:
            key = entry_key(entry)
            if key in seen:
                problems.append(
                    f"entries[{i}]: duplicate key {key} "
                    f"(first at entries[{seen[key]}])"
                )
            else:
                seen[key] = i
    return problems


def write_bench_json(path: str, entries: Iterable[dict]) -> list[dict]:
    """Merge ``entries`` into the document at ``path``; returns the result.

    The merge-then-replace is atomic (temp file + ``os.replace`` in the
    target directory), so a crashed benchmark run never leaves a
    half-written document behind.
    """
    merged = merge_entries(load_bench_json(path), entries)
    doc = {"schema": SCHEMA_VERSION, "entries": merged}
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".bench_json_", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return merged
