"""Resumable benchmark runs: an atomic journal of completed cells.

A multi-hour sweep (fig10–12 scalability, the CLI ``sweep`` command)
is a grid of ``(dataset, algorithm, trial)`` cells.  Dying at cell 7
of 9 must not cost the first six: drivers journal each finished cell
into a small JSON document, and a restarted run skips every cell the
journal already holds — reusing the recorded measurements so the final
report equals the uninterrupted one.

The write is crash-safe the same way ``BENCH_skyline.json`` is
(temp file + ``os.replace`` in the target directory): a run killed
mid-write leaves either the previous journal or the new one, never a
torn file.  One record per completed cell, written *after* the cell's
work — a kill can lose at most the in-flight cell.

Document shape (``schema`` version 1)::

    {
      "schema": 1,
      "cells": [
        {
          "dataset": "wikitalk_sim",
          "algorithm": "filter_refine",
          "trial": 0,
          "wall_s": 12.7,            # optional measurement
          "extra": {"skyline_size": 3021}   # optional free-form
        },
        ...
      ]
    }
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional

from repro.errors import ParameterError

__all__ = ["CheckpointJournal", "CHECKPOINT_SCHEMA_VERSION"]

CHECKPOINT_SCHEMA_VERSION = 1

Cell = tuple[str, str, int]


def _atomic_write_json(path: str, doc: dict) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=".checkpoint_", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CheckpointJournal:
    """Journal of completed ``(dataset, algorithm, trial)`` cells.

    Missing file → empty journal (first run).  An unreadable or
    alien-schema file raises :class:`~repro.errors.ParameterError`
    instead of being silently discarded: a checkpoint the user pointed
    at is *their* data, and clobbering it on a typo would defeat the
    whole point of resumability.
    """

    def __init__(self, path: str):
        self.path = path
        self._cells: dict[Cell, dict] = {}
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return
        except (OSError, ValueError) as exc:
            raise ParameterError(
                f"checkpoint file {self.path!r} is not readable JSON: {exc}"
            ) from exc
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != CHECKPOINT_SCHEMA_VERSION
            or not isinstance(doc.get("cells"), list)
        ):
            raise ParameterError(
                f"checkpoint file {self.path!r} is not a schema-"
                f"{CHECKPOINT_SCHEMA_VERSION} checkpoint journal"
            )
        for record in doc["cells"]:
            try:
                key = (
                    str(record["dataset"]),
                    str(record["algorithm"]),
                    int(record["trial"]),
                )
            except (TypeError, KeyError, ValueError) as exc:
                raise ParameterError(
                    f"checkpoint file {self.path!r} holds a malformed "
                    f"cell record: {record!r}"
                ) from exc
            self._cells[key] = dict(record)

    # -- queries -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def is_done(self, dataset: str, algorithm: str, trial: int) -> bool:
        """``True`` iff this cell is already journaled as completed."""
        return (dataset, algorithm, int(trial)) in self._cells

    def get(
        self, dataset: str, algorithm: str, trial: int
    ) -> Optional[dict]:
        """The recorded cell (a copy), or ``None`` when not journaled."""
        record = self._cells.get((dataset, algorithm, int(trial)))
        return None if record is None else dict(record)

    def cells(self) -> list[dict]:
        """All records, sorted by ``(dataset, algorithm, trial)`` key."""
        return [dict(self._cells[k]) for k in sorted(self._cells)]

    # -- mutation ------------------------------------------------------
    def mark_done(
        self,
        dataset: str,
        algorithm: str,
        trial: int,
        *,
        wall_s: Optional[float] = None,
        **extra: Any,
    ) -> dict:
        """Journal one completed cell and flush atomically to disk.

        Re-marking an existing cell replaces it (a deliberate re-run
        updates in place).  Returns the stored record.
        """
        record: dict[str, Any] = {
            "dataset": dataset,
            "algorithm": algorithm,
            "trial": int(trial),
        }
        if wall_s is not None:
            record["wall_s"] = float(wall_s)
        if extra:
            record["extra"] = dict(extra)
        self._cells[(dataset, algorithm, int(trial))] = record
        self.flush()
        return dict(record)

    def flush(self) -> None:
        """Write the journal to :attr:`path` (temp file + atomic replace)."""
        doc = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "cells": self.cells(),
        }
        _atomic_write_json(self.path, doc)
