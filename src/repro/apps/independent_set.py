"""Independent-set reductions via neighborhood inclusion.

The paper's introduction motivates neighborhood inclusion with the
maximum-independent-set reduction used by reducing-peeling solvers
(refs [4], [5]): if ``u`` dominates ``v`` over an edge
(``N[v] ⊆ N[u]``), then some maximum independent set avoids ``u`` — any
solution containing ``u`` can swap it for ``v`` — so ``u`` can be
deleted outright.  This module implements that pipeline:

* :func:`reduce_graph` — exhaustively apply three classic safe rules
  (isolated-vertex, pendant-vertex, neighborhood domination) and return
  the kernel plus the vertices already decided;
* :func:`near_maximum_independent_set` — reductions + greedy min-degree
  completion on the kernel (the reducing-peeling heuristic);
* :func:`exact_maximum_independent_set` — exact solution for small
  graphs via complement-clique branch and bound, used as the test
  oracle and for kernels that shrink far enough.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph

__all__ = [
    "reduce_graph",
    "near_maximum_independent_set",
    "exact_maximum_independent_set",
    "is_independent_set",
]


def is_independent_set(graph: Graph, vertices) -> bool:
    """``True`` iff no two of ``vertices`` are adjacent."""
    members = sorted(set(vertices))
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if graph.has_edge(u, v):
                return False
    return True


def reduce_graph(graph: Graph) -> tuple[set[int], set[int]]:
    """Apply safe MIS reductions; return ``(taken, removed)``.

    ``taken`` are vertices forced *into* some maximum independent set;
    ``removed`` are vertices excluded without loss (their neighbors'
    fate may still be open).  The remaining kernel is
    ``V − taken − N(taken) − removed``.

    Rules, applied to exhaustion:

    1. **isolated** — take it;
    2. **pendant** — take a degree-1 vertex, discard its neighbor;
    3. **domination** — if ``(u, v) ∈ E`` and ``N[v] ⊆ N[u]``, delete
       ``u`` (the dominator) — the rule from the paper's introduction.
    """
    adj = {u: set(graph.neighbors(u)) for u in graph.vertices()}
    taken: set[int] = set()
    removed: set[int] = set()

    def delete(u: int) -> None:
        for w in adj[u]:
            adj[w].discard(u)
        del adj[u]

    changed = True
    while changed:
        changed = False
        for u in list(adj):
            if u not in adj:
                continue
            degree = len(adj[u])
            if degree == 0:
                taken.add(u)
                delete(u)
                changed = True
            elif degree == 1:
                (neighbor,) = adj[u]
                taken.add(u)
                removed.add(neighbor)
                delete(neighbor)
                delete(u)
                changed = True
        # Domination sweep: u deletable if some neighbor v has
        # N[v] ⊆ N[u] within the current (reduced) graph.
        for u in list(adj):
            if u not in adj:
                continue
            adj_u = adj[u]
            for v in list(adj_u):
                # N[v] ⊆ N[u]  ⟺  N(v) − {u} ⊆ N(u) given the edge.
                if adj[v] - {u} <= adj_u:
                    removed.add(u)
                    delete(u)
                    changed = True
                    break
    return taken, removed


def near_maximum_independent_set(graph: Graph) -> set[int]:
    """Reducing-peeling heuristic independent set (maximal, often large).

    Applies :func:`reduce_graph`, then repeatedly takes a minimum-degree
    kernel vertex and discards its neighbors.
    """
    taken, removed = reduce_graph(graph)
    blocked = set(removed)
    for u in taken:
        blocked.update(graph.neighbors(u))
    adj = {
        u: {
            v
            for v in graph.neighbors(u)
            if v not in blocked and v not in taken
        }
        for u in graph.vertices()
        if u not in blocked and u not in taken
    }

    def delete(u: int) -> None:
        for w in adj[u]:
            adj[w].discard(u)
        del adj[u]

    while adj:
        u = min(adj, key=lambda x: (len(adj[x]), x))
        taken.add(u)
        for w in list(adj[u]):
            delete(w)
        delete(u)
    assert is_independent_set(graph, taken)
    return taken


def exact_maximum_independent_set(graph: Graph) -> set[int]:
    """Exact MIS via branch and bound (small graphs only).

    Standard branching on a max-degree vertex with the trivial
    ``|I| + |remaining|`` bound; exponential — the oracle for tests and
    for kernels below a few dozen vertices.
    """
    adj = {u: set(graph.neighbors(u)) for u in graph.vertices()}
    best: set[int] = set()

    def search(current: set[int], alive: dict[int, set[int]]) -> None:
        nonlocal best
        if len(current) + len(alive) <= len(best):
            return
        if not alive:
            if len(current) > len(best):
                best = set(current)
            return
        u = max(alive, key=lambda x: (len(alive[x]), -x))
        # Branch 1: take u (drop u and its neighbors).
        kept = {
            v: alive[v] - alive[u] - {u}
            for v in alive
            if v != u and v not in alive[u]
        }
        search(current | {u}, kept)
        # Branch 2: discard u.
        without = {v: alive[v] - {u} for v in alive if v != u}
        search(current, without)

    search(set(), adj)
    return best
