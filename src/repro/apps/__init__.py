"""Further applications of neighborhood inclusion (paper Sec. I refs).

* :mod:`repro.apps.independent_set` — the reducing-peeling MIS pipeline
  whose domination rule is the introduction's first motivating use of
  neighborhood inclusion.
"""

from repro.apps.independent_set import (
    exact_maximum_independent_set,
    is_independent_set,
    near_maximum_independent_set,
    reduce_graph,
)

__all__ = [
    "exact_maximum_independent_set",
    "is_independent_set",
    "near_maximum_independent_set",
    "reduce_graph",
]
