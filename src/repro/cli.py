"""Command-line interface: ``repro-sky`` / ``python -m repro``.

Subcommands mirror the paper's three workloads:

* ``datasets`` — list the registry.
* ``skyline``  — compute a neighborhood skyline with any algorithm.
* ``group``    — greedy group-centrality maximization (closeness or
  harmonic), with or without skyline pruning.
* ``clique``   — maximum clique / top-k maximum cliques, with or
  without skyline pruning.
* ``stats``    — structural statistics (degrees, triangles, clustering,
  assortativity, diameter bound).
* ``sweep``    — a datasets × algorithms × trials benchmark grid with
  optional checkpointing (``--checkpoint``) and resume (``--resume``):
  a killed sweep restarts where it left off and produces the same
  final report as an uninterrupted one.
* ``serve``    — skyline-as-a-service: an asyncio HTTP server hosting
  named graphs (each behind one warm engine session) and routing
  skyline/group/clique queries through a bounded priority queue with
  per-request deadlines and 429 backpressure (see docs/serving.md).

Graphs come either from the registry (``--dataset``) or from an edge
list on disk (``--edge-list``, ``#`` comments, 0-based IDs).

Ctrl-C is handled cleanly: pooled workers are terminated (the engines
run under the :class:`~repro.parallel.supervisor.PoolSupervisor`, whose
context manager kills the pool on any exit), partial results are
discarded, any checkpoint written so far is kept, and the process exits
with the conventional code 130 — no multiprocessing traceback spray.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.centrality import base_gc, base_gh, neisky_gc, neisky_gh
from repro.clique import base_topk_mcc, mc_brb, neisky_mc, neisky_topk_mcc
from repro.core import ALGORITHMS, SkylineCounters, neighborhood_skyline
from repro.core.result import SkylineResult
from repro.errors import ParameterError, ReproError
from repro.harness.checkpoint import CheckpointJournal
from repro.parallel import parallel_refine_sky, validate_pool_params
from repro.graph.adjacency import Graph
from repro.graph.io import load_graph
from repro.graph.stats import graph_stats
from repro.harness.table import format_table
from repro.workloads import load, names, spec

__all__ = ["main", "build_parser"]


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", help="named dataset from the registry"
    )
    source.add_argument(
        "--edge-list",
        help=(
            "path to a graph file: whitespace edge-list text or a "
            "binary snapshot from 'convert' (format auto-detected)"
        ),
    )


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the skyline refine phase; N > 1 uses "
            "the parallel engine (identical output, see docs)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-chunk deadline of the pool supervisor; a hung or "
            "crashed worker chunk is retried and, past its retry "
            "budget, recomputed in-process (default: supervisor's)"
        ),
    )
    parser.add_argument(
        "--data-plane",
        default="auto",
        choices=("auto", "shm", "pickle"),
        help=(
            "how graph data reaches pooled workers: shm publishes "
            "shared-memory segments workers attach zero-copy, pickle "
            "ships a payload per process; auto (default) prefers shm "
            "and falls back to pickle when shared memory or numpy is "
            "unavailable — identical results either way"
        ),
    )


def _validated_workers(args: argparse.Namespace) -> int:
    workers = args.workers
    if workers < 1:
        raise ParameterError(
            f"--workers must be a positive integer, got {workers}"
        )
    validate_pool_params(timeout=getattr(args, "timeout", None))
    return workers


def _parse_gain_batch(value: str):
    """``--gain-batch`` parser: ``"auto"`` or a positive lane count.

    Validation proper happens at the API boundary
    (:func:`repro.paths.csr.validate_gain_batch`); this just turns the
    CLI string into the value the runners expect.
    """
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise ParameterError(
            f"--gain-batch must be 'auto' or a positive integer, "
            f"got {value!r}"
        ) from None


def _parallel_skyline(
    graph: Graph, args: argparse.Namespace
) -> Optional[SkylineResult]:
    """The precomputed skyline for ``group``/``clique`` when ``--workers`` asks
    for the parallel engine; ``None`` means "let the runner compute it"."""
    workers = _validated_workers(args)
    if workers == 1:
        return None
    if args.no_skyline:
        raise ParameterError(
            "--workers accelerates the skyline computation; it cannot be "
            "combined with --no-skyline"
        )
    return parallel_refine_sky(
        graph,
        workers=workers,
        timeout=args.timeout,
        data_plane=getattr(args, "data_plane", "auto"),
    )


def _load_graph(args: argparse.Namespace) -> Graph:
    if args.dataset:
        return load(args.dataset)
    # load_graph sniffs the format: binary snapshots open O(1) via
    # memmap, anything else parses as edge-list text.
    return load_graph(args.edge_list)


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in names(tier=args.tier):
        s = spec(name)
        g = s.load()
        st = graph_stats(g)
        rows.append(
            (
                name,
                s.kind,
                s.tier,
                st.num_vertices,
                st.num_edges,
                st.max_degree,
            )
        )
    print(format_table(("name", "kind", "tier", "n", "m", "dmax"), rows))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    """Convert any loadable graph to the binary memmap format."""
    from repro.graph.binfmt import write_binary_graph

    graph = _load_graph(args)
    start = time.perf_counter()
    total = write_binary_graph(graph, args.output)
    elapsed = time.perf_counter() - start
    print(
        f"wrote {args.output}: n={graph.num_vertices} "
        f"m={graph.num_edges} ({total} bytes, {elapsed:.3f}s)"
    )
    return 0


def _skyline_dispatch(
    algorithm: str,
    workers: int,
    timeout: Optional[float],
    data_plane: str = "auto",
) -> tuple[str, dict]:
    """Resolve ``--workers``/``--timeout``/``--data-plane`` into
    (algorithm, options).

    Shared by ``skyline`` and ``sweep``: ``workers > 1`` reroutes the
    filter_refine family through the supervised parallel engine.
    """
    options: dict = {}
    if algorithm == "filter_refine_parallel":
        options["workers"] = workers
        options["data_plane"] = data_plane
        if timeout is not None:
            options["timeout"] = timeout
    elif workers != 1:
        if algorithm == "filter_refine_bitset":
            # Same engine, bitset kernel in the workers.
            options["refine"] = "bitset"
        elif algorithm == "filter_refine_block":
            # Same engine, block-vectorized kernel in the workers.
            options["refine"] = "block"
        elif algorithm != "filter_refine":
            raise ParameterError(
                f"--workers applies to the filter_refine family, not "
                f"{algorithm!r}"
            )
        algorithm = "filter_refine_parallel"
        options["workers"] = workers
        options["data_plane"] = data_plane
        if timeout is not None:
            options["timeout"] = timeout
    return algorithm, options


def _cmd_skyline(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    counters = SkylineCounters() if args.stats else None
    workers = _validated_workers(args)
    algorithm, options = _skyline_dispatch(
        args.algorithm, workers, args.timeout, args.data_plane
    )
    if getattr(args, "word_budget", None) is not None:
        # Boundary validation: a nonpositive budget is rejected here
        # with the full explanation instead of silently routing every
        # refine to the bloom fallback.
        from repro.graph.bitmatrix import validate_word_budget

        validate_word_budget(args.word_budget)
        if algorithm not in (
            "filter_refine_bitset",
            "filter_refine_parallel",
        ):
            raise ParameterError(
                "--word-budget applies to filter_refine_bitset or the "
                f"parallel engine, not {algorithm!r}"
            )
        options["word_budget"] = args.word_budget
    start = time.perf_counter()
    result = neighborhood_skyline(
        graph, algorithm=algorithm, counters=counters, **options
    )
    elapsed = time.perf_counter() - start
    print(
        f"{result.algorithm}: |R| = {result.size} of {graph.num_vertices} "
        f"vertices ({elapsed:.3f}s)"
    )
    if result.candidate_size is not None:
        print(f"candidate set |C| = {result.candidate_size}")
    if args.show_vertices:
        print(" ".join(map(str, result.skyline)))
    if counters is not None:
        for key, value in counters.as_dict().items():
            if value:
                print(f"  {key} = {value}")
    if args.layers:
        from repro.core.layers import layer_sets

        for depth, members in enumerate(layer_sets(graph), start=1):
            print(f"layer {depth}: {len(members)} vertices")
    if args.verify:
        from repro.core.verify import verify_skyline

        verify_skyline(graph, result)
        print("verification passed")
    return 0


def _cmd_group(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    workers = _validated_workers(args)
    lazy = args.strategy == "lazy"
    # --workers accelerates the skyline precompute (parallel refine
    # engine) and, under --strategy lazy, the first greedy round too —
    # both on ONE warm EngineSession, so the pool is forked and the
    # graph published once for the whole command.
    precomputed: Optional[SkylineResult] = None
    session = None
    if workers > 1:
        if args.no_skyline and not lazy:
            raise ParameterError(
                "--workers accelerates the skyline computation and the "
                "lazy strategy's first greedy round; with --no-skyline "
                "it requires --strategy lazy"
            )
        from repro.parallel import EngineSession

        session = EngineSession(
            graph,
            workers=workers,
            timeout=args.timeout,
            data_plane=args.data_plane,
        )
    try:
        if session is not None and not args.no_skyline:
            precomputed = session.refine_sky()
        if args.measure == "closeness":
            run = base_gc if args.no_skyline else neisky_gc
        else:
            run = base_gh if args.no_skyline else neisky_gh
        options = {
            "strategy": args.strategy,
            "workers": workers if lazy else 1,
            "gain_batch": _parse_gain_batch(args.gain_batch),
        }
        if lazy and session is not None:
            options["session"] = session
        elif lazy and args.timeout is not None:
            options["timeout"] = args.timeout
        if precomputed is not None:
            options["skyline"] = precomputed.skyline
        start = time.perf_counter()
        result = run(graph, args.k, **options)
        elapsed = time.perf_counter() - start
    finally:
        if session is not None:
            session.close()
    label = "Base" if args.no_skyline else "NeiSky"
    saved = (
        f", {result.evaluations_saved} saved by laziness" if lazy else ""
    )
    print(
        f"{label} group-{args.measure} k={args.k}: group = "
        f"{list(result.group)} ({elapsed:.3f}s, "
        f"{result.evaluations} gain evaluations{saved})"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.graph.metrics import (
        approximate_diameter,
        average_local_clustering,
        degree_assortativity,
        global_clustering,
        triangle_count,
    )

    graph = _load_graph(args)
    stats = graph_stats(graph)
    print(f"vertices            {stats.num_vertices}")
    print(f"edges               {stats.num_edges}")
    print(f"max degree          {stats.max_degree}")
    print(f"average degree      {stats.average_degree:.2f}")
    print(f"density             {stats.density:.6f}")
    print(f"triangles           {triangle_count(graph)}")
    print(f"global clustering   {global_clustering(graph):.4f}")
    print(f"avg local clustering {average_local_clustering(graph):.4f}")
    print(f"degree assortativity {degree_assortativity(graph):.4f}")
    print(f"diameter (approx >=) {approximate_diameter(graph)}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Benchmark grid over datasets × algorithms × trials, resumable.

    With ``--checkpoint``, every finished cell is journaled atomically;
    with ``--resume``, journaled cells are skipped and their recorded
    measurements are reused, so a sweep killed at cell 7 of 9 restarts
    there and the final report matches the uninterrupted run's.
    """
    workers = _validated_workers(args)
    if args.trials < 1:
        raise ParameterError(
            f"--trials must be a positive integer, got {args.trials}"
        )
    datasets = [s for s in (p.strip() for p in args.datasets.split(",")) if s]
    algorithms = [
        s for s in (p.strip() for p in args.algorithms.split(",")) if s
    ]
    if not datasets or not algorithms:
        raise ParameterError(
            "--datasets and --algorithms must each name at least one item"
        )
    if args.resume and not args.checkpoint:
        raise ParameterError("--resume requires --checkpoint PATH")
    journal = (
        CheckpointJournal(args.checkpoint) if args.checkpoint else None
    )

    rows = []
    resumed = 0
    for dataset in datasets:
        graph = load(dataset)
        # One warm session per dataset: every parallel cell (across
        # algorithms AND trials) reuses the same pool and published
        # graph segments instead of re-forking per cell.
        session = None
        try:
            for algorithm in algorithms:
                run_algorithm, options = _skyline_dispatch(
                    algorithm, workers, args.timeout, args.data_plane
                )
                if run_algorithm == "filter_refine_parallel":
                    if session is None:
                        from repro.parallel import EngineSession

                        session = EngineSession(
                            graph,
                            workers=options["workers"],
                            timeout=args.timeout,
                            data_plane=args.data_plane,
                        )
                    options["session"] = session
                for trial in range(args.trials):
                    cell = (
                        journal.get(dataset, algorithm, trial)
                        if journal is not None and args.resume
                        else None
                    )
                    if cell is not None:
                        resumed += 1
                        size = cell.get("extra", {}).get("skyline_size")
                        wall = cell.get("wall_s", 0.0)
                    else:
                        start = time.perf_counter()
                        result = neighborhood_skyline(
                            graph, algorithm=run_algorithm, **options
                        )
                        wall = time.perf_counter() - start
                        size = result.size
                        if journal is not None:
                            journal.mark_done(
                                dataset,
                                algorithm,
                                trial,
                                wall_s=wall,
                                skyline_size=size,
                            )
                    rows.append(
                        (dataset, algorithm, trial, size, f"{wall:.3f}")
                    )
        finally:
            if session is not None:
                session.close()

    print(
        format_table(
            ("dataset", "algorithm", "trial", "|R|", "wall_s"), rows
        )
    )
    if journal is not None:
        print(f"checkpoint: {args.checkpoint} ({len(journal)} cells)")
    if args.resume:
        print(f"  resilience_resumed_cells = {resumed}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the serving layer until Ctrl-C/SIGTERM (or ``--max-requests``)."""
    from repro.serve import (
        GraphRegistry,
        ServeConfig,
        SupervisionConfig,
        run_server,
    )

    workers = _validated_workers(args)
    fault_plan = None
    if args.chaos_seed is not None:
        # Serve-level chaos (harness runs): a seeded, reproducible
        # fault plan over every hosted graph.
        from repro.harness.faults import ServeFaultPlan

        names = [spec.partition("=")[0].strip() for spec in args.graph]
        try:
            fault_plan = ServeFaultPlan.seeded(
                args.chaos_seed,
                names,
                rate=args.chaos_rate,
                kinds=tuple(args.chaos_kinds.split(",")),
                hang_seconds=args.chaos_hang_s,
            )
        except ValueError as exc:
            # A typo'd --chaos-kinds/--chaos-rate is a bad flag, not a
            # crash: surface it as the conventional `error: ...` exit.
            raise ParameterError(str(exc)) from exc
    registry = GraphRegistry(
        workers=workers,
        data_plane=args.data_plane,
        timeout=args.timeout,
    )
    try:
        for spec_string in args.graph:
            entry = registry.register_spec(spec_string)
            print(
                f"hosting {entry.name}: n={entry.graph.num_vertices} "
                f"m={entry.graph.num_edges} ({entry.source})"
            )
        config = ServeConfig(
            host=args.host,
            port=args.port,
            queue_capacity=args.queue_capacity,
            batch_max=args.batch_max,
            default_timeout_s=args.request_timeout,
            max_requests=args.max_requests,
            supervision=SupervisionConfig(
                query_deadline_s=args.query_deadline,
                max_session_rebuilds=args.max_session_rebuilds,
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown_s=args.breaker_cooldown,
                degraded_cache=not args.no_degraded_cache,
            ),
        )

        def announce(server):
            print(
                f"serving on http://{args.host}:{server.port} "
                f"(queue={config.queue_capacity}, "
                f"batch={config.batch_max}, workers={workers})",
                flush=True,
            )

        return run_server(
            registry, config, announce=announce, fault_plan=fault_plan
        )
    finally:
        registry.close()


def _cmd_clique(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    precomputed = _parallel_skyline(graph, args)
    start = time.perf_counter()
    if args.top_k == 1:
        if args.no_skyline:
            clique = mc_brb(graph)
        else:
            clique = neisky_mc(
                graph,
                skyline=None if precomputed is None else precomputed.skyline,
            )
        cliques = [clique]
    elif args.no_skyline:
        cliques = base_topk_mcc(graph, args.top_k)
    else:
        cliques = neisky_topk_mcc(
            graph, args.top_k, skyline_result=precomputed
        )
    elapsed = time.perf_counter() - start
    label = "Base" if args.no_skyline else "NeiSky"
    print(f"{label} top-{args.top_k} maximum cliques ({elapsed:.3f}s):")
    for i, clique in enumerate(cliques, start=1):
        print(f"  #{i} size {len(clique)}: {clique}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-sky`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sky",
        description=(
            "Neighborhood skyline on graphs (ICDE 2023 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ds = sub.add_parser("datasets", help="list registered datasets")
    p_ds.add_argument(
        "--tier",
        default="standard",
        choices=("standard", "large", "all"),
        help=(
            "which registry tier to list; 'large' materializes the "
            "million-edge benchmark graphs (default: standard)"
        ),
    )

    p_cnv = sub.add_parser(
        "convert",
        help="convert a graph to the binary memmap format (O(1) loads)",
    )
    _add_graph_arguments(p_cnv)
    p_cnv.add_argument(
        "--output",
        required=True,
        metavar="PATH",
        help="destination binary file (conventionally *.rsky)",
    )

    p_sky = sub.add_parser("skyline", help="compute a neighborhood skyline")
    _add_graph_arguments(p_sky)
    p_sky.add_argument(
        "--algorithm",
        default="filter_refine",
        metavar="NAME",
        # Validated by neighborhood_skyline (ParameterError → exit 2) so
        # the message lists the registry instead of argparse's usage dump.
        help=(
            "skyline algorithm (default: filter_refine); one of "
            + ", ".join(sorted(ALGORITHMS))
        ),
    )
    p_sky.add_argument(
        "--word-budget",
        type=int,
        default=None,
        metavar="WORDS",
        help=(
            "dense/sparse cutover for the bitset refine kernel, in "
            "uint64 words (positive; default 2**24); past the budget "
            "the run falls back to the bloom kernel"
        ),
    )
    _add_workers_argument(p_sky)
    p_sky.add_argument(
        "--stats", action="store_true", help="print work counters"
    )
    p_sky.add_argument(
        "--show-vertices",
        action="store_true",
        help="print the skyline vertex ids",
    )
    p_sky.add_argument(
        "--layers",
        action="store_true",
        help="also print the dominance-layer decomposition sizes",
    )
    p_sky.add_argument(
        "--verify",
        action="store_true",
        help="independently verify the result (slow on large graphs)",
    )

    p_grp = sub.add_parser(
        "group", help="greedy group-centrality maximization"
    )
    _add_graph_arguments(p_grp)
    p_grp.add_argument(
        "--measure",
        default="closeness",
        choices=("closeness", "harmonic"),
    )
    p_grp.add_argument("--k", type=int, default=10, help="group size")
    p_grp.add_argument(
        "--no-skyline",
        action="store_true",
        help="disable skyline pruning (Base* variant)",
    )
    p_grp.add_argument(
        "--strategy",
        default="eager",
        choices=("eager", "lazy"),
        help=(
            "greedy schedule: eager re-evaluates every candidate each "
            "round; lazy (CELF) returns the identical group with far "
            "fewer gain evaluations"
        ),
    )
    p_grp.add_argument(
        "--gain-batch",
        default="auto",
        help=(
            "marginal-gain lanes per batched kernel call: 'auto' "
            "(default, sized from the graph and candidate pool), a "
            "positive integer to force a lane count, or 1 to force the "
            "scalar kernels — identical groups either way"
        ),
    )
    _add_workers_argument(p_grp)

    p_stats = sub.add_parser(
        "stats", help="structural statistics of a graph"
    )
    _add_graph_arguments(p_stats)

    p_swp = sub.add_parser(
        "sweep",
        help="resumable datasets x algorithms x trials benchmark grid",
    )
    p_swp.add_argument(
        "--datasets",
        required=True,
        metavar="A,B,...",
        help="comma-separated registry dataset names",
    )
    p_swp.add_argument(
        "--algorithms",
        default="filter_refine",
        metavar="A,B,...",
        help=(
            "comma-separated skyline algorithms (default: filter_refine)"
        ),
    )
    p_swp.add_argument(
        "--trials", type=int, default=1, help="trials per cell"
    )
    p_swp.add_argument(
        "--checkpoint",
        metavar="PATH",
        help=(
            "journal completed (dataset, algorithm, trial) cells into "
            "this JSON file, atomically, as they finish"
        ),
    )
    p_swp.add_argument(
        "--resume",
        action="store_true",
        help=(
            "skip cells already in --checkpoint and reuse their "
            "recorded measurements"
        ),
    )
    _add_workers_argument(p_swp)

    p_srv = sub.add_parser(
        "serve",
        help="skyline-as-a-service HTTP server (see docs/serving.md)",
    )
    p_srv.add_argument(
        "--graph",
        action="append",
        required=True,
        metavar="NAME|ALIAS=PATH",
        help=(
            "graph to host (repeatable): a registry dataset name, or "
            "alias=path for an edge-list file"
        ),
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port (0 picks an ephemeral one, printed at startup)",
    )
    p_srv.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        metavar="N",
        help=(
            "bounded request-queue depth; a full queue rejects with "
            "429 instead of growing (default: 64)"
        ),
    )
    p_srv.add_argument(
        "--batch-max",
        type=int,
        default=8,
        metavar="N",
        help=(
            "max same-graph requests dispatched per batch on the warm "
            "session (default: 8)"
        ),
    )
    p_srv.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "default per-request queue-wait deadline; expired requests "
            "get 504 and never reach an engine (default: 30)"
        ),
    )
    p_srv.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="serve N queries then exit cleanly (smoke tests)",
    )
    # -- self-healing policy (PR 9) -----------------------------------
    p_srv.add_argument(
        "--query-deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help=(
            "per-query engine watchdog deadline: a query running "
            "longer is abandoned and the session rebuilt (default: 60)"
        ),
    )
    p_srv.add_argument(
        "--max-session-rebuilds",
        type=int,
        default=8,
        metavar="N",
        help=(
            "lifetime session-rebuild budget per graph; once spent the "
            "graph's breaker pins open — stuck-open, operator action "
            "(default: 8)"
        ),
    )
    p_srv.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help=(
            "consecutive engine failures on one graph that open its "
            "circuit breaker (default: 3)"
        ),
    )
    p_srv.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help=(
            "seconds an open breaker waits before admitting a "
            "half-open probe query (default: 1)"
        ),
    )
    p_srv.add_argument(
        "--no-degraded-cache",
        action="store_true",
        help=(
            "disable degraded serving: an open breaker answers 503 "
            "for every kind instead of serving the cached last-known-"
            "good skyline marked degraded"
        ),
    )
    # -- chaos harness (fault injection into the live server) ----------
    p_srv.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "inject a seeded ServeFaultPlan into the engine thread "
            "(harness runs only; default: no faults)"
        ),
    )
    p_srv.add_argument(
        "--chaos-rate",
        type=float,
        default=0.15,
        metavar="P",
        help="per-dispatch fault probability under --chaos-seed",
    )
    p_srv.add_argument(
        "--chaos-kinds",
        default="engine-exception,session-poison,slow,shm-attach-failure",
        metavar="K1,K2,...",
        help="comma-separated serve fault kinds under --chaos-seed",
    )
    p_srv.add_argument(
        "--chaos-hang-s",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="injected hang duration when 'hang' is among --chaos-kinds",
    )
    _add_workers_argument(p_srv)

    p_clq = sub.add_parser("clique", help="maximum clique search")
    _add_graph_arguments(p_clq)
    p_clq.add_argument(
        "--top-k", type=int, default=1, help="number of cliques"
    )
    p_clq.add_argument(
        "--no-skyline",
        action="store_true",
        help="disable skyline pruning (Base* variant)",
    )
    _add_workers_argument(p_clq)
    return parser


_COMMANDS = {
    "datasets": _cmd_datasets,
    "convert": _cmd_convert,
    "skyline": _cmd_skyline,
    "group": _cmd_group,
    "clique": _cmd_clique,
    "stats": _cmd_stats,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # Pooled workers are already dead: the supervisor's context
        # manager terminates its pool on the way out, and workers
        # ignore SIGINT so only the parent reports.  One line, no
        # multiprocessing traceback, conventional 128+SIGINT code.
        print(
            "interrupted: partial results discarded; checkpoint (if "
            "any) kept — rerun with --resume",
            file=sys.stderr,
        )
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
