"""Integer hashing for the bloom filters of Algorithm 3.

The paper uses a *single* cheap hash function based on bit-wise operations
(borrowed from the IP reachability labelling of Wei et al., VLDB'14):
speed matters more than distribution quality, because every false
positive is caught later by the exact ``NBRcheck``.

:func:`splitmix64` is the avalanche finisher of the SplitMix64 generator —
two multiply/xor-shift rounds, excellent diffusion, and deterministic
across platforms and processes (unlike Python's builtin ``hash`` for
strings, which is salted).  A seed is folded in so experiments can draw
independent hash functions.
"""

from __future__ import annotations

__all__ = ["splitmix64", "make_hash"]

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """The SplitMix64 finalizer: a 64-bit mixing bijection.

    >>> splitmix64(0) == splitmix64(0)
    True
    >>> splitmix64(1) != splitmix64(2)
    True
    """
    z = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def make_hash(seed: int = 0):
    """Return a deterministic 64-bit hash function ``h: int -> int``.

    Different seeds yield (empirically) independent functions, used by the
    bloom-size ablation benchmark to average out hash luck.
    """
    salt = splitmix64(seed ^ 0xA5A5_A5A5_DEAD_BEEF)

    def hash_fn(x: int) -> int:
        return splitmix64(x ^ salt)

    return hash_fn
