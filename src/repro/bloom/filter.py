"""Single-hash bloom filters over integer element sets.

The refine phase of ``FilterRefineSky`` (Algorithm 3) answers two
questions with bloom filters built over open neighborhoods:

* **subset pre-check** — ``BF(u) & BF(w) == BF(u)`` is necessary for
  ``N(u) ⊆ N(w)`` (line 14);
* **membership pre-check** (``BFcheck``) — bit ``h(x) mod b`` of
  ``BF(w)`` must be set for ``x ∈ N(w)`` (line 16).

Both are one-sided: a clear bit proves non-membership, a set bit may be a
false positive (Lemma 2 quantifies the rate), so the caller follows up
with the exact ``NBRcheck``.

The filter is a Python arbitrary-precision integer used as a bit array.
That makes the subset pre-check a two-word C-level operation for typical
sizes, which mirrors the spirit of the paper's 32-bit-word bit tricks
(``BF[h(v)>>5 % BK] |= 1 << (h(v) & 31)``) without hand-managing words.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.bloom.hashing import make_hash
from repro.errors import ParameterError

__all__ = ["BloomFilter"]


class BloomFilter:
    """A fixed-width, single-hash bloom filter over non-negative ints.

    Parameters
    ----------
    bits:
        Width ``b`` of the filter in bits; must be a positive multiple
        of 32 (the paper's word size).
    hash_fn:
        64-bit integer hash; defaults to the package-wide SplitMix64
        hash with seed 0.

    >>> bf = BloomFilter.from_elements([1, 2, 3], bits=64)
    >>> bf.might_contain(2)
    True
    >>> BloomFilter.from_elements([1], bits=64).is_subset_of(bf)
    True
    """

    __slots__ = ("bits", "_hash", "_word")

    def __init__(self, bits: int, hash_fn: Callable[[int], int] | None = None):
        if bits <= 0 or bits % 32 != 0:
            raise ParameterError(
                f"bloom width must be a positive multiple of 32, got {bits}"
            )
        self.bits = bits
        self._hash = hash_fn if hash_fn is not None else make_hash(0)
        self._word = 0

    @classmethod
    def from_elements(
        cls,
        elements: Iterable[int],
        bits: int,
        hash_fn: Callable[[int], int] | None = None,
    ) -> "BloomFilter":
        """Build a filter containing every element of ``elements``."""
        bf = cls(bits, hash_fn)
        for x in elements:
            bf.add(x)
        return bf

    def add(self, x: int) -> None:
        """Insert ``x`` (sets bit ``h(x) mod bits``)."""
        self._word |= 1 << (self._hash(x) % self.bits)

    def might_contain(self, x: int) -> bool:
        """``False`` proves ``x`` was never added; ``True`` is a maybe."""
        return bool(self._word >> (self._hash(x) % self.bits) & 1)

    def is_subset_of(self, other: "BloomFilter") -> bool:
        """Necessary condition for set inclusion: all our bits set in other.

        Equivalent to the paper's ``BF(u) & BF(w) == BF(u)`` test.  Filters
        must share width and hash for the comparison to be meaningful.
        """
        return (self._word & other._word) == self._word

    @property
    def popcount(self) -> int:
        """Number of set bits (used by the ablation's saturation metric)."""
        return self._word.bit_count()

    def __contains__(self, x: int) -> bool:
        return self.might_contain(x)

    def __repr__(self) -> str:
        return f"BloomFilter(bits={self.bits}, set={self.popcount})"
