"""Per-vertex neighborhood bloom filters for the refine phase.

``FilterRefineSky`` builds one filter per candidate vertex over its open
neighborhood.  The paper sizes every filter identically, from the global
maximum degree; a shared width means the hash bit position of a vertex
``x`` is the same in every filter, so it is precomputed once
(``_bit_of[x]``) and each filter is just the OR of its neighbors' bits.
This is the Python analogue of the paper's word-level trick.

:class:`VertexBloomIndex` is deliberately lower-level than
:class:`~repro.bloom.filter.BloomFilter` — it exposes raw integers so the
inner loop of Algorithm 3 performs plain ``&``/``==`` operations.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bloom.hashing import make_hash
from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["VertexBloomIndex", "width_for_max_degree"]


def width_for_max_degree(dmax: int, bits_per_element: int = 8) -> int:
    """Filter width in bits for a graph with maximum degree ``dmax``.

    The paper derives the byte count ``BK`` from ``dmax``; here the width
    is ``bits_per_element * dmax`` rounded up to a multiple of 32, with a
    floor of 32.  ``bits_per_element`` trades memory for false-positive
    rate and is swept by the bloom ablation benchmark.
    """
    if bits_per_element <= 0:
        raise ParameterError(
            f"bits_per_element must be positive, got {bits_per_element}"
        )
    raw = max(1, dmax) * bits_per_element
    return max(32, (raw + 31) // 32 * 32)


class VertexBloomIndex:
    """Bloom filters over the open neighborhoods of selected vertices.

    Parameters
    ----------
    graph:
        The host graph.
    vertices:
        Vertices to build filters for (typically the candidate set ``C``).
    bits:
        Shared filter width; defaults to :func:`width_for_max_degree`
        of the graph.
    seed:
        Hash-function seed.
    """

    __slots__ = ("bits", "_bit_of", "_filters")

    def __init__(
        self,
        graph: Graph,
        vertices: Iterable[int],
        *,
        bits: Optional[int] = None,
        seed: int = 0,
        bits_per_element: int = 8,
    ):
        if bits is None:
            dmax = max(
                (graph.degree(u) for u in graph.vertices()), default=0
            )
            bits = width_for_max_degree(dmax, bits_per_element)
        if bits <= 0 or bits % 32 != 0:
            raise ParameterError(
                f"bloom width must be a positive multiple of 32, got {bits}"
            )
        self.bits = bits
        hash_fn = make_hash(seed)
        # Shared width => shared bit position per vertex id.
        self._bit_of = [
            1 << (hash_fn(x) % bits) for x in range(graph.num_vertices)
        ]
        bit_of = self._bit_of
        filters: dict[int, int] = {}
        for u in vertices:
            word = 0
            for v in graph.neighbors(u):
                word |= bit_of[v]
            filters[u] = word
        self._filters = filters

    @property
    def bit_masks(self) -> list[int]:
        """Per-vertex single-bit masks ``1 << (h(x) mod bits)``.

        Shared across all filters because the width is shared; exposed
        for hot loops that inline ``BFcheck`` as ``filter & mask``.
        """
        return self._bit_of

    def filter_word(self, u: int) -> int:
        """The raw filter integer of vertex ``u`` (KeyError if not built)."""
        return self._filters[u]

    def has_filter(self, u: int) -> bool:
        """``True`` iff a filter was built for ``u``."""
        return u in self._filters

    def subset_maybe(self, u: int, w: int) -> bool:
        """Necessary condition for ``N(u) ⊆ N(w)`` (Alg. 3 line 14)."""
        fu = self._filters[u]
        return (fu & self._filters[w]) == fu

    def member_maybe(self, w: int, x: int) -> bool:
        """``BFcheck``: necessary condition for ``x ∈ N(w)`` (line 16)."""
        return bool(self._filters[w] & self._bit_of[x])

    def memory_bits(self) -> int:
        """Total bits held by all filters (Exp-2 accounting)."""
        return self.bits * len(self._filters)

    def __len__(self) -> int:
        return len(self._filters)
