"""Bloom-filter substrate used by the refine phase of FilterRefineSky.

* :class:`~repro.bloom.filter.BloomFilter` — general single-hash filter.
* :class:`~repro.bloom.vertex_filters.VertexBloomIndex` — shared-width
  per-vertex neighborhood filters with precomputed bit positions.
* :func:`~repro.bloom.hashing.splitmix64` / ``make_hash`` — the
  deterministic integer hash family.
"""

from repro.bloom.filter import BloomFilter
from repro.bloom.hashing import make_hash, splitmix64
from repro.bloom.vertex_filters import VertexBloomIndex, width_for_max_degree

__all__ = [
    "BloomFilter",
    "make_hash",
    "splitmix64",
    "VertexBloomIndex",
    "width_for_max_degree",
]
