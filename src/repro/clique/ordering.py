"""Degeneracy ordering — the workhorse vertex order of clique solvers.

The degeneracy ordering repeatedly removes minimum-degree vertices; its
*core numbers* bound clique size (``ω ≤ degeneracy + 1``) and the
"right neighborhood" of each vertex in the ordering has size at most the
degeneracy, which is what keeps branch-and-bound subproblems tiny on
sparse graphs (the structural insight behind MC-BRB's ego-network
decomposition).

Both entry points delegate to the round-based batch peel of
:mod:`repro.graph.cores` — vectorized over the CSR ndarrays when numpy
is available, with an identical-schedule pure-Python fallback — which
replaced the scalar Matula–Beck bucket loops that used to live here.
The peel order differs from the old lazy-deletion order (batches peel
ID-ascending instead of popping the newest bucket entry) but is equally
a degeneracy ordering, and core numbers and degeneracy are unchanged
(they are properties of the graph, not of the schedule).
"""

from __future__ import annotations

from repro.graph.adjacency import Graph
from repro.graph.cores import core_decomposition

__all__ = ["degeneracy_ordering", "core_numbers"]


def degeneracy_ordering(graph: Graph) -> tuple[list[int], int]:
    """Return ``(order, degeneracy)``.

    ``order`` lists the vertices in peel order (min-degree levels
    first); ``degeneracy`` is the deepest level peeled.  Runs in
    ``O(n + m)`` work, vectorized per cascade round on the CSR
    substrate.
    """
    decomposition = core_decomposition(graph)
    return list(decomposition.order), decomposition.degeneracy


def core_numbers(graph: Graph) -> list[int]:
    """``core[u]`` = largest ``k`` such that ``u`` lies in the k-core."""
    return list(core_decomposition(graph).core)
