"""Degeneracy ordering — the workhorse vertex order of clique solvers.

The degeneracy ordering repeatedly removes a minimum-degree vertex; its
*core numbers* bound clique size (``ω ≤ degeneracy + 1``) and the
"right neighborhood" of each vertex in the ordering has size at most the
degeneracy, which is what keeps branch-and-bound subproblems tiny on
sparse graphs (the structural insight behind MC-BRB's ego-network
decomposition).

Implemented with the linear-time bucket technique of Matula & Beck.
"""

from __future__ import annotations

from repro.graph.adjacency import Graph

__all__ = ["degeneracy_ordering", "core_numbers"]


def degeneracy_ordering(graph: Graph) -> tuple[list[int], int]:
    """Return ``(order, degeneracy)``.

    ``order`` lists the vertices in removal order (min-degree first);
    ``degeneracy`` is the largest degree seen at removal time.  Runs in
    ``O(n + m)``.
    """
    n = graph.num_vertices
    degree = [graph.degree(u) for u in range(n)]
    max_deg = max(degree, default=0)
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for u in range(n):
        buckets[degree[u]].append(u)
    position_known = bytearray(n)
    order: list[int] = []
    degeneracy = 0
    cursor = 0  # smallest possibly-non-empty bucket
    while len(order) < n:
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        u = buckets[cursor].pop()
        if position_known[u]:
            # Stale entry: u was moved to a lower bucket earlier but the
            # old entry was left behind (lazy deletion).
            continue
        position_known[u] = 1
        degeneracy = max(degeneracy, degree[u])
        order.append(u)
        for v in graph.neighbors(u):
            if not position_known[v]:
                degree[v] -= 1
                buckets[degree[v]].append(v)
                if degree[v] < cursor:
                    cursor = degree[v]
    return order, degeneracy


def core_numbers(graph: Graph) -> list[int]:
    """``core[u]`` = largest ``k`` such that ``u`` lies in the k-core."""
    n = graph.num_vertices
    degree = [graph.degree(u) for u in range(n)]
    max_deg = max(degree, default=0)
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for u in range(n):
        buckets[degree[u]].append(u)
    removed = bytearray(n)
    core = [0] * n
    cursor = 0
    current_core = 0
    processed = 0
    while processed < n:
        while cursor < len(buckets) and not buckets[cursor]:
            cursor += 1
        u = buckets[cursor].pop()
        if removed[u]:
            continue
        removed[u] = 1
        processed += 1
        current_core = max(current_core, degree[u])
        core[u] = current_core
        for v in graph.neighbors(u):
            if not removed[v]:
                degree[v] -= 1
                buckets[degree[v]].append(v)
                if degree[v] < cursor:
                    cursor = degree[v]
    return core
