"""Maximum-clique computation (Sec. IV-C of the paper).

* :func:`~repro.clique.branch_bound.base_mcc` — the simple B&B baseline.
* :func:`~repro.clique.mcbrb.mc_brb` — the MC-BRB-style exact solver.
* :func:`~repro.clique.neisky.neisky_mc` — Algorithm 5 (skyline roots).
* :func:`~repro.clique.topk.base_topk_mcc` /
  :func:`~repro.clique.topk.neisky_topk_mcc` — k largest cliques.
* Support: degeneracy ordering, core numbers, clique predicates.
"""

from repro.clique.branch_bound import base_mcc
from repro.clique.mcbrb import (
    greedy_heuristic_clique,
    max_clique_with_root,
    mc_brb,
)
from repro.clique.neisky import neisky_mc
from repro.clique.ordering import core_numbers, degeneracy_ordering
from repro.clique.topk import base_topk_mcc, neisky_topk_mcc
from repro.clique.verify import is_clique, is_maximal_clique

__all__ = [
    "base_mcc",
    "greedy_heuristic_clique",
    "max_clique_with_root",
    "mc_brb",
    "neisky_mc",
    "core_numbers",
    "degeneracy_ordering",
    "base_topk_mcc",
    "neisky_topk_mcc",
    "is_clique",
    "is_maximal_clique",
]
