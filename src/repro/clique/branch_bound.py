"""``BaseMCC`` — the simple branch-and-bound maximum-clique framework.

Sec. IV-C describes the baseline framework: grow a clique ``H`` from a
candidate set ``X`` (initially ``V``) until no vertex can extend it,
branching over candidates and pruning with the trivial bound
``|H| + |X| ≤ |best|``.  This is the reference point the skyline-pruned
solver is contrasted with — intentionally unsophisticated (no coloring,
no degeneracy decomposition), so keep it away from large dense graphs.

Also exported: :func:`bb_max_clique_in_sets`, the shared recursive core
that the stronger solvers reuse with their own candidate sets.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clique.ordering import core_numbers
from repro.graph.adjacency import Graph

__all__ = ["base_mcc", "bb_max_clique_in_sets"]


def bb_max_clique_in_sets(
    adjacency: Sequence[set[int]],
    clique: list[int],
    candidates: list[int],
    best: list[int],
) -> None:
    """Recursive branch and bound over set-based adjacency.

    Extends ``clique`` with vertices from ``candidates`` (all adjacent to
    every clique member), updating ``best`` in place whenever a larger
    clique is completed.  The only bound is the candidate count.
    """
    if len(clique) + len(candidates) <= len(best):
        return
    if not candidates:
        if len(clique) > len(best):
            best[:] = clique
        return
    # Branch on each candidate; iterate a copy because we shrink the list.
    local = list(candidates)
    while local:
        if len(clique) + len(local) <= len(best):
            return
        v = local.pop()
        adj_v = adjacency[v]
        clique.append(v)
        bb_max_clique_in_sets(
            adjacency, clique, [w for w in local if w in adj_v], best
        )
        clique.pop()


def base_mcc(
    graph: Graph, *, initial_bound: Optional[list[int]] = None
) -> list[int]:
    """Maximum clique via the plain branch-and-bound framework.

    Returns the clique as a sorted vertex list.  Exponential worst case;
    fine for the modest graphs used in tests and as a correctness oracle.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    adjacency = [set(graph.neighbors(u)) for u in range(n)]
    best: list[int] = list(initial_bound) if initial_bound else []
    candidates = list(range(n))
    if best:
        # Work avoidance when a bound is handed in: a clique beating the
        # incumbent needs core number >= |best| on every member, so the
        # rest of the vertex set never enters the search tree.  The
        # framework itself stays bound-by-candidate-count only.
        core = core_numbers(graph)
        candidates = [u for u in candidates if core[u] >= len(best)]
    bb_max_clique_in_sets(adjacency, [], candidates, best)
    return sorted(best)
