"""An MC-BRB-style exact maximum-clique solver.

The paper benchmarks against MC-BRB (Chang, KDD'19).  This solver keeps
its load-bearing ingredients, each standard and exact:

1. **Near-linear heuristic** — a degeneracy-guided greedy clique gives a
   strong initial lower bound (MC-BRB's heuristic phase);
2. **Ego-network decomposition** — every clique has a leftmost vertex in
   the degeneracy ordering, so the maximum clique is
   ``max_v 1 + ω(G[N→(v)])`` over right-neighborhoods of size at most
   the degeneracy;
3. **Branch-reduce-and-bound** on each subproblem with a **greedy
   coloring bound**: candidates are colored, and a branch is cut when
   ``|H| + colors ≤ |best|`` (Tomita-style MCS bound);
4. **Degree/core pruning** — subproblems whose candidate count cannot
   beat the incumbent are skipped outright.

The same bounded search is exposed as :func:`max_clique_with_root` for
the skyline applications, which must search full (not right-restricted)
ego networks — see :mod:`repro.clique.neisky` for why.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clique.ordering import degeneracy_ordering
from repro.graph.adjacency import Graph
from repro.graph.cores import core_decomposition

__all__ = ["mc_brb", "max_clique_with_root", "greedy_heuristic_clique"]


def greedy_heuristic_clique(graph: Graph) -> list[int]:
    """Near-linear heuristic clique (lower bound, not necessarily maximum).

    Processes the degeneracy ordering from the densest end: seed with a
    vertex, then greedily absorb right-neighbors adjacent to the whole
    current clique.  Mirrors MC-BRB's heuristic phase closely enough to
    provide the strong initial bound the exact phase relies on.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    order, _k = degeneracy_ordering(graph)
    rank = [0] * n
    for pos, u in enumerate(order):
        rank[u] = pos
    best: list[int] = []
    # Try a seed from the dense tail; a handful of seeds is enough for a
    # good bound and keeps the heuristic near-linear.
    for seed in reversed(order[-32:]):
        clique = [seed]
        members = {seed}
        # Candidates: neighbors later in the ordering, densest-first.
        cands = sorted(
            (v for v in graph.neighbors(seed) if rank[v] > rank[seed]),
            key=lambda v: -rank[v],
        )
        for v in cands:
            if all(graph.has_edge(v, w) for w in clique):
                clique.append(v)
                members.add(v)
        if len(clique) > len(best):
            best = clique
    return sorted(best)


def _color_sort(
    candidates: list[int], adjacency: Sequence[set[int]]
) -> tuple[list[int], list[int]]:
    """Greedy coloring of ``candidates``; returns (vertices, colors).

    Vertices come back ordered by color class (ascending), so iterating
    from the end visits the highest upper bounds first — the standard
    Tomita branching order.  ``colors[i]`` is the 1-based color of
    ``vertices[i]``, an upper bound on the clique size within the prefix.
    """
    color_classes: list[list[int]] = []
    for v in candidates:
        adj_v = adjacency[v]
        for cls in color_classes:
            if not any(w in adj_v for w in cls):
                cls.append(v)
                break
        else:
            color_classes.append([v])
    ordered: list[int] = []
    colors: list[int] = []
    for color, cls in enumerate(color_classes, start=1):
        for v in cls:
            ordered.append(v)
            colors.append(color)
    return ordered, colors


def _bb_colored(
    adjacency: Sequence[set[int]],
    clique: list[int],
    candidates: list[int],
    best: list[int],
    floor: int = 0,
) -> None:
    """Branch and bound with the greedy-coloring upper bound.

    ``floor`` acts as an external incumbent size: branches that cannot
    exceed ``max(len(best), floor)`` are cut, and nothing smaller than
    ``floor`` is ever recorded.  Callers with a bound from elsewhere
    (e.g. a clique found at a different root) pass it here.
    """
    incumbent = max(len(best), floor)
    if not candidates:
        if len(clique) > incumbent:
            best[:] = clique
        return
    ordered, colors = _color_sort(candidates, adjacency)
    for i in range(len(ordered) - 1, -1, -1):
        incumbent = max(len(best), floor)
        if len(clique) + colors[i] <= incumbent:
            return  # every remaining vertex has an even smaller bound
        v = ordered[i]
        adj_v = adjacency[v]
        clique.append(v)
        _bb_colored(
            adjacency,
            clique,
            [w for w in ordered[:i] if w in adj_v],
            best,
            floor,
        )
        clique.pop()


def mc_brb(graph: Graph) -> list[int]:
    """Exact maximum clique (sorted) with the MC-BRB-style pipeline."""
    n = graph.num_vertices
    if n == 0:
        return []
    best = greedy_heuristic_clique(graph)
    core, order, _k = core_decomposition(graph)
    rank = [0] * n
    for pos, u in enumerate(order):
        rank[u] = pos
    adjacency = [set(graph.neighbors(u)) for u in range(n)]
    for u in order:
        # Core reduction: every member of a clique of size s has core
        # number >= s - 1, so a root (or candidate) with
        # core(v) + 1 <= |best| cannot appear in anything better.  This
        # subsumes the old degree filter (core(v) <= deg(v)).
        if core[u] + 1 <= len(best):
            continue
        right = [v for v in graph.neighbors(u) if rank[v] > rank[u]]
        if len(right) + 1 <= len(best):
            continue
        floor = len(best)
        right = [v for v in right if core[v] >= floor]
        if len(right) + 1 <= len(best):
            continue
        _bb_colored(adjacency, [u], right, best)
    return sorted(best)


def max_clique_with_root(
    graph: Graph,
    root: int,
    *,
    lower_bound: int = 0,
    adjacency: Optional[Sequence[set[int]]] = None,
) -> list[int]:
    """The largest clique containing ``root`` (``MC(root)``), sorted.

    ``lower_bound`` prunes branches that cannot beat an incumbent from a
    different root, in which case the returned clique may be *smaller*
    than ``MC(root)`` (possibly just ``[root]``) — exactly the contract
    the top-k search wants.  Pass ``adjacency`` (list of neighbor sets)
    to amortize its construction across many roots.
    """
    if adjacency is None:
        adjacency = [set(graph.neighbors(u)) for u in graph.vertices()]
    best: list[int] = []
    _bb_colored(
        adjacency, [root], list(graph.neighbors(root)), best, lower_bound
    )
    return sorted(best) if best else [root]
