"""``NeiSkyMC`` — Algorithm 5: skyline-pruned maximum-clique search.

Lemma 5's consequence: *some maximum clique contains a skyline vertex*.
(Take any maximum clique ``H`` and any ``v ∈ H``; while ``v`` is
dominated by some ``u``, either ``u ∈ H`` already or
``H \\ {v} ∪ {u}`` is a maximum clique containing ``u`` — ``u`` is
adjacent to all of ``H \\ {v}`` because ``N(v) ⊆ N[u]``.  Walking up the
domination order terminates at a skyline vertex.)

So instead of rooting the branch-and-bound at every vertex, ``NeiSkyMC``
roots it only at skyline vertices, each with the *full* ego network
``N(u)`` as candidates — full, not right-restricted as in plain MC-BRB,
because the leftmost member of the optimal clique need not itself be a
skyline vertex.  Roots that cannot beat the incumbent
(``deg(u) + 1 ≤ |best|``) are skipped.
"""

from __future__ import annotations

from typing import Optional

from repro.clique.mcbrb import _bb_colored, greedy_heuristic_clique
from repro.core.filter_refine import filter_refine_sky
from repro.graph.adjacency import Graph

__all__ = ["neisky_mc"]


def neisky_mc(
    graph: Graph,
    *,
    skyline: Optional[tuple[int, ...]] = None,
) -> list[int]:
    """Exact maximum clique searching only skyline-rooted ego networks.

    ``skyline`` may be supplied when precomputed; otherwise
    FilterRefineSky runs first (its cost is part of what the paper's
    Exp-6 measures at ``k = 1``).
    """
    n = graph.num_vertices
    if n == 0:
        return []
    if skyline is None:
        skyline = filter_refine_sky(graph).skyline
    best = greedy_heuristic_clique(graph)
    adjacency = [set(graph.neighbors(u)) for u in range(n)]
    degree = graph.degree
    # Densest roots first so the incumbent grows quickly.
    for u in sorted(skyline, key=degree, reverse=True):
        if degree(u) + 1 <= len(best):
            continue
        # Candidate reduction: a member of a clique beating the
        # incumbent needs degree >= |best| (it has |best| clique
        # neighbors).  This trims the low-degree periphery out of hub
        # ego networks, the full-ego analogue of MC-BRB's reductions.
        floor = len(best)
        candidates = [
            v for v in graph.neighbors(u) if degree(v) >= floor
        ]
        _bb_colored(adjacency, [u], candidates, best)
    return sorted(best)
