"""Top-k maximum cliques (Sec. IV-C.3): ``BaseTopkMCC`` vs ``NeiSkyTopkMCC``.

``MC(u)`` denotes the largest clique containing ``u``.  Task: return the
``k`` largest *distinct* cliques among ``{MC(u) : u ∈ V}``.

Both variants follow the paper's **round** structure; round ``j`` picks
the ``j``-th clique:

* ``BaseTopkMCC`` — every round roots a (floor-pruned) search at *every*
  vertex and selects the largest clique not yet selected, so its cost
  grows linearly in ``k``.  At ``k = 1`` it degenerates to plain MC-BRB
  (one global search), exactly as the paper notes for Fig. 9.
* ``NeiSkyTopkMCC`` — rounds root only at the *current root set*:
  initially the neighborhood skyline, and whenever a clique rooted at
  ``u`` is selected, the vertices directly dominated by ``u`` re-enter
  the root set (by Lemma 6 their cliques are no larger than ``u``'s, so
  they only become interesting once ``u``'s clique is consumed).  At
  ``k = 1`` it degenerates to ``NeiSkyMC`` plus the skyline cost.

Within a round every root's ``MC(u)`` is computed *exactly* (no
incumbent floor) — the base variant is deliberately the "straightforward
method" of the paper, which is what makes its cost grow with both ``n``
and ``k`` and gives the skyline-rooted variant its Fig. 9 advantage.
Roots are visited densest-first for deterministic tie-breaking.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.clique.mcbrb import max_clique_with_root, mc_brb
from repro.clique.neisky import neisky_mc
from repro.core.filter_refine import filter_refine_sky
from repro.core.result import SkylineResult
from repro.errors import ParameterError
from repro.graph.adjacency import Graph

__all__ = ["base_topk_mcc", "neisky_topk_mcc"]


def _round_winner(
    graph: Graph,
    adjacency: Sequence[set[int]],
    roots: Sequence[int],
    selected: set[tuple[int, ...]],
) -> tuple[Optional[tuple[int, ...]], int]:
    """Largest unselected clique rooted in ``roots`` plus its root.

    Computes ``MC(u)`` exactly for every root (densest-first for
    deterministic ties).  Returns ``(None, -1)`` when every root's
    clique was already selected.
    """
    best: Optional[tuple[int, ...]] = None
    best_root = -1
    for u in sorted(roots, key=lambda v: (-graph.degree(v), v)):
        clique = tuple(
            max_clique_with_root(graph, u, adjacency=adjacency)
        )
        if clique in selected:
            continue
        if best is None or (-len(clique), clique) < (-len(best), best):
            best, best_root = clique, u
    return best, best_root


def base_topk_mcc(graph: Graph, k: int) -> list[list[int]]:
    """``BaseTopkMCC``: round-based top-k over all vertices as roots."""
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    if graph.num_vertices == 0:
        return []
    if k == 1:
        return [mc_brb(graph)]
    adjacency = [set(graph.neighbors(u)) for u in graph.vertices()]
    all_roots = list(graph.vertices())
    selected: list[list[int]] = []
    selected_keys: set[tuple[int, ...]] = set()
    while len(selected) < k:
        clique, _root = _round_winner(
            graph, adjacency, all_roots, selected_keys
        )
        if clique is None:
            break
        selected.append(list(clique))
        selected_keys.add(clique)
    return selected


def neisky_topk_mcc(
    graph: Graph,
    k: int,
    *,
    skyline_result: Optional[SkylineResult] = None,
) -> list[list[int]]:
    """``NeiSkyTopkMCC``: skyline-rooted rounds with dominatee re-entry.

    ``skyline_result`` (not just the skyline — the dominator witnesses
    drive the re-entry step) may be supplied when precomputed; by default
    FilterRefineSky runs first, and its cost is part of what Exp-6
    measures.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    n = graph.num_vertices
    if n == 0:
        return []
    if skyline_result is None:
        skyline_result = filter_refine_sky(graph)
    if k == 1:
        return [neisky_mc(graph, skyline=skyline_result.skyline)]
    dominator = skyline_result.dominator
    dominatees: dict[int, list[int]] = {}
    for v, d in enumerate(dominator):
        if d != v:
            dominatees.setdefault(d, []).append(v)

    adjacency = [set(graph.neighbors(u)) for u in range(n)]
    roots: set[int] = set(skyline_result.skyline)
    selected: list[list[int]] = []
    selected_keys: set[tuple[int, ...]] = set()
    while len(selected) < k:
        clique, root = _round_winner(
            graph, adjacency, sorted(roots), selected_keys
        )
        if clique is None:
            # Current roots exhausted: let every root's dominatees in and
            # retry; stop once that adds nothing.
            grown = False
            for u in list(roots):
                for v in dominatees.get(u, ()):
                    if v not in roots:
                        roots.add(v)
                        grown = True
            if not grown:
                break
            continue
        selected.append(list(clique))
        selected_keys.add(clique)
        for v in dominatees.get(root, ()):
            roots.add(v)
    return selected
