"""Clique predicates — used by solvers' postconditions and by tests."""

from __future__ import annotations

from typing import Iterable

from repro.graph.adjacency import Graph

__all__ = ["is_clique", "is_maximal_clique"]


def is_clique(graph: Graph, vertices: Iterable[int]) -> bool:
    """``True`` iff every pair of ``vertices`` is adjacent."""
    members = sorted(set(vertices))
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if not graph.has_edge(u, v):
                return False
    return True


def is_maximal_clique(graph: Graph, vertices: Iterable[int]) -> bool:
    """``True`` iff ``vertices`` is a clique no vertex can extend."""
    members = set(vertices)
    if not is_clique(graph, members):
        return False
    if not members:
        return graph.num_vertices == 0
    # A vertex extends the clique iff it is adjacent to every member;
    # checking the neighbors of one member suffices as candidates.
    anchor = next(iter(members))
    for w in graph.neighbors(anchor):
        if w in members:
            continue
        if all(graph.has_edge(w, v) for v in members):
            return False
    return True
