"""Inverted index over a :class:`~repro.containment.records.RecordSet`.

Maps each element ``x`` to the sorted list of record IDs containing
``x``.  This is the index the set-containment-join literature (including
LC-Join) builds on the data set ``S`` — and, as the paper notes for the
skyline use case, its size is what makes join-based approaches memory
hungry: the index duplicates every element occurrence.

With numpy available the postings are ``int32`` ndarray views into one
flat buffer, built once by a stable counting sort over all (element,
record) occurrence pairs — the representation the vectorized join
kernel of :mod:`repro.containment.lcjoin` consumes directly (its
``np.bincount`` / ``np.intersect1d`` passes need ndarray operands, not
Python lists).  Without numpy the index falls back to plain sorted
lists and the join runs its scalar crosscut; both representations hold
the same IDs in the same order.
"""

from __future__ import annotations

from repro.containment.records import RecordSet

try:  # pragma: no cover - scalar fallback exercised via monkeypatching
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Element → sorted record-ID postings over a record set."""

    __slots__ = ("_postings", "_empty")

    def __init__(self, records: RecordSet):
        if _np is not None:
            self._postings = self._build_ndarray(records)
            self._empty = _np.empty(0, dtype=_np.int32)
        else:
            self._postings = self._build_lists(records)
            self._empty = []

    @staticmethod
    def _build_lists(records: RecordSet) -> list[list[int]]:
        postings: list[list[int]] = [[] for _ in range(records.universe)]
        for rid, record in enumerate(records):
            for x in record:
                postings[x].append(rid)
        # Record IDs are appended in increasing order, so each posting
        # list is already sorted.
        return postings

    @staticmethod
    def _build_ndarray(records: RecordSet) -> list:
        """All postings as ``int32`` views into one flat buffer.

        One stable argsort over the flattened (element, record ID)
        occurrence pairs groups equal elements together while keeping
        record IDs ascending inside each group — the same order the
        append loop above produces, without per-element list objects.
        """
        universe = records.universe
        total = records.total_elements()
        elems = _np.empty(total, dtype=_np.int64)
        rids = _np.empty(total, dtype=_np.int32)
        pos = 0
        for rid, record in enumerate(records):
            m = len(record)
            elems[pos : pos + m] = record
            rids[pos : pos + m] = rid
            pos += m
        order = _np.argsort(elems, kind="stable")
        counts = _np.bincount(elems, minlength=universe) if total else (
            _np.zeros(universe, dtype=_np.int64)
        )
        bounds = _np.empty(universe + 1, dtype=_np.int64)
        bounds[0] = 0
        _np.cumsum(counts, out=bounds[1:])
        flat = rids[order]
        return [
            flat[bounds[x] : bounds[x + 1]] for x in range(universe)
        ]

    def postings(self, x: int):
        """Sorted record IDs whose record contains ``x`` (empty if none).

        An ``int32`` ndarray under numpy, a plain list otherwise — both
        read identically (``len``, iteration, indexing); callers that
        need a list should wrap with ``list(...)``.
        """
        if 0 <= x < len(self._postings):
            return self._postings[x]
        return self._empty

    def posting_length(self, x: int) -> int:
        """``len(postings(x))`` without materializing anything."""
        if 0 <= x < len(self._postings):
            return len(self._postings[x])
        return 0

    def memory_entries(self) -> int:
        """Total posting entries — the Exp-2 memory proxy for LC-Join."""
        return sum(len(p) for p in self._postings)
