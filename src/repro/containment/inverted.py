"""Inverted index over a :class:`~repro.containment.records.RecordSet`.

Maps each element ``x`` to the sorted list of record IDs containing
``x``.  This is the index the set-containment-join literature (including
LC-Join) builds on the data set ``S`` — and, as the paper notes for the
skyline use case, its size is what makes join-based approaches memory
hungry: the index duplicates every element occurrence.
"""

from __future__ import annotations

from repro.containment.records import RecordSet

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Element → sorted record-ID postings over a record set."""

    __slots__ = ("_postings",)

    def __init__(self, records: RecordSet):
        postings: list[list[int]] = [[] for _ in range(records.universe)]
        for rid, record in enumerate(records):
            for x in record:
                postings[x].append(rid)
        # Record IDs are appended in increasing order, so each posting
        # list is already sorted.
        self._postings = postings

    def postings(self, x: int) -> list[int]:
        """Sorted record IDs whose record contains ``x`` (empty if none)."""
        if 0 <= x < len(self._postings):
            return self._postings[x]
        return []

    def posting_length(self, x: int) -> int:
        """``len(postings(x))`` without materializing anything."""
        if 0 <= x < len(self._postings):
            return len(self._postings[x])
        return 0

    def memory_entries(self) -> int:
        """Total posting entries — the Exp-2 memory proxy for LC-Join."""
        return sum(len(p) for p in self._postings)
