"""Generic set-containment machinery (the LC-Join baseline substrate).

* :class:`~repro.containment.records.RecordSet` — integer-set records.
* :class:`~repro.containment.inverted.InvertedIndex` — element postings.
* :class:`~repro.containment.lcjoin.ContainmentJoin` — rarest-first
  list-crosscutting containment join.
* :class:`~repro.containment.trie.TrieJoin` — prefix-tree containment
  join (the TT-Join-style alternative index family).
"""

from repro.containment.inverted import InvertedIndex
from repro.containment.lcjoin import ContainmentJoin
from repro.containment.records import RecordSet
from repro.containment.trie import TrieJoin

__all__ = ["InvertedIndex", "ContainmentJoin", "RecordSet", "TrieJoin"]
