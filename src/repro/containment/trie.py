"""Prefix-tree (trie) set-containment join — the TT-Join-style baseline.

The set-containment-join literature the paper surveys splits into two
index families: inverted lists intersected rarest-first (LC-Join, in
:mod:`repro.containment.lcjoin`) and **prefix trees** over
frequency-ordered records (TT-Join / PieJoin).  This module implements
the trie flavor so the package carries one representative of each:

* data records are sorted by a global element order (rarest element
  first — the standard trick that maximizes prefix sharing near the
  root) and inserted as root-to-node paths, with record IDs stored at
  their end nodes;
* a containment probe ``q`` (find data records ⊇ ``q``) walks the trie
  keeping a pointer into ``q``'s rank-sorted elements: a child edge
  either matches the next required element, is an "extra" element of a
  superset (rank below the required one — descend without advancing),
  or has already skipped past the required rank (prune — path elements
  ascend in rank, so the requirement can never be met below).

Complexity is output-sensitive: the search only branches into subtrees
whose next element does not "skip past" the probe's next required
element.  The tests cross-check it against both brute force and the
crosscutting join.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.containment.records import RecordSet

__all__ = ["TrieJoin"]


class _Node:
    __slots__ = ("children", "ending")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.ending: list[int] = []


class TrieJoin:
    """Trie-indexed set-containment join over a data :class:`RecordSet`.

    >>> data = RecordSet([{1, 2, 3}, {2, 3}, {4}])
    >>> TrieJoin(data).containing_records((2, 3))
    [0, 1]
    """

    def __init__(self, data: RecordSet):
        self._data = data
        # Global order: rarer elements first, so prefixes discriminate
        # early; ties by element value for determinism.
        frequency = Counter()
        for record in data:
            frequency.update(record)
        self._order = {
            x: position
            for position, (x, _count) in enumerate(
                sorted(
                    frequency.items(), key=lambda item: (item[1], item[0])
                )
            )
        }
        self._root = _Node()
        self._node_count = 1
        for rid, record in enumerate(data):
            self._insert(rid, record)

    def _insert(self, rid: int, record: tuple[int, ...]) -> None:
        node = self._root
        for x in sorted(record, key=self._order.__getitem__):
            nxt = node.children.get(x)
            if nxt is None:
                nxt = _Node()
                node.children[x] = nxt
                self._node_count += 1
            node = nxt
        node.ending.append(rid)

    def containing_records(
        self, probe: tuple[int, ...], *, limit: Optional[int] = None
    ) -> list[int]:
        """All record IDs whose record is a superset of ``probe``.

        Elements never seen in the data cannot be contained anywhere.
        An empty probe matches every record.
        """
        order = self._order
        for x in probe:
            if x not in order:
                return []
        required = sorted(set(probe), key=order.__getitem__)
        results: list[int] = []

        def walk(node: _Node, next_required: int) -> bool:
            """DFS; returns False once ``limit`` results are collected."""
            if next_required == len(required):
                # Everything below (and records ending here) qualifies.
                return _collect_subtree(node, results, limit)
            target = required[next_required]
            target_rank = order[target]
            for element, child in node.children.items():
                rank = order[element]
                if rank > target_rank:
                    # Paths are rank-sorted: the target can no longer
                    # appear below this child.
                    continue
                matched = next_required + (1 if element == target else 0)
                if not walk(child, matched):
                    return False
            return True

        walk(self._root, 0)
        results.sort()
        return results[:limit] if limit is not None else results

    @property
    def node_count(self) -> int:
        """Number of trie nodes (the index-size metric)."""
        return self._node_count


def _collect_subtree(
    node: _Node, results: list[int], limit: Optional[int]
) -> bool:
    results.extend(node.ending)
    if limit is not None and len(results) >= limit:
        return False
    for child in node.children.values():
        if not _collect_subtree(child, results, limit):
            return False
    return True
