"""Record collections for set-containment queries and joins.

The paper frames neighborhood-inclusion discovery as a *set containment
join*: the data set ``S`` holds one record per vertex (``N[i]``), the
query set ``Q`` another (``N(i)``), and the join finds, for each query,
every record that contains it.  This module provides the generic record
container the join algorithms operate on, independent of graphs, so the
containment machinery is reusable (and testable) on arbitrary set data.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ParameterError

__all__ = ["RecordSet"]


class RecordSet:
    """An indexed collection of integer-set records.

    Records are stored as sorted tuples.  Element values must be
    non-negative ints; the *universe* size (max element + 1) is tracked
    for index sizing.
    """

    __slots__ = ("_records", "_universe")

    def __init__(self, records: Iterable[Iterable[int]]):
        stored: list[tuple[int, ...]] = []
        universe = 0
        for record in records:
            ordered = tuple(sorted(set(record)))
            if ordered and ordered[0] < 0:
                raise ParameterError(
                    f"record elements must be >= 0, got {ordered[0]}"
                )
            if ordered:
                universe = max(universe, ordered[-1] + 1)
            stored.append(ordered)
        self._records = stored
        self._universe = universe

    @property
    def universe(self) -> int:
        """Smallest ``U`` such that every element is in ``[0, U)``."""
        return self._universe

    def record(self, i: int) -> tuple[int, ...]:
        """The ``i``-th record as a sorted tuple."""
        return self._records[i]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def total_elements(self) -> int:
        """Sum of record cardinalities (the index's memory driver)."""
        return sum(len(r) for r in self._records)

    @classmethod
    def closed_neighborhoods(cls, graph) -> "RecordSet":
        """The paper's data set ``S``: record ``i`` is ``N[i]``."""
        return cls(
            graph.closed_neighborhood(u) for u in graph.vertices()
        )

    @classmethod
    def open_neighborhoods(cls, graph) -> "RecordSet":
        """The paper's query set ``Q``: record ``i`` is ``N(i)``."""
        return cls(graph.neighbors(u) for u in graph.vertices())

    @staticmethod
    def contains(big: Sequence[int], small: Sequence[int]) -> bool:
        """``True`` iff sorted ``small`` ⊆ sorted ``big`` (linear merge)."""
        i, len_big = 0, len(big)
        for x in small:
            while i < len_big and big[i] < x:
                i += 1
            if i == len_big or big[i] != x:
                return False
            i += 1
        return True
