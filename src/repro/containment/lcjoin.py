"""Set-containment join via list crosscutting (LC-Join style).

Given a query set ``Q`` and a data set ``S``, find for every query
``q`` all records ``s ∈ S`` with ``q ⊆ s``.  The core idea of LC-Join
(Deng et al., ICDE'19) as used here: the answer set for ``q`` is the
intersection of the inverted-index posting lists of ``q``'s elements, and
intersecting *from the rarest list outward* ("crosscutting") keeps the
intermediate candidate sets small with early termination as soon as the
intersection becomes empty.

Two kernels compute that intersection:

* **scalar** — the classic rarest-first crosscut: pairwise sorted
  intersections (galloping binary search), early exit on empty.  Runs
  everywhere; the differential oracle for the vector kernel.
* **vector** — a counting-identity pass over the *concatenated*
  postings: every posting holds each record ID at most once (records
  are deduplicated sets), so a record contains the query iff its ID
  occurs once per query element, i.e. iff
  ``np.bincount(concat)[r] == len(query)``.  One ``np.concatenate`` +
  ``np.bincount`` + ``np.nonzero`` replaces the whole per-element
  intersection chain, and ``np.nonzero``'s ascending output is exactly
  the scalar crosscut's result order.

``kernel="auto"`` picks per index via :func:`choose_join_kernel`,
mirroring the refine phase's ``choose_refine_kernel`` cutover: scalar
without numpy or on indexes too small to amortize ndarray overhead,
vector otherwise.  Both kernels return identical record-ID lists, so
the choice is purely an execution knob.

This module is generic over :class:`RecordSet`; the skyline-specific
adapter lives in :mod:`repro.core.join_sky`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.containment.inverted import InvertedIndex
from repro.containment.records import RecordSet
from repro.errors import ParameterError

try:  # pragma: no cover - scalar fallback exercised via monkeypatching
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["ContainmentJoin", "choose_join_kernel"]

#: Below this many total posting entries the whole index is so small
#: that ndarray call overhead beats the bincount pass — stay scalar.
JOIN_KERNEL_MIN_ENTRIES = 256

#: ``np.intersect1d`` floor for the scalar crosscut's pairwise step:
#: both sides must be at least this long (and ndarrays) before the
#: vectorized set intersection beats the galloping loop's early exits.
INTERSECT_VECTOR_MIN = 16


def _intersect_sorted(a, b):
    """Intersection of two sorted unique sequences of ints.

    Lists or ndarrays; ndarrays of at least :data:`INTERSECT_VECTOR_MIN`
    on both sides take the ``np.intersect1d`` fast path
    (``assume_unique`` holds: postings and their intersections never
    repeat an ID).  Both paths return the same IDs in ascending order.
    """
    if (
        _np is not None
        and isinstance(a, _np.ndarray)
        and isinstance(b, _np.ndarray)
        and len(a) >= INTERSECT_VECTOR_MIN
        and len(b) >= INTERSECT_VECTOR_MIN
    ):
        return _np.intersect1d(a, b, assume_unique=True)
    if len(a) > len(b):
        a, b = b, a
    out: list[int] = []
    from bisect import bisect_left

    lo = 0
    len_b = len(b)
    for x in a:
        lo = bisect_left(b, x, lo)
        if lo == len_b:
            break
        if b[lo] == x:
            out.append(x)
            lo += 1
    return out


def choose_join_kernel(total_entries: int, num_records: int) -> str:
    """The ``kernel="auto"`` cutover: ``"scalar"`` or ``"vector"``.

    * no numpy → ``"scalar"`` (the only kernel that runs everywhere);
    * tiny indexes (< :data:`JOIN_KERNEL_MIN_ENTRIES` posting entries)
      → ``"scalar"`` (ndarray call overhead dominates);
    * extremely sparse indexes (``total_entries * 8 < num_records``)
      → ``"scalar"`` (the bincount's ``minlength=num_records`` zeroing
      outweighs the few entries actually counted);
    * everything else → ``"vector"``.
    """
    if _np is None:
        return "scalar"
    if total_entries < JOIN_KERNEL_MIN_ENTRIES:
        return "scalar"
    if total_entries * 8 < num_records:
        return "scalar"
    return "vector"


class ContainmentJoin:
    """Joins a query :class:`RecordSet` against a data :class:`RecordSet`.

    ``kernel`` is ``"auto"`` (pick via :func:`choose_join_kernel`),
    ``"scalar"`` or ``"vector"``; an explicit ``"vector"`` without
    numpy falls back to scalar.  Identical results either way.

    >>> data = RecordSet([{1, 2, 3}, {2, 3}, {4}])
    >>> queries = RecordSet([{2, 3}])
    >>> ContainmentJoin(data).containing_records(queries.record(0))
    [0, 1]
    """

    def __init__(self, data: RecordSet, *, kernel: str = "auto"):
        if kernel not in ("auto", "scalar", "vector"):
            raise ParameterError(
                f"unknown join kernel {kernel!r}; choose 'auto', "
                "'scalar' or 'vector'"
            )
        self._data = data
        self._index = InvertedIndex(data)
        if kernel == "auto":
            kernel = choose_join_kernel(
                self._index.memory_entries(), len(data)
            )
        elif kernel == "vector" and _np is None:
            kernel = "scalar"
        self._kernel = kernel

    @property
    def index(self) -> InvertedIndex:
        """The underlying inverted index (exposed for memory accounting)."""
        return self._index

    @property
    def kernel(self) -> str:
        """The resolved intersection kernel (``"scalar"``/``"vector"``)."""
        return self._kernel

    def containing_records(
        self, query: tuple[int, ...], *, limit: Optional[int] = None
    ) -> list[int]:
        """All record IDs whose record is a superset of ``query``.

        An empty query matches every record (standard join semantics; the
        skyline adapter special-cases isolated vertices before calling).
        ``limit`` stops early once that many results are known — the
        skyline use only needs to know whether a suitable dominator
        exists at all.  Always a fresh list of Python ints, never a view
        of index internals.
        """
        if not query:
            result = list(range(len(self._data)))
            return result[:limit] if limit is not None else result
        if self._kernel == "vector":
            return self._containing_vector(query, limit)
        # Crosscutting: intersect posting lists rarest-first.
        lists = sorted(
            (self._index.postings(x) for x in query), key=len
        )
        candidates = lists[0]
        for postings in lists[1:]:
            if not len(candidates):
                return []
            candidates = _intersect_sorted(candidates, postings)
        if limit is not None:
            candidates = candidates[:limit]
        return [int(r) for r in candidates]

    def _containing_vector(
        self, query: tuple[int, ...], limit: Optional[int]
    ) -> list[int]:
        """Counting-identity kernel (see module docstring)."""
        postings = self._index.postings
        lists = [postings(x) for x in query]
        for p in lists:
            if not len(p):
                return []
        if len(lists) == 1:
            hits = lists[0]
        else:
            counts = _np.bincount(
                _np.concatenate(lists), minlength=len(self._data)
            )
            hits = _np.nonzero(counts == len(lists))[0]
        if limit is not None:
            hits = hits[:limit]
        return [int(r) for r in hits]

    def join(
        self, queries: RecordSet
    ) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(query_id, [record ids containing it])`` for all queries."""
        for qid in range(len(queries)):
            yield qid, self.containing_records(queries.record(qid))
