"""Set-containment join via list crosscutting (LC-Join style).

Given a query set ``Q`` and a data set ``S``, find for every query
``q`` all records ``s ∈ S`` with ``q ⊆ s``.  The core idea of LC-Join
(Deng et al., ICDE'19) as used here: the answer set for ``q`` is the
intersection of the inverted-index posting lists of ``q``'s elements, and
intersecting *from the rarest list outward* ("crosscutting") keeps the
intermediate candidate sets small with early termination as soon as the
intersection becomes empty.

This module is generic over :class:`RecordSet`; the skyline-specific
adapter lives in :mod:`repro.core.join_sky`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.containment.inverted import InvertedIndex
from repro.containment.records import RecordSet

__all__ = ["ContainmentJoin"]


def _intersect_sorted(a: list[int], b: list[int]) -> list[int]:
    """Intersection of two sorted int lists (galloping on the longer)."""
    if len(a) > len(b):
        a, b = b, a
    out: list[int] = []
    from bisect import bisect_left

    lo = 0
    len_b = len(b)
    for x in a:
        lo = bisect_left(b, x, lo)
        if lo == len_b:
            break
        if b[lo] == x:
            out.append(x)
            lo += 1
    return out


class ContainmentJoin:
    """Joins a query :class:`RecordSet` against a data :class:`RecordSet`.

    >>> data = RecordSet([{1, 2, 3}, {2, 3}, {4}])
    >>> queries = RecordSet([{2, 3}])
    >>> ContainmentJoin(data).containing_records(queries.record(0))
    [0, 1]
    """

    def __init__(self, data: RecordSet):
        self._data = data
        self._index = InvertedIndex(data)

    @property
    def index(self) -> InvertedIndex:
        """The underlying inverted index (exposed for memory accounting)."""
        return self._index

    def containing_records(
        self, query: tuple[int, ...], *, limit: Optional[int] = None
    ) -> list[int]:
        """All record IDs whose record is a superset of ``query``.

        An empty query matches every record (standard join semantics; the
        skyline adapter special-cases isolated vertices before calling).
        ``limit`` stops early once that many results are known — the
        skyline use only needs to know whether a suitable dominator
        exists at all.
        """
        if not query:
            result = list(range(len(self._data)))
            return result[:limit] if limit is not None else result
        # Crosscutting: intersect posting lists rarest-first.
        lists = sorted(
            (self._index.postings(x) for x in query), key=len
        )
        candidates = lists[0]
        for postings in lists[1:]:
            if not candidates:
                return []
            candidates = _intersect_sorted(candidates, postings)
        return candidates[:limit] if limit is not None else candidates

    def join(
        self, queries: RecordSet
    ) -> Iterator[tuple[int, list[int]]]:
        """Yield ``(query_id, [record ids containing it])`` for all queries."""
        for qid in range(len(queries)):
            yield qid, self.containing_records(queries.record(qid))
