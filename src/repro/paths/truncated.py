"""Truncated ("pruned") BFS for greedy marginal-gain evaluation.

The engineering heart of Greedy++ / Greedy-H: when evaluating how much a
candidate ``u`` would improve a group ``S``, a full BFS from ``u`` is
wasted work — only vertices whose distance to ``S ∪ {u}`` is *smaller*
than their current ``d(v, S)`` matter.  :func:`improvements` runs a BFS
from ``u`` that expands a vertex only while the new tentative distance
still undercuts the current one, and reports exactly the improved
vertices.  On graphs where ``S`` already covers most of the graph the
frontier dies after a couple of levels, which is what makes the greedy
algorithms scale.

Correctness of the pruning: distances along a BFS tree grow by one per
level, while ``d(v, S)`` can drop by at most one per hop (it is
1-Lipschitz along edges); so once ``new_dist >= current[v]``, no
descendant of ``v`` on that path can improve either — expanding it is
provably useless.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.graph.adjacency import Graph

__all__ = ["improvements", "gain_sum"]


def improvements(
    graph: Graph,
    source: int,
    current: list[int],
) -> Iterator[tuple[int, int, int]]:
    """Yield ``(v, old_dist, new_dist)`` for vertices improved by ``source``.

    ``current[v]`` is ``d(v, S)`` with ``-1`` meaning unreachable; the
    tuple stream reports every vertex ``v`` (including ``source`` itself)
    for which ``d(v, S ∪ {source}) < d(v, S)``, with the old and new
    distances (old ``-1`` stands for infinity).

    The caller aggregates the stream into whatever gain function it
    needs — closeness sums ``old - new``, harmonic sums
    ``1/new - 1/old`` — so one traversal serves every measure.
    """
    n = graph.num_vertices
    # Tentative new distances; -2 = untouched in this traversal.
    new_dist = [-2] * n
    cur_src = current[source]
    if cur_src != -1 and cur_src <= 0:
        return  # source already in S (distance 0): nothing can improve
    new_dist[source] = 0
    yield (source, cur_src, 0)
    queue = deque((source,))
    neighbors = graph.neighbors
    while queue:
        u = queue.popleft()
        next_level = new_dist[u] + 1
        for v in neighbors(u):
            if new_dist[v] != -2:
                continue
            cur = current[v]
            if cur != -1 and cur <= next_level:
                # No improvement here, and (by the Lipschitz argument)
                # none further along this branch either.
                continue
            new_dist[v] = next_level
            yield (v, cur, next_level)
            queue.append(v)


def gain_sum(
    graph: Graph,
    source: int,
    current: list[int],
    weight: Callable[[int, int], float],
) -> float:
    """Aggregate ``weight(old, new)`` over all improvements of ``source``."""
    return sum(
        weight(old, new) for _v, old, new in improvements(graph, source, current)
    )
