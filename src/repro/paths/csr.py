"""Flat-array CSR BFS kernels for greedy marginal-gain evaluation.

The list-based kernels in :mod:`repro.paths.bfs` and
:mod:`repro.paths.truncated` are fine for one-shot queries, but the
greedy group-centrality drivers call them thousands of times per run —
one truncated BFS per candidate per round.  At that call rate the
per-evaluation overheads dominate: a fresh ``new_dist`` list and deque
per call, a generator suspension plus tuple allocation per improved
vertex, and a Python-level ``gain_weight`` call per improvement.

:class:`CSRTraversal` removes all three.  It is built once per run (or
once per worker process) from the graph's :meth:`~repro.graph.adjacency.
Graph.to_csr` snapshot with neighbor IDs narrowed to ``array('i')``.
The flat array is the *snapshot* format — compact, picklable in one
piece, shipped once per worker — but CPython boxes a fresh ``int`` on
every ``array('i')`` index access, so the constructor unpacks it a
single time into per-row list views (``_rows[u]`` is the ``u``-th CSR
row as a plain list) and the hot loops iterate those at C speed; on a
~6k-vertex instance that one-time unpack makes each BFS ~3x faster
than indexing the flat array directly.  Two preallocated scratch
buffers are reused across evaluations:

* ``new_dist`` — tentative distances, ``-2`` meaning untouched; reset
  after each traversal by touching only the visited vertices;
* ``queue`` — a flat FIFO whose prefix, after a traversal, lists the
  improved vertices **in the exact order** the generator version yields
  them (source first, then FIFO discovery order over sorted rows).

That ordering guarantee is what makes the gain kernels bit-for-bit
compatible with the eager driver: gains are float sums, and floating-
point addition is not associative, so the specialized evaluators below
replicate :mod:`repro.paths.truncated` + ``gain_weight`` term by term
in the same order with the same arithmetic — closeness accumulates
integer farness drops (exact in either representation), harmonic adds
``1.0/new - old_term`` as one fused expression exactly as
:class:`~repro.centrality.group_harmonic_max.HarmonicObjective` does.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Optional, Sequence

from repro.graph.adjacency import Graph

__all__ = ["CSRTraversal", "make_evaluator"]


class CSRTraversal:
    """Reusable BFS workspace over a CSR snapshot of one graph.

    Instances are cheap to query but stateful: the scratch buffers are
    reused by every call, so a single traversal must finish before the
    next one starts (no interleaving, no sharing across threads).
    """

    __slots__ = ("n", "indptr", "indices", "_rows", "_new_dist", "_queue")

    def __init__(self, indptr: Sequence[int], indices: Sequence[int]):
        n = len(indptr) - 1
        self.n = n
        self.indptr = indptr
        #: Neighbor IDs, narrowed to 32-bit — vertex IDs always fit.
        self.indices = (
            indices if isinstance(indices, array) and indices.typecode == "i"
            else array("i", indices)
        )
        # Unpack the flat snapshot once into per-row list views: list
        # iteration avoids the per-access int boxing of array('i') in
        # the traversal loops (see the module docstring).
        flat = self.indices.tolist()
        self._rows = [flat[indptr[u]:indptr[u + 1]] for u in range(n)]
        self._new_dist = [-2] * n
        self._queue = [0] * n

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRTraversal":
        indptr, indices = graph.to_csr()
        return cls(indptr, indices)

    # ------------------------------------------------------------------
    # Full BFS (CSR rebuilds of repro.paths.bfs)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> list[int]:
        """Distances from ``source``; ``-1`` if unreachable."""
        rows = self._rows
        queue = self._queue
        dist = [-1] * self.n
        dist[source] = 0
        queue[0] = source
        head, tail = 0, 1
        while head < tail:
            u = queue[head]
            head += 1
            next_level = dist[u] + 1
            for v in rows[u]:
                if dist[v] == -1:
                    dist[v] = next_level
                    queue[tail] = v
                    tail += 1
        return dist

    def multi_source_distances(self, sources: Iterable[int]) -> list[int]:
        """``dist[v] = min over s in sources of d(v, s)``; ``-1`` unreachable."""
        rows = self._rows
        queue = self._queue
        dist = [-1] * self.n
        tail = 0
        for s in sources:
            if dist[s] != 0:
                dist[s] = 0
                queue[tail] = s
                tail += 1
        head = 0
        while head < tail:
            u = queue[head]
            head += 1
            next_level = dist[u] + 1
            for v in rows[u]:
                if dist[v] == -1:
                    dist[v] = next_level
                    queue[tail] = v
                    tail += 1
        return dist

    # ------------------------------------------------------------------
    # Truncated gain BFS (CSR rebuild of repro.paths.truncated)
    # ------------------------------------------------------------------
    def _scan(self, source: int, current: Sequence[int]) -> int:
        """Run the pruned BFS; return the number of improved vertices.

        On return ``_queue[:count]`` lists the improved vertices in
        emission order and ``_new_dist`` holds their new distances.  The
        caller must sweep the prefix and restore ``_new_dist`` to ``-2``
        for every listed vertex before the next traversal.
        """
        cur_src = current[source]
        if cur_src != -1 and cur_src <= 0:
            return 0  # source already in S: nothing can improve
        rows = self._rows
        new_dist = self._new_dist
        queue = self._queue
        new_dist[source] = 0
        queue[0] = source
        head, tail = 0, 1
        while head < tail:
            u = queue[head]
            head += 1
            next_level = new_dist[u] + 1
            for v in rows[u]:
                if new_dist[v] != -2:
                    continue
                cur = current[v]
                if cur != -1 and cur <= next_level:
                    continue
                new_dist[v] = next_level
                queue[tail] = v
                tail += 1
        return tail

    def improvements(
        self, source: int, current: Sequence[int]
    ) -> list[tuple[int, int, int]]:
        """Materialized ``(v, old, new)`` stream of the pruned BFS.

        Equal, element for element, to
        ``list(repro.paths.truncated.improvements(graph, source, current))``.
        """
        count = self._scan(source, current)
        new_dist = self._new_dist
        queue = self._queue
        out = []
        for i in range(count):
            v = queue[i]
            new = new_dist[v]
            new_dist[v] = -2
            out.append((v, current[v], new))
        return out

    def closeness_eval(
        self,
        source: int,
        current: Sequence[int],
        penalty: int,
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Farness-drop gain of adding ``source``; optionally the updates.

        Every term is an integer, and integer-valued floats sum exactly,
        so accumulating in int and converting once equals the eager
        driver's float-by-float sum bit for bit.
        """
        count = self._scan(source, current)
        updates = [] if collect else None
        total = 0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                total += (penalty if old == -1 else old) - new
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                total += (penalty if old == -1 else old) - new
        return float(total), updates

    def harmonic_eval(
        self,
        source: int,
        current: Sequence[int],
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Harmonic-delta gain of adding ``source``; optionally the updates.

        The accumulation replicates ``HarmonicObjective.gain_weight``
        term by term — ``1.0/new - old_term`` as one expression — in
        emission order, so the float result is the eager driver's.
        """
        count = self._scan(source, current)
        updates = [] if collect else None
        gain = 0.0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                old_term = 0.0 if old == -1 else 1.0 / old
                if new == 0:
                    gain += -old_term
                else:
                    gain += 1.0 / new - old_term
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                old_term = 0.0 if old == -1 else 1.0 / old
                if new == 0:
                    gain += -old_term
                else:
                    gain += 1.0 / new - old_term
        return gain, updates

    def generic_eval(
        self,
        source: int,
        current: Sequence[int],
        weight: Callable[[int, int], float],
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Gain under an arbitrary ``gain_weight``; optionally the updates."""
        count = self._scan(source, current)
        updates = [] if collect else None
        gain = 0.0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                gain += weight(current[v], new)
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                gain += weight(current[v], new)
        return gain, updates


def make_evaluator(trav: CSRTraversal, objective):
    """Bind ``objective`` to its fastest CSR kernel.

    Returns ``evaluate(source, current, collect) -> (gain, updates)``.
    Objectives advertise a specialized kernel via a ``csr_kernel`` class
    attribute (``"closeness"`` carries its unreachable-penalty in a
    public ``penalty`` attribute); anything else falls back to the
    generic kernel driving ``objective.gain_weight`` per improvement —
    still one traversal, just with a Python call per term.
    """
    kernel = getattr(objective, "csr_kernel", None)
    if kernel == "closeness":
        penalty = objective.penalty
        closeness_eval = trav.closeness_eval

        def evaluate(source, current, collect=True):
            return closeness_eval(source, current, penalty, collect)

        return evaluate
    if kernel == "harmonic":
        return trav.harmonic_eval
    weight = objective.gain_weight
    generic_eval = trav.generic_eval

    def evaluate(source, current, collect=True):
        return generic_eval(source, current, weight, collect)

    return evaluate
