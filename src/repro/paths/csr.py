"""Flat-array CSR BFS kernels for greedy marginal-gain evaluation.

The list-based kernels in :mod:`repro.paths.bfs` and
:mod:`repro.paths.truncated` are fine for one-shot queries, but the
greedy group-centrality drivers call them thousands of times per run —
one truncated BFS per candidate per round.  At that call rate the
per-evaluation overheads dominate: a fresh ``new_dist`` list and deque
per call, a generator suspension plus tuple allocation per improved
vertex, and a Python-level ``gain_weight`` call per improvement.

:class:`CSRTraversal` removes all three.  It is built once per run (or
once per worker process) from the graph's :meth:`~repro.graph.adjacency.
Graph.to_csr` snapshot and accepts any CSR buffer shape the engines
produce: ``array`` snapshots of the list-backed graph, the ``int32``
ndarrays of :class:`~repro.graph.csr.CSRGraph`, or the typed
memoryviews a shared-memory worker attaches.  Internally it keeps:

* **one flat Python-int list** of the neighbor IDs (``tolist()`` — one
  pass, no per-access boxing ever again) plus per-row slice views
  materialized lazily and cached, so the scalar traversal loops iterate
  plain lists at C speed while a worker that scans a fraction of the
  graph only pays for the rows it touches;
* **zero-copy ndarray views** of ``indptr``/``indices`` when numpy is
  available, which back the vectorized level-synchronous full-BFS
  kernels (:meth:`bfs_distances` / :meth:`multi_source_distances` index
  the ndarrays directly — distances are order-independent, so the
  vectorized frontier expansion returns exactly the scalar kernel's
  values);
* two preallocated scratch buffers reused across evaluations:
  ``new_dist`` (tentative distances, ``-2`` meaning untouched) and
  ``queue`` (a flat FIFO whose prefix, after a traversal, lists the
  improved vertices **in the exact order** the generator version yields
  them — source first, then FIFO discovery order over sorted rows).

That ordering guarantee is what makes the gain kernels bit-for-bit
compatible with the eager driver: gains are float sums, and floating-
point addition is not associative, so the specialized evaluators below
replicate :mod:`repro.paths.truncated` + ``gain_weight`` term by term
in the same order with the same arithmetic — closeness accumulates
integer farness drops (exact in either representation), harmonic adds
``1.0/new - old_term`` as one fused expression exactly as
:class:`~repro.centrality.group_harmonic_max.HarmonicObjective` does.

**Batched gain plane.**  The pruned gain scan *also* vectorizes, despite
its emission-order contract: :meth:`CSRTraversal._batch_scan` runs one
vectorized pruned BFS per source lane, all lanes sharing one ``n``-cell
distance scratch (cleaned per lane), and reconstructs each lane's scalar
emission order exactly.  The trick is the same first-occurrence gather
:mod:`repro.core.block_refine` proved out: within one level the ragged
``np.repeat`` row gather visits parents in frontier order and neighbors
in row order — precisely the scalar FIFO discovery order — so deduping
same-level rediscoveries by *first occurrence* (a linear reversed
scatter-claim, not a sort) leaves every lane's per-level emission
sequence identical to its scalar ``_scan``.  Levels concatenate
level-major, which is FIFO order, so the batched evaluators can replay
the scalar float accumulation term by term: closeness sums integer
drops per lane (order-free, exact via one ``np.bincount``), harmonic
computes all ``1.0/new - old_term`` terms vectorized (elementwise IEEE
arithmetic equals CPython's) and then adds them sequentially in
emission order, and the generic kernel feeds ``gain_weight`` the same
``(old, new)`` stream the scalar loop would.  The result:
``batch_*_eval(sources, ...)`` returns the *bitwise same*
``(gain, updates)`` pairs as ``B`` scalar ``*_eval`` calls, one numpy
pass per frontier level instead of one Python loop iteration per edge.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph

try:  # pragma: no cover - scalar fallback exercised via monkeypatching
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "CSRTraversal",
    "choose_gain_batch",
    "make_batch_evaluator",
    "make_evaluator",
    "resolve_gain_batch",
    "validate_gain_batch",
]

#: ``auto`` batching never engages below this vertex count: the scalar
#: kernels' per-call overhead is already negligible there, and batch=1
#: keeps the legacy code path (and its test coverage) exact.
GAIN_BATCH_MIN_VERTICES = 256

#: Soft budget on ``B * n`` emission cells per auto-sized kernel call
#: (the per-call concatenated emission arrays are the only allocation
#: that scales with ``B``).  ``auto`` lane counts are ``budget // n``
#: capped at :data:`GAIN_BATCH_MAX_LANES`.
GAIN_BATCH_CELL_BUDGET = 1 << 23

#: Auto-sizing lane cap; in the CELF drain ``B`` is also the
#: speculation width, and past ~64 lanes the extra speculative scans
#: rarely pay for themselves.
GAIN_BATCH_MAX_LANES = 64

#: Hard cap on ``B * n`` cells for *explicit* batch requests: an
#: oversized ``--gain-batch`` is clamped, never allowed to materialize
#: arbitrarily large per-call emission arrays.
GAIN_BATCH_CELL_CAP = 1 << 24

#: memoryview/array format codes mapped to numpy dtypes for zero-copy
#: ndarray views over attached shared-memory buffers.
_FORMAT_DTYPES = {
    "i": "int32",
    "I": "uint32",
    "l": "int64",
    "L": "uint64",
    "q": "int64",
    "Q": "uint64",
}


def _ndarray_view(buf):
    """``buf`` as a zero-copy integer ndarray, or ``None`` if impossible."""
    if _np is None:
        return None
    if isinstance(buf, _np.ndarray):
        return buf
    try:
        mv = memoryview(buf)
    except TypeError:
        return None
    dtype = _FORMAT_DTYPES.get(mv.format)
    if dtype is None:
        return None
    return _np.frombuffer(mv, dtype=dtype)


class CSRTraversal:
    """Reusable BFS workspace over a CSR snapshot of one graph.

    Instances are cheap to query but stateful: the scratch buffers are
    reused by every call, so a single traversal must finish before the
    next one starts (no interleaving, no sharing across threads).
    """

    __slots__ = (
        "n",
        "indptr",
        "indices",
        "_starts",
        "_flat",
        "_rows",
        "_nd_indptr",
        "_nd_indices",
        "_nd_indptr64",
        "_nd_dist",
        "_batch_block",
        "_batch_claim",
        "_claim_tick",
        "_new_dist",
        "_queue",
    )

    def __init__(self, indptr: Sequence[int], indices: Sequence[int]):
        n = len(indptr) - 1
        self.n = n
        self.indptr = indptr
        self.indices = indices
        # One normalization pass: plain Python ints for the scalar
        # loops (array/memoryview/ndarray all support tolist()).
        self._starts = (
            indptr.tolist() if hasattr(indptr, "tolist") else list(indptr)
        )
        self._flat = (
            indices.tolist() if hasattr(indices, "tolist")
            else list(indices)
        )
        #: Lazily cached per-row list views of ``_flat`` — hot loops
        #: iterate plain lists; untouched rows cost nothing.
        self._rows: list = [None] * n
        # Zero-copy ndarray views for the vectorized full-BFS kernels.
        self._nd_indptr = _ndarray_view(indptr)
        self._nd_indices = _ndarray_view(indices)
        # Lazily allocated vector scratch, reused across calls: the
        # widened indptr, the full-BFS distance array, and the flat
        # (B, n) distance block of the batched gain kernel.
        self._nd_indptr64 = None
        self._nd_dist = None
        self._batch_block = None
        self._batch_claim = None
        self._claim_tick = 1
        self._new_dist = [-2] * n
        self._queue = [0] * n

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRTraversal":
        indptr, indices = graph.to_csr()
        return cls(indptr, indices)

    @property
    def supports_batch(self) -> bool:
        """Whether the batched gain plane is available (numpy + ndarray
        views over the CSR buffers)."""
        return _np is not None and self._nd_indptr is not None

    def _row(self, u: int) -> list:
        row = self._rows[u]
        if row is None:
            starts = self._starts
            row = self._flat[starts[u] : starts[u + 1]]
            self._rows[u] = row
        return row

    # ------------------------------------------------------------------
    # Full BFS (CSR rebuilds of repro.paths.bfs)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> list[int]:
        """Distances from ``source``; ``-1`` if unreachable."""
        if self._nd_indptr is not None:
            return self._frontier_distances((source,))
        return self._scalar_distances((source,))

    def multi_source_distances(self, sources: Iterable[int]) -> list[int]:
        """``dist[v] = min over s in sources of d(v, s)``; ``-1`` unreachable."""
        if self._nd_indptr is not None:
            return self._frontier_distances(sources)
        return self._scalar_distances(sources)

    def _indptr64(self):
        """``indptr`` as int64, widened once and cached (row math needs
        int64 to survive ``lane * n`` key arithmetic and large cumsums)."""
        cached = self._nd_indptr64
        if cached is None:
            nd = self._nd_indptr
            cached = nd if nd.dtype == _np.int64 else nd.astype(_np.int64)
            self._nd_indptr64 = cached
        return cached

    def _dist_scratch(self):
        """The reusable full-BFS distance array, reset to all ``-1``."""
        dist = self._nd_dist
        if dist is None:
            dist = _np.empty(self.n, dtype=_np.int64)
            self._nd_dist = dist
        dist.fill(-1)
        return dist

    def _frontier_distances(self, sources: Iterable[int]) -> list[int]:
        """Vectorized level-synchronous BFS over the ndarray views.

        Per level: gather every frontier row with one fancy-index
        expansion, keep the unvisited targets, stamp their level.
        Distances are order-independent, so this equals the scalar FIFO
        kernel exactly.  The distance array and the widened ``indptr``
        are preallocated scratch reused across calls — the greedy round
        loops call this thousands of times, and the O(n) allocation per
        call used to dominate small-frontier queries.
        """
        indptr = self._indptr64()
        indices = self._nd_indices
        dist = self._dist_scratch()
        frontier = _np.unique(_np.fromiter(sources, dtype=_np.int64))
        if frontier.size == 0:
            return dist.tolist()
        dist[frontier] = 0
        level = 0
        while frontier.size:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            cum = _np.cumsum(counts)
            slots = (
                _np.repeat(starts - (cum - counts), counts)
                + _np.arange(total, dtype=_np.int64)
            )
            targets = indices[slots]
            fresh = _np.unique(targets[dist[targets] == -1])
            if fresh.size == 0:
                break
            level += 1
            dist[fresh] = level
            frontier = fresh
        return dist.tolist()

    def _scalar_distances(self, sources: Iterable[int]) -> list[int]:
        queue = self._queue
        dist = [-1] * self.n
        tail = 0
        for s in sources:
            if dist[s] != 0:
                dist[s] = 0
                queue[tail] = s
                tail += 1
        head = 0
        rows = self._rows
        while head < tail:
            u = queue[head]
            head += 1
            next_level = dist[u] + 1
            row = rows[u]
            if row is None:
                row = self._row(u)
            for v in row:
                if dist[v] == -1:
                    dist[v] = next_level
                    queue[tail] = v
                    tail += 1
        return dist

    # ------------------------------------------------------------------
    # Truncated gain BFS (CSR rebuild of repro.paths.truncated)
    # ------------------------------------------------------------------
    def _scan(self, source: int, current: Sequence[int]) -> int:
        """Run the pruned BFS; return the number of improved vertices.

        On return ``_queue[:count]`` lists the improved vertices in
        emission order and ``_new_dist`` holds their new distances.  The
        caller must sweep the prefix and restore ``_new_dist`` to ``-2``
        for every listed vertex before the next traversal.
        """
        cur_src = current[source]
        if cur_src != -1 and cur_src <= 0:
            return 0  # source already in S: nothing can improve
        rows = self._rows
        new_dist = self._new_dist
        queue = self._queue
        new_dist[source] = 0
        queue[0] = source
        head, tail = 0, 1
        while head < tail:
            u = queue[head]
            head += 1
            next_level = new_dist[u] + 1
            row = rows[u]
            if row is None:
                row = self._row(u)
            for v in row:
                if new_dist[v] != -2:
                    continue
                cur = current[v]
                if cur != -1 and cur <= next_level:
                    continue
                new_dist[v] = next_level
                queue[tail] = v
                tail += 1
        return tail

    def improvements(
        self, source: int, current: Sequence[int]
    ) -> list[tuple[int, int, int]]:
        """Materialized ``(v, old, new)`` stream of the pruned BFS.

        Equal, element for element, to
        ``list(repro.paths.truncated.improvements(graph, source, current))``.
        """
        count = self._scan(source, current)
        new_dist = self._new_dist
        queue = self._queue
        out = []
        for i in range(count):
            v = queue[i]
            new = new_dist[v]
            new_dist[v] = -2
            out.append((v, current[v], new))
        return out

    def closeness_eval(
        self,
        source: int,
        current: Sequence[int],
        penalty: int,
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Farness-drop gain of adding ``source``; optionally the updates.

        Every term is an integer, and integer-valued floats sum exactly,
        so accumulating in int and converting once equals the eager
        driver's float-by-float sum bit for bit.
        """
        count = self._scan(source, current)
        updates = [] if collect else None
        total = 0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                total += (penalty if old == -1 else old) - new
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                total += (penalty if old == -1 else old) - new
        return float(total), updates

    def harmonic_eval(
        self,
        source: int,
        current: Sequence[int],
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Harmonic-delta gain of adding ``source``; optionally the updates.

        The accumulation replicates ``HarmonicObjective.gain_weight``
        term by term — ``1.0/new - old_term`` as one expression — in
        emission order, so the float result is the eager driver's.
        """
        count = self._scan(source, current)
        updates = [] if collect else None
        gain = 0.0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                old_term = 0.0 if old == -1 else 1.0 / old
                if new == 0:
                    gain += -old_term
                else:
                    gain += 1.0 / new - old_term
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                old_term = 0.0 if old == -1 else 1.0 / old
                if new == 0:
                    gain += -old_term
                else:
                    gain += 1.0 / new - old_term
        return gain, updates

    def generic_eval(
        self,
        source: int,
        current: Sequence[int],
        weight: Callable[[int, int], float],
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Gain under an arbitrary ``gain_weight``; optionally the updates."""
        count = self._scan(source, current)
        updates = [] if collect else None
        gain = 0.0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                gain += weight(current[v], new)
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                gain += weight(current[v], new)
        return gain, updates

    # ------------------------------------------------------------------
    # Batched gain plane: B pruned-BFS lanes per numpy pass
    # ------------------------------------------------------------------
    def _scan_block(self):
        """The per-lane distance scratch: ``n`` int32 cells, all ``-2``.

        Callers must restore every touched cell to ``-2`` before moving
        to the next lane (:meth:`_batch_scan` does) — the all-clean
        invariant is what makes reuse O(touched) instead of O(n) per
        lane.  One lane's working set is ~``4n`` bytes, small enough to
        stay cache-resident; this is why the scan loops lanes in Python
        instead of keying a flat ``(B, n)`` block by ``lane*n + vertex``
        (measured: the wide block's gather/scatter working set grows
        with ``B`` past cache and loses to the *scalar* loop at
        million-edge scale).
        """
        block = self._batch_block
        if block is None:
            block = _np.full(max(1, self.n), -2, dtype=_np.int32)
            self._batch_block = block
        return block

    def _scan_claim(self):
        """The ``n``-cell claim scratch of the first-occurrence dedupe
        (see :meth:`_batch_scan`).

        Never cleaned: entries carry a monotone per-scatter tick, so a
        stale value from an earlier lane, level or call can never
        collide with the current pass's positions.
        """
        claim = self._batch_claim
        if claim is None:
            claim = _np.zeros(max(1, self.n), dtype=_np.int64)
            self._batch_claim = claim
        return claim

    def _as_current(self, current):
        """``current`` as an int32 ndarray (no copy when it already is).

        int32 halves the gather bandwidth of the hot admission test;
        distances are bounded by ``n``, which the cell caps keep far
        below the int32 range.
        """
        return _np.asarray(current, dtype=_np.int32)

    def _batch_scan(self, sources, current):
        """Run one vectorized pruned BFS per source lane.

        Returns ``(lanes, verts, news)`` integer emission arrays,
        concatenated lane-major.  The subsequence of entries belonging
        to lane ``b`` lists exactly the vertices lane ``b``'s scalar
        :meth:`_scan` would emit, in the same order: levels concatenate
        level-major (FIFO order), and within a level the masked ragged
        ``np.repeat`` row gather visits (parent in frontier order) ×
        (neighbor in row order) — the scalar discovery order — with
        same-level rediscoveries removed by keeping each vertex's
        *first* occurrence.  Lanes are mutually unordered in the scalar
        semantics (each is an independent traversal), so looping them in
        Python costs nothing in fidelity and keeps every gather/scatter
        inside one lane's ``n``-cell scratch — cache-resident, where a
        flat ``(B, n)`` block keyed by ``lane*n + vertex`` measured
        slower than the scalar loop at million-edge scale.

        The dedupe is linear, not a sort: every admitted occurrence
        scatters its stream position into the claim scratch *in
        reversed order* (so the first occurrence lands last and wins
        numpy's last-write-wins fancy assignment), then a gather keeps
        exactly the occurrences whose position made it in.  The claim
        values ride a monotone tick, so the scratch never needs
        cleaning.  ``np.unique`` here would re-sort the whole frontier
        expansion every level — O(T log T) on up to ``m`` keys — and
        measured 3x slower than the scalar loop at the million-edge
        scale this plane exists for.

        ``current`` must be an int32 ndarray (``_as_current``).  Lanes
        whose source is already in the committed set (``current`` 0 or
        negative-but-reached) emit nothing, matching the scalar
        short-circuit.
        """
        indptr = self._indptr64()
        indices = self._nd_indices
        block = self._scan_block()
        claim = self._scan_claim()
        # Round 0 (no committed distances: `current` all -1) admits on
        # the visited test alone, skipping the per-candidate gather.
        prune = bool((current != -1).any())
        emit_lanes = []
        emit_verts = []
        emit_news = []
        for b, s in enumerate(sources):
            s = int(s)
            c = int(current[s])
            if not (c == -1 or c > 0):
                continue
            f = _np.array([s], dtype=_np.int64)
            block[s] = 0
            lane_verts = [f]
            lane_news = [_np.zeros(1, dtype=_np.int32)]
            level = 0
            while f.size:
                level += 1
                starts = indptr[f]
                counts = indptr[f + 1] - starts
                if not int(counts.sum()):
                    break
                cum = _np.cumsum(counts)
                slots = _np.repeat(starts - (cum - counts), counts)
                slots += _np.arange(slots.size, dtype=_np.int64)
                # One explicit widening beats the intp cast every fancy
                # index below would otherwise redo.
                targets = indices[slots].astype(_np.int64, copy=False)
                # Scalar admission test: not yet seen by this lane, and
                # strictly closer than the committed-set distance.
                mask = block[targets] == -2
                if prune:
                    cur = current[targets]
                    mask &= (cur == -1) | (cur > level)
                if not mask.any():
                    break
                targets = targets[mask]
                # Linear first-occurrence dedupe (see docstring).
                tick = self._claim_tick
                pos = _np.arange(
                    tick, tick + targets.size, dtype=_np.int64
                )
                self._claim_tick = tick + targets.size
                claim[targets[::-1]] = pos[::-1]
                f = targets[claim[targets] == pos]
                block[f] = level
                lane_verts.append(f)
                lane_news.append(_np.full(f.size, level, dtype=_np.int32))
            verts = _np.concatenate(lane_verts)
            # Restore the all-clean invariant before the next lane.
            block[verts] = -2
            emit_lanes.append(_np.full(verts.size, b, dtype=_np.int32))
            emit_verts.append(verts)
            emit_news.append(_np.concatenate(lane_news))
        if not emit_lanes:
            return (
                _np.empty(0, dtype=_np.int32),
                _np.empty(0, dtype=_np.int64),
                _np.empty(0, dtype=_np.int32),
            )
        return (
            _np.concatenate(emit_lanes),
            _np.concatenate(emit_verts),
            _np.concatenate(emit_news),
        )

    def _lane_order(self, lanes, num_lanes: int):
        """Stable per-lane grouping of the emission arrays.

        Returns ``(order, bounds)``: ``order`` permutes the emission
        arrays lane-major (stable, so per-lane emission order is
        preserved) and lane ``b`` occupies ``order[bounds[b]:bounds[b+1]]``.
        """
        order = _np.argsort(lanes, kind="stable")
        counts = _np.bincount(lanes, minlength=num_lanes)
        bounds = _np.zeros(num_lanes + 1, dtype=_np.int64)
        _np.cumsum(counts, out=bounds[1:])
        return order, bounds

    def batch_improvements(self, sources, current) -> list[list[tuple]]:
        """Per-lane materialized ``(v, old, new)`` streams.

        ``batch_improvements([s1, .., sB], cur)[b]`` equals
        ``improvements(s_b, cur)`` element for element — the
        differential contract the batch plane is tested against.
        """
        sources = list(sources)
        if not sources:
            return []
        current = self._as_current(current)
        lanes, verts, news = self._batch_scan(sources, current)
        olds = current[verts]
        order, bounds = self._lane_order(lanes, len(sources))
        sv = verts[order].tolist()
        so = olds[order].tolist()
        sn = news[order].tolist()
        out = []
        for b in range(len(sources)):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            out.append(
                [(sv[i], so[i], sn[i]) for i in range(lo, hi)]
            )
        return out

    def batch_closeness_eval(
        self, sources, current, penalty: int, collect: bool = True
    ) -> list[tuple[float, Optional[list[tuple[int, int]]]]]:
        """``closeness_eval`` for B sources in one vectorized pass.

        Farness drops are integers, and integer-valued float sums are
        exact in any order (every partial sum stays an integer far below
        2**53), so one weighted ``np.bincount`` per lane equals the
        scalar emission-order accumulation bit for bit.
        """
        sources = list(sources)
        if not sources:
            return []
        current = self._as_current(current)
        lanes, verts, news = self._batch_scan(sources, current)
        olds = current[verts]
        contrib = _np.where(olds == -1, penalty, olds) - news
        totals = _np.bincount(
            lanes, weights=contrib, minlength=len(sources)
        )
        if not collect:
            return [(float(t), None) for t in totals]
        order, bounds = self._lane_order(lanes, len(sources))
        sv = verts[order].tolist()
        sn = news[order].tolist()
        out = []
        for b in range(len(sources)):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            out.append(
                (float(totals[b]), list(zip(sv[lo:hi], sn[lo:hi])))
            )
        return out

    def batch_harmonic_eval(
        self, sources, current, collect: bool = True
    ) -> list[tuple[float, Optional[list[tuple[int, int]]]]]:
        """``harmonic_eval`` for B sources in one vectorized pass.

        The per-term arithmetic (``1.0/new - old_term``) is elementwise,
        so numpy float64 reproduces CPython bit for bit; only the *sum*
        is order-sensitive, and it runs sequentially per lane over the
        emission-ordered term list — exactly the scalar ``gain += term``
        chain, starting from the same ``0.0``.
        """
        sources = list(sources)
        if not sources:
            return []
        current = self._as_current(current)
        lanes, verts, news = self._batch_scan(sources, current)
        olds = current[verts]
        inv_old = _np.zeros(olds.size, dtype=_np.float64)
        _np.divide(1.0, olds, out=inv_old, where=(olds != -1))
        inv_new = _np.zeros(news.size, dtype=_np.float64)
        _np.divide(1.0, news, out=inv_new, where=(news > 0))
        terms = inv_new - inv_old
        order, bounds = self._lane_order(lanes, len(sources))
        st = terms[order].tolist()
        if collect:
            sv = verts[order].tolist()
            sn = news[order].tolist()
        out = []
        for b in range(len(sources)):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            gain = sum(st[lo:hi], 0.0)
            updates = list(zip(sv[lo:hi], sn[lo:hi])) if collect else None
            out.append((gain, updates))
        return out

    def batch_generic_eval(
        self,
        sources,
        current,
        weight: Callable[[int, int], float],
        collect: bool = True,
    ) -> list[tuple[float, Optional[list[tuple[int, int]]]]]:
        """``generic_eval`` for B sources: one batched traversal, then
        the scalar per-term ``gain_weight`` chain per lane (the weight
        is arbitrary Python, so only the BFS vectorizes)."""
        sources = list(sources)
        if not sources:
            return []
        current = self._as_current(current)
        lanes, verts, news = self._batch_scan(sources, current)
        olds = current[verts]
        order, bounds = self._lane_order(lanes, len(sources))
        sv = verts[order].tolist()
        so = olds[order].tolist()
        sn = news[order].tolist()
        out = []
        for b in range(len(sources)):
            lo, hi = int(bounds[b]), int(bounds[b + 1])
            gain = 0.0
            updates = [] if collect else None
            for i in range(lo, hi):
                gain += weight(so[i], sn[i])
                if collect:
                    updates.append((sv[i], sn[i]))
            out.append((gain, updates))
        return out


def make_evaluator(trav: CSRTraversal, objective):
    """Bind ``objective`` to its fastest CSR kernel.

    Returns ``evaluate(source, current, collect) -> (gain, updates)``.
    Objectives advertise a specialized kernel via a ``csr_kernel`` class
    attribute (``"closeness"`` carries its unreachable-penalty in a
    public ``penalty`` attribute); anything else falls back to the
    generic kernel driving ``objective.gain_weight`` per improvement —
    still one traversal, just with a Python call per term.
    """
    kernel = getattr(objective, "csr_kernel", None)
    if kernel == "closeness":
        penalty = objective.penalty
        closeness_eval = trav.closeness_eval

        def evaluate(source, current, collect=True):
            return closeness_eval(source, current, penalty, collect)

        return evaluate
    if kernel == "harmonic":
        return trav.harmonic_eval
    weight = objective.gain_weight
    generic_eval = trav.generic_eval

    def evaluate(source, current, collect=True):
        return generic_eval(source, current, weight, collect)

    return evaluate


def make_batch_evaluator(trav: CSRTraversal, objective):
    """Bind ``objective`` to its batched CSR kernel, mirroring
    :func:`make_evaluator`.

    Returns ``batch_evaluate(sources, current, collect) ->
    [(gain, updates), ...]`` (one pair per source lane, bitwise equal to
    the scalar evaluator's output), or ``None`` when the batch plane is
    unavailable (no numpy, or buffers without ndarray views) — callers
    fall back to the scalar evaluator.
    """
    if not trav.supports_batch:
        return None
    kernel = getattr(objective, "csr_kernel", None)
    if kernel == "closeness":
        penalty = objective.penalty
        batch_closeness = trav.batch_closeness_eval

        def batch_evaluate(sources, current, collect=True):
            return batch_closeness(sources, current, penalty, collect)

        return batch_evaluate
    if kernel == "harmonic":
        return trav.batch_harmonic_eval
    weight = objective.gain_weight
    batch_generic = trav.batch_generic_eval

    def batch_evaluate(sources, current, collect=True):
        return batch_generic(sources, current, weight, collect)

    return batch_evaluate


def choose_gain_batch(num_vertices: int, pool_size: int) -> int:
    """Auto-size the gain-batch lane count from n and the candidate pool.

    Small graphs and single-candidate pools stay scalar (batch 1); past
    :data:`GAIN_BATCH_MIN_VERTICES` the lane count is the cell budget
    divided by n, capped at :data:`GAIN_BATCH_MAX_LANES` and the pool
    size.  The heuristic mirrors ``choose_refine_kernel``: cheap,
    deterministic, and conservative at the boundaries.
    """
    if (
        _np is None
        or num_vertices < GAIN_BATCH_MIN_VERTICES
        or pool_size <= 1
    ):
        return 1
    lanes = min(
        GAIN_BATCH_MAX_LANES,
        GAIN_BATCH_CELL_BUDGET // max(num_vertices, 1),
        pool_size,
    )
    return max(1, int(lanes))


def validate_gain_batch(gain_batch) -> None:
    """Boundary validation for a ``gain_batch`` parameter.

    Accepts ``"auto"`` or a positive int; anything else raises
    :class:`~repro.errors.ParameterError` before any graph work starts.
    """
    if gain_batch == "auto":
        return
    if (
        isinstance(gain_batch, bool)
        or not isinstance(gain_batch, int)
        or gain_batch < 1
    ):
        raise ParameterError(
            f"gain_batch must be 'auto' or a positive int, got "
            f"{gain_batch!r}"
        )


def resolve_gain_batch(
    gain_batch, num_vertices: int, pool_size: int
) -> int:
    """The effective lane count for a greedy run.

    ``"auto"`` defers to :func:`choose_gain_batch`; explicit requests
    are honoured but clamped to the :data:`GAIN_BATCH_CELL_CAP` memory
    guard.  Without numpy every request resolves to 1 (the scalar
    kernels are the only plane) — batching is a pure execution detail,
    so silent degradation is correct, exactly like the bloom fallback
    of the bitset refine kernel.
    """
    validate_gain_batch(gain_batch)
    if _np is None:
        return 1
    if gain_batch == "auto":
        return choose_gain_batch(num_vertices, pool_size)
    cap = max(1, GAIN_BATCH_CELL_CAP // max(num_vertices, 1))
    return max(1, min(int(gain_batch), cap))
