"""Flat-array CSR BFS kernels for greedy marginal-gain evaluation.

The list-based kernels in :mod:`repro.paths.bfs` and
:mod:`repro.paths.truncated` are fine for one-shot queries, but the
greedy group-centrality drivers call them thousands of times per run —
one truncated BFS per candidate per round.  At that call rate the
per-evaluation overheads dominate: a fresh ``new_dist`` list and deque
per call, a generator suspension plus tuple allocation per improved
vertex, and a Python-level ``gain_weight`` call per improvement.

:class:`CSRTraversal` removes all three.  It is built once per run (or
once per worker process) from the graph's :meth:`~repro.graph.adjacency.
Graph.to_csr` snapshot and accepts any CSR buffer shape the engines
produce: ``array`` snapshots of the list-backed graph, the ``int32``
ndarrays of :class:`~repro.graph.csr.CSRGraph`, or the typed
memoryviews a shared-memory worker attaches.  Internally it keeps:

* **one flat Python-int list** of the neighbor IDs (``tolist()`` — one
  pass, no per-access boxing ever again) plus per-row slice views
  materialized lazily and cached, so the scalar traversal loops iterate
  plain lists at C speed while a worker that scans a fraction of the
  graph only pays for the rows it touches;
* **zero-copy ndarray views** of ``indptr``/``indices`` when numpy is
  available, which back the vectorized level-synchronous full-BFS
  kernels (:meth:`bfs_distances` / :meth:`multi_source_distances` index
  the ndarrays directly — distances are order-independent, so the
  vectorized frontier expansion returns exactly the scalar kernel's
  values);
* two preallocated scratch buffers reused across evaluations:
  ``new_dist`` (tentative distances, ``-2`` meaning untouched) and
  ``queue`` (a flat FIFO whose prefix, after a traversal, lists the
  improved vertices **in the exact order** the generator version yields
  them — source first, then FIFO discovery order over sorted rows).

That ordering guarantee is what makes the gain kernels bit-for-bit
compatible with the eager driver: gains are float sums, and floating-
point addition is not associative, so the specialized evaluators below
replicate :mod:`repro.paths.truncated` + ``gain_weight`` term by term
in the same order with the same arithmetic — closeness accumulates
integer farness drops (exact in either representation), harmonic adds
``1.0/new - old_term`` as one fused expression exactly as
:class:`~repro.centrality.group_harmonic_max.HarmonicObjective` does.
The pruned gain scans stay scalar for exactly that reason: their
emission order *is* the contract, and only the full-BFS kernels (whose
outputs are order-free) vectorize.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Optional, Sequence

from repro.graph.adjacency import Graph

try:  # pragma: no cover - scalar fallback exercised via monkeypatching
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["CSRTraversal", "make_evaluator"]

#: memoryview/array format codes mapped to numpy dtypes for zero-copy
#: ndarray views over attached shared-memory buffers.
_FORMAT_DTYPES = {
    "i": "int32",
    "I": "uint32",
    "l": "int64",
    "L": "uint64",
    "q": "int64",
    "Q": "uint64",
}


def _ndarray_view(buf):
    """``buf`` as a zero-copy integer ndarray, or ``None`` if impossible."""
    if _np is None:
        return None
    if isinstance(buf, _np.ndarray):
        return buf
    try:
        mv = memoryview(buf)
    except TypeError:
        return None
    dtype = _FORMAT_DTYPES.get(mv.format)
    if dtype is None:
        return None
    return _np.frombuffer(mv, dtype=dtype)


class CSRTraversal:
    """Reusable BFS workspace over a CSR snapshot of one graph.

    Instances are cheap to query but stateful: the scratch buffers are
    reused by every call, so a single traversal must finish before the
    next one starts (no interleaving, no sharing across threads).
    """

    __slots__ = (
        "n",
        "indptr",
        "indices",
        "_starts",
        "_flat",
        "_rows",
        "_nd_indptr",
        "_nd_indices",
        "_new_dist",
        "_queue",
    )

    def __init__(self, indptr: Sequence[int], indices: Sequence[int]):
        n = len(indptr) - 1
        self.n = n
        self.indptr = indptr
        self.indices = indices
        # One normalization pass: plain Python ints for the scalar
        # loops (array/memoryview/ndarray all support tolist()).
        self._starts = (
            indptr.tolist() if hasattr(indptr, "tolist") else list(indptr)
        )
        self._flat = (
            indices.tolist() if hasattr(indices, "tolist")
            else list(indices)
        )
        #: Lazily cached per-row list views of ``_flat`` — hot loops
        #: iterate plain lists; untouched rows cost nothing.
        self._rows: list = [None] * n
        # Zero-copy ndarray views for the vectorized full-BFS kernels.
        self._nd_indptr = _ndarray_view(indptr)
        self._nd_indices = _ndarray_view(indices)
        self._new_dist = [-2] * n
        self._queue = [0] * n

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRTraversal":
        indptr, indices = graph.to_csr()
        return cls(indptr, indices)

    def _row(self, u: int) -> list:
        row = self._rows[u]
        if row is None:
            starts = self._starts
            row = self._flat[starts[u] : starts[u + 1]]
            self._rows[u] = row
        return row

    # ------------------------------------------------------------------
    # Full BFS (CSR rebuilds of repro.paths.bfs)
    # ------------------------------------------------------------------
    def bfs_distances(self, source: int) -> list[int]:
        """Distances from ``source``; ``-1`` if unreachable."""
        if self._nd_indptr is not None:
            return self._frontier_distances((source,))
        return self._scalar_distances((source,))

    def multi_source_distances(self, sources: Iterable[int]) -> list[int]:
        """``dist[v] = min over s in sources of d(v, s)``; ``-1`` unreachable."""
        if self._nd_indptr is not None:
            return self._frontier_distances(sources)
        return self._scalar_distances(sources)

    def _frontier_distances(self, sources: Iterable[int]) -> list[int]:
        """Vectorized level-synchronous BFS over the ndarray views.

        Per level: gather every frontier row with one fancy-index
        expansion, keep the unvisited targets, stamp their level.
        Distances are order-independent, so this equals the scalar FIFO
        kernel exactly.
        """
        indptr = self._nd_indptr
        indices = self._nd_indices
        dist = _np.full(self.n, -1, dtype=_np.int64)
        frontier = _np.unique(_np.fromiter(sources, dtype=_np.int64))
        if frontier.size == 0:
            return dist.tolist()
        dist[frontier] = 0
        level = 0
        while frontier.size:
            starts = indptr[frontier].astype(_np.int64)
            counts = indptr[frontier + 1].astype(_np.int64) - starts
            total = int(counts.sum())
            if total == 0:
                break
            cum = _np.concatenate(
                (_np.zeros(1, dtype=_np.int64), _np.cumsum(counts))
            )
            slots = (
                _np.repeat(starts - cum[:-1], counts)
                + _np.arange(total, dtype=_np.int64)
            )
            targets = indices[slots]
            fresh = _np.unique(targets[dist[targets] == -1])
            if fresh.size == 0:
                break
            level += 1
            dist[fresh] = level
            frontier = fresh
        return dist.tolist()

    def _scalar_distances(self, sources: Iterable[int]) -> list[int]:
        queue = self._queue
        dist = [-1] * self.n
        tail = 0
        for s in sources:
            if dist[s] != 0:
                dist[s] = 0
                queue[tail] = s
                tail += 1
        head = 0
        rows = self._rows
        while head < tail:
            u = queue[head]
            head += 1
            next_level = dist[u] + 1
            row = rows[u]
            if row is None:
                row = self._row(u)
            for v in row:
                if dist[v] == -1:
                    dist[v] = next_level
                    queue[tail] = v
                    tail += 1
        return dist

    # ------------------------------------------------------------------
    # Truncated gain BFS (CSR rebuild of repro.paths.truncated)
    # ------------------------------------------------------------------
    def _scan(self, source: int, current: Sequence[int]) -> int:
        """Run the pruned BFS; return the number of improved vertices.

        On return ``_queue[:count]`` lists the improved vertices in
        emission order and ``_new_dist`` holds their new distances.  The
        caller must sweep the prefix and restore ``_new_dist`` to ``-2``
        for every listed vertex before the next traversal.
        """
        cur_src = current[source]
        if cur_src != -1 and cur_src <= 0:
            return 0  # source already in S: nothing can improve
        rows = self._rows
        new_dist = self._new_dist
        queue = self._queue
        new_dist[source] = 0
        queue[0] = source
        head, tail = 0, 1
        while head < tail:
            u = queue[head]
            head += 1
            next_level = new_dist[u] + 1
            row = rows[u]
            if row is None:
                row = self._row(u)
            for v in row:
                if new_dist[v] != -2:
                    continue
                cur = current[v]
                if cur != -1 and cur <= next_level:
                    continue
                new_dist[v] = next_level
                queue[tail] = v
                tail += 1
        return tail

    def improvements(
        self, source: int, current: Sequence[int]
    ) -> list[tuple[int, int, int]]:
        """Materialized ``(v, old, new)`` stream of the pruned BFS.

        Equal, element for element, to
        ``list(repro.paths.truncated.improvements(graph, source, current))``.
        """
        count = self._scan(source, current)
        new_dist = self._new_dist
        queue = self._queue
        out = []
        for i in range(count):
            v = queue[i]
            new = new_dist[v]
            new_dist[v] = -2
            out.append((v, current[v], new))
        return out

    def closeness_eval(
        self,
        source: int,
        current: Sequence[int],
        penalty: int,
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Farness-drop gain of adding ``source``; optionally the updates.

        Every term is an integer, and integer-valued floats sum exactly,
        so accumulating in int and converting once equals the eager
        driver's float-by-float sum bit for bit.
        """
        count = self._scan(source, current)
        updates = [] if collect else None
        total = 0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                total += (penalty if old == -1 else old) - new
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                total += (penalty if old == -1 else old) - new
        return float(total), updates

    def harmonic_eval(
        self,
        source: int,
        current: Sequence[int],
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Harmonic-delta gain of adding ``source``; optionally the updates.

        The accumulation replicates ``HarmonicObjective.gain_weight``
        term by term — ``1.0/new - old_term`` as one expression — in
        emission order, so the float result is the eager driver's.
        """
        count = self._scan(source, current)
        updates = [] if collect else None
        gain = 0.0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                old_term = 0.0 if old == -1 else 1.0 / old
                if new == 0:
                    gain += -old_term
                else:
                    gain += 1.0 / new - old_term
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                old = current[v]
                old_term = 0.0 if old == -1 else 1.0 / old
                if new == 0:
                    gain += -old_term
                else:
                    gain += 1.0 / new - old_term
        return gain, updates

    def generic_eval(
        self,
        source: int,
        current: Sequence[int],
        weight: Callable[[int, int], float],
        collect: bool = True,
    ) -> tuple[float, Optional[list[tuple[int, int]]]]:
        """Gain under an arbitrary ``gain_weight``; optionally the updates."""
        count = self._scan(source, current)
        updates = [] if collect else None
        gain = 0.0
        new_dist = self._new_dist
        queue = self._queue
        if collect:
            append = updates.append
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                gain += weight(current[v], new)
                append((v, new))
        else:
            for i in range(count):
                v = queue[i]
                new = new_dist[v]
                new_dist[v] = -2
                gain += weight(current[v], new)
        return gain, updates


def make_evaluator(trav: CSRTraversal, objective):
    """Bind ``objective`` to its fastest CSR kernel.

    Returns ``evaluate(source, current, collect) -> (gain, updates)``.
    Objectives advertise a specialized kernel via a ``csr_kernel`` class
    attribute (``"closeness"`` carries its unreachable-penalty in a
    public ``penalty`` attribute); anything else falls back to the
    generic kernel driving ``objective.gain_weight`` per improvement —
    still one traversal, just with a Python call per term.
    """
    kernel = getattr(objective, "csr_kernel", None)
    if kernel == "closeness":
        penalty = objective.penalty
        closeness_eval = trav.closeness_eval

        def evaluate(source, current, collect=True):
            return closeness_eval(source, current, penalty, collect)

        return evaluate
    if kernel == "harmonic":
        return trav.harmonic_eval
    weight = objective.gain_weight
    generic_eval = trav.generic_eval

    def evaluate(source, current, collect=True):
        return generic_eval(source, current, weight, collect)

    return evaluate
