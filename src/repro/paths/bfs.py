"""Breadth-first-search primitives.

Unweighted shortest-path distances are the substrate of both group
centrality measures (Defs. 6–9 of the paper).  Two entry points:

* :func:`bfs_distances` — single-source distances (one row of the
  distance oracle);
* :func:`multi_source_distances` — distances to a *set* ``S``, i.e.
  ``d(v, S) = min_{s∈S} d(v, s)``, computed with one BFS seeded with all
  of ``S`` at level 0.

Distances use ``-1`` as the "unreachable" sentinel internally (arrays of
ints are much lighter than float ``inf`` in hot loops); the distance
helpers in :mod:`repro.paths.distances` translate to ``math.inf`` at the
API boundary.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graph.adjacency import Graph

__all__ = ["bfs_distances", "multi_source_distances", "eccentricity"]

UNREACHED = -1


def bfs_distances(graph: Graph, source: int) -> list[int]:
    """Distances from ``source`` to every vertex; ``-1`` if unreachable."""
    dist = [UNREACHED] * graph.num_vertices
    dist[source] = 0
    queue = deque((source,))
    neighbors = graph.neighbors
    while queue:
        u = queue.popleft()
        next_level = dist[u] + 1
        for v in neighbors(u):
            if dist[v] == UNREACHED:
                dist[v] = next_level
                queue.append(v)
    return dist


def multi_source_distances(graph: Graph, sources: Iterable[int]) -> list[int]:
    """``dist[v] = min over s in sources of d(v, s)``; ``-1`` unreachable.

    An empty source set yields all ``-1``.
    """
    dist = [UNREACHED] * graph.num_vertices
    queue: deque[int] = deque()
    for s in sources:
        if dist[s] != 0:
            dist[s] = 0
            queue.append(s)
    neighbors = graph.neighbors
    while queue:
        u = queue.popleft()
        next_level = dist[u] + 1
        for v in neighbors(u):
            if dist[v] == UNREACHED:
                dist[v] = next_level
                queue.append(v)
    return dist


def eccentricity(graph: Graph, source: int) -> int:
    """Largest finite distance from ``source`` (0 for a lone vertex)."""
    return max(bfs_distances(graph, source))
