"""Distance helpers expressed in the paper's notation.

Thin wrappers over the BFS primitives that speak ``math.inf`` instead of
the internal ``-1`` sentinel: ``d(u, v)``, ``d(u, S)`` and the full
distance profile of a set.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.graph.adjacency import Graph
from repro.paths.bfs import UNREACHED, bfs_distances, multi_source_distances

__all__ = ["distance", "set_distance", "set_distance_profile"]


def distance(graph: Graph, u: int, v: int) -> float:
    """Shortest-path distance ``d(u, v)``; ``math.inf`` if disconnected."""
    d = bfs_distances(graph, u)[v]
    return math.inf if d == UNREACHED else float(d)


def set_distance(graph: Graph, u: int, group: Iterable[int]) -> float:
    """``d(u, S) = min_{s∈S} d(u, s)``; ``math.inf`` for an empty or
    unreachable group."""
    d = multi_source_distances(graph, group)[u]
    return math.inf if d == UNREACHED else float(d)


def set_distance_profile(graph: Graph, group: Iterable[int]) -> list[float]:
    """``profile[v] = d(v, S)`` for every vertex, with ``math.inf`` holes."""
    return [
        math.inf if d == UNREACHED else float(d)
        for d in multi_source_distances(graph, group)
    ]
