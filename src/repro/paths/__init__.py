"""Shortest-path substrate: BFS, multi-source BFS and pruned gain BFS."""

from repro.paths.bfs import (
    UNREACHED,
    bfs_distances,
    eccentricity,
    multi_source_distances,
)
from repro.paths.csr import CSRTraversal, make_evaluator
from repro.paths.distances import distance, set_distance, set_distance_profile
from repro.paths.labeling import DistanceOracle
from repro.paths.truncated import gain_sum, improvements

__all__ = [
    "UNREACHED",
    "bfs_distances",
    "eccentricity",
    "multi_source_distances",
    "CSRTraversal",
    "make_evaluator",
    "DistanceOracle",
    "distance",
    "set_distance",
    "set_distance_profile",
    "gain_sum",
    "improvements",
]
