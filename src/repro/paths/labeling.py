"""Pruned landmark labeling (PLL) — an exact distance oracle.

The paper's introduction motivates neighborhood inclusion with two
shortest-path systems: pruned landmark labeling for distance queries
(ref [1]) and its compression by neighborhood-equivalence (ref [6]).
This module supplies both as a substrate:

* :class:`DistanceOracle` — classic PLL: for each vertex a label
  ``L(v) = {(landmark, distance), …}`` such that
  ``d(s, t) = min over common landmarks of d(s, ℓ) + d(ℓ, t)``.
  Landmarks are processed in degree order; each landmark's BFS is
  *pruned* at vertices whose distance is already covered by earlier
  labels, which is what keeps labels small on hub-heavy graphs.
* **Equivalence compression** (``compress=True``): vertices with equal
  open neighborhoods (false twins — mutually included vertices, found
  with the package's own domination machinery) provably share label
  sets, so one representative is labeled and its twins alias it —
  exactly the reduction idea of ref [6].

Exactness does not depend on the landmark order or the compression;
they only change the label size, which :meth:`DistanceOracle.label_entries`
exposes for the tests.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.graph.adjacency import Graph
from repro.graph.twins import twin_representatives

__all__ = ["DistanceOracle"]


class DistanceOracle:
    """Exact shortest-path distance oracle via pruned landmark labeling.

    Parameters
    ----------
    graph:
        The host graph (undirected, unweighted).
    compress:
        Share labels between false twins (ref [6] style).  Twins are at
        distance 2 from each other through any common neighbor, which
        the query path handles explicitly.

    >>> from repro.graph.generators import path_graph
    >>> oracle = DistanceOracle(path_graph(5))
    >>> oracle.distance(0, 4)
    4
    """

    def __init__(self, graph: Graph, *, compress: bool = False):
        self._graph = graph
        n = graph.num_vertices
        if compress:
            self._alias = twin_representatives(graph)
        else:
            self._alias = list(range(n))
        # Labels only for class representatives.
        self._labels: dict[int, dict[int, int]] = {
            u: {} for u in range(n) if self._alias[u] == u
        }
        self._build()

    def _build(self) -> None:
        graph = self._graph
        n = graph.num_vertices
        labels = self._labels
        alias = self._alias
        order = sorted(
            labels.keys(), key=lambda u: (-graph.degree(u), u)
        )
        dist = [-1] * n
        for landmark in order:
            # Pruned BFS from the landmark.
            dist[landmark] = 0
            queue = deque(((landmark, 0),))
            visited = [landmark]
            while queue:
                v, d = queue.popleft()
                rep = alias[v]
                # Prune: if existing labels already certify d(landmark, v)
                # <= d, descendants gain nothing either.
                if self._query_reps(alias[landmark], rep) <= d:
                    continue
                labels[rep][landmark] = d
                for w in graph.neighbors(v):
                    if dist[w] == -1:
                        dist[w] = d + 1
                        visited.append(w)
                        queue.append((w, d + 1))
            for v in visited:
                dist[v] = -1

    def _query_reps(self, rep_s: int, rep_t: int) -> float:
        label_s = self._labels[rep_s]
        label_t = self._labels[rep_t]
        if len(label_s) > len(label_t):
            label_s, label_t = label_t, label_s
        best = float("inf")
        for landmark, ds in label_s.items():
            dt = label_t.get(landmark)
            if dt is not None and ds + dt < best:
                best = ds + dt
        return best

    def distance(self, s: int, t: int) -> Optional[int]:
        """Exact ``d(s, t)``; ``None`` when disconnected."""
        if s == t:
            return 0
        if self._graph.has_edge(s, t):
            return 1
        rep_s, rep_t = self._alias[s], self._alias[t]
        if rep_s == rep_t:
            # Distinct false twins: distance exactly 2 through any
            # shared neighbor — the shared labels must not be compared
            # against each other (they'd report 0 via the class's own
            # landmark entry).
            return 2 if self._graph.degree(s) > 0 else None
        best = self._query_reps(rep_s, rep_t)
        return None if best == float("inf") else int(best)

    def label_entries(self) -> int:
        """Total label entries — the index-size metric of refs [1]/[6]."""
        return sum(len(label) for label in self._labels.values())
