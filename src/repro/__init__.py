"""repro — Neighborhood Skyline on Graphs (ICDE 2023 reproduction).

A from-scratch Python implementation of the neighborhood-skyline
concepts, algorithms and applications of Zhang et al., ICDE 2023:

* the skyline algorithms (BaseSky, FilterPhase, FilterRefineSky and the
  Base2Hop / BaseCSet / LC-Join comparison baselines),
* the application layer (group closeness / harmonic maximization with
  skyline pruning, maximum-clique and top-k-clique search),
* the substrates they need (graph representation and generators, bloom
  filters, BFS machinery, set-containment joins),
* dataset stand-ins and the full benchmark harness reproducing the
  paper's tables and figures.

Quickstart::

    from repro import neighborhood_skyline
    from repro.graph import karate_club

    result = neighborhood_skyline(karate_club())
    print(result.skyline)
"""

from repro.core import (
    SkylineCounters,
    SkylineResult,
    neighborhood_candidates,
    neighborhood_skyline,
)
from repro.graph import Graph, GraphBuilder

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphBuilder",
    "SkylineCounters",
    "SkylineResult",
    "neighborhood_candidates",
    "neighborhood_skyline",
    "__version__",
]
