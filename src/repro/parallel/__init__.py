"""Parallel execution engine for the filter–refine skyline.

:func:`~repro.parallel.engine.parallel_refine_sky` is the entry point;
it is also registered as ``algorithm="filter_refine_parallel"`` with
:func:`repro.core.api.neighborhood_skyline` and behind the CLI's
``--workers`` flag.
"""

from repro.parallel.chunks import chunk_ranges, default_chunk_size
from repro.parallel.engine import (
    SMALL_GRAPH_EDGES,
    default_worker_count,
    parallel_refine_sky,
)

__all__ = [
    "SMALL_GRAPH_EDGES",
    "chunk_ranges",
    "default_chunk_size",
    "default_worker_count",
    "parallel_refine_sky",
]
