"""Parallel execution engines.

:func:`~repro.parallel.engine.parallel_refine_sky` parallelizes the
skyline refine phase; it is registered as
``algorithm="filter_refine_parallel"`` with
:func:`repro.core.api.neighborhood_skyline` and behind the CLI's
``--workers`` flag.  :mod:`repro.parallel.greedy_worker` is the worker
side of the lazy greedy engine's round-0 fan-out
(:func:`repro.centrality.lazy_greedy.lazy_greedy_maximize`).

Graph-scale data reaches workers over one of two data planes: the
classic pickle payload, or named shared-memory segments
(:mod:`repro.parallel.shm`) that workers attach zero-copy.
:class:`~repro.parallel.session.EngineSession` keeps one pool plus the
published segments warm across many calls on the same graph.
"""

from repro.parallel.chunks import chunk_ranges, default_chunk_size
from repro.parallel.engine import (
    SMALL_GRAPH_EDGES,
    default_worker_count,
    parallel_refine_sky,
)
from repro.parallel.greedy_worker import (
    build_greedy_payload,
    init_greedy_worker,
    run_gain_chunk,
)
from repro.parallel.params import validate_pool_params
from repro.parallel.session import EngineSession
from repro.parallel.shm import (
    HAVE_SHM,
    SegmentRef,
    ShmDataPlane,
    attach_view,
    live_segment_names,
    resolve_data_plane,
    shm_available,
)
from repro.parallel.supervisor import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_TIMEOUT,
    PoolSupervisor,
    SupervisorConfig,
)

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_TIMEOUT",
    "HAVE_SHM",
    "SMALL_GRAPH_EDGES",
    "EngineSession",
    "PoolSupervisor",
    "SegmentRef",
    "ShmDataPlane",
    "SupervisorConfig",
    "attach_view",
    "chunk_ranges",
    "default_chunk_size",
    "default_worker_count",
    "live_segment_names",
    "parallel_refine_sky",
    "build_greedy_payload",
    "init_greedy_worker",
    "resolve_data_plane",
    "run_gain_chunk",
    "shm_available",
    "validate_pool_params",
]
