"""Parallel execution engines.

:func:`~repro.parallel.engine.parallel_refine_sky` parallelizes the
skyline refine phase; it is registered as
``algorithm="filter_refine_parallel"`` with
:func:`repro.core.api.neighborhood_skyline` and behind the CLI's
``--workers`` flag.  :mod:`repro.parallel.greedy_worker` is the worker
side of the lazy greedy engine's round-0 fan-out
(:func:`repro.centrality.lazy_greedy.lazy_greedy_maximize`).
"""

from repro.parallel.chunks import chunk_ranges, default_chunk_size
from repro.parallel.engine import (
    SMALL_GRAPH_EDGES,
    default_worker_count,
    parallel_refine_sky,
)
from repro.parallel.greedy_worker import (
    build_greedy_payload,
    init_greedy_worker,
    run_gain_chunk,
)
from repro.parallel.params import validate_pool_params
from repro.parallel.supervisor import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_TIMEOUT,
    PoolSupervisor,
    SupervisorConfig,
)

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_TIMEOUT",
    "SMALL_GRAPH_EDGES",
    "PoolSupervisor",
    "SupervisorConfig",
    "chunk_ranges",
    "default_chunk_size",
    "default_worker_count",
    "parallel_refine_sky",
    "build_greedy_payload",
    "init_greedy_worker",
    "run_gain_chunk",
    "validate_pool_params",
]
