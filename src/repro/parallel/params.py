"""One-stop validation for the pooled engines' scheduling parameters.

Every pooled entry point — :func:`repro.parallel.engine.parallel_refine_sky`,
:func:`repro.centrality.lazy_greedy.lazy_greedy_maximize`, the
:func:`repro.core.api.group_centrality_maximize` dispatcher and the CLI —
accepts the same knobs (``workers``, ``chunk_size``, ``timeout``,
``max_retries``).  Validating them here, once, at the API boundary means
a bad value surfaces as a :class:`~repro.errors.ParameterError` naming
the offending parameter instead of a ``TypeError`` deep inside
:func:`~repro.parallel.chunks.chunk_ranges` or a hung ``result()`` wait.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParameterError

__all__ = ["validate_pool_params", "normalized_timeout"]

_UNSET = object()


def _require_int(name: str, value, minimum: int) -> None:
    # bool is an int subclass; True as a worker count is a bug, not 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParameterError(
            f"{name} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise ParameterError(
            f"{name} must be >= {minimum}, got {value}"
        )


def validate_pool_params(
    *,
    workers=_UNSET,
    chunk_size=_UNSET,
    timeout=_UNSET,
    max_retries=_UNSET,
) -> None:
    """Raise :class:`ParameterError` for any invalid scheduling knob.

    Only the keywords actually passed are checked, so callers validate
    exactly the parameters they expose.  ``chunk_size`` and ``timeout``
    accept ``None`` (meaning "pick a default"); ``workers`` and
    ``max_retries`` do not.
    """
    if workers is not _UNSET:
        _require_int("workers", workers, 1)
    if chunk_size is not _UNSET and chunk_size is not None:
        _require_int("chunk_size", chunk_size, 1)
    if max_retries is not _UNSET:
        _require_int("max_retries", max_retries, 0)
    if timeout is not _UNSET and timeout is not None:
        if isinstance(timeout, bool) or not isinstance(
            timeout, (int, float)
        ):
            raise ParameterError(
                f"timeout must be a number of seconds, got {timeout!r}"
            )
        if timeout <= 0:
            raise ParameterError(
                f"timeout must be > 0 seconds, got {timeout}"
            )


def normalized_timeout(timeout: Optional[float]) -> Optional[float]:
    """``timeout`` as a float, with ``None`` passed through."""
    return None if timeout is None else float(timeout)
