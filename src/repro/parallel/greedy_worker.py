"""Round-0 gain evaluation for the lazy greedy engine.

The first greedy round is the expensive one — with an empty group every
candidate's truncated BFS degenerates to a full BFS — and it is
embarrassingly parallel: the gains are pure functions of the graph and
an all-``-1`` distance vector.  This module is the worker side of that
fan-out, mirroring :mod:`repro.parallel.worker`'s shape: a pickle-cheap
payload shipped once per process via the pool initializer, module-level
state rebuilt from it, and a chunk entry point mapped over index ranges
of the candidate pool.

Gains come back as ``array('d')`` blobs in pool order.  Workers run the
same :class:`~repro.paths.csr.CSRTraversal` kernels as the in-process
engine on the same CSR snapshot, so the floats they return are bitwise
identical to an in-process round 0 for any worker count or chunking —
the lazy engine's exactness argument never has to mention the pool.

The objective rides along inside the payload, so it must pickle; the
bundled objectives (plain module-level classes holding scalars) all do.
"""

from __future__ import annotations

import multiprocessing
from array import array
from typing import Optional

from repro.paths.csr import CSRTraversal, make_evaluator

__all__ = [
    "build_greedy_payload",
    "build_greedy_state",
    "init_greedy_worker",
    "pool_context",
    "run_gain_chunk",
    "validate_gain_chunk",
]


def pool_context():
    """The multiprocessing context for greedy worker pools.

    fork shares the parent's code pages and skips re-imports; spawn is
    the portable fallback (worker entry points are module-level).
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def build_greedy_payload(graph, objective, pool) -> tuple:
    """The snapshot shipped to every worker: CSR rows + pool + objective."""
    indptr, indices = graph.to_csr()
    return (indptr, array("i", indices), array("q", pool), objective)


def build_greedy_state(payload: tuple) -> tuple:
    """Rebuild the traversal workspace and bound evaluator from a payload."""
    indptr, indices, pool, objective = payload
    trav = CSRTraversal(indptr, indices)
    evaluate = make_evaluator(trav, objective)
    # Round 0 only: the group is empty, every distance is infinity.
    current = [-1] * trav.n
    return (pool, evaluate, current)


#: Worker-process state, populated by :func:`init_greedy_worker`.
_STATE: Optional[tuple] = None


def init_greedy_worker(payload: tuple) -> None:
    """Pool initializer: rebuild the CSR workspace once per process."""
    global _STATE
    _STATE = build_greedy_state(payload)


def run_gain_chunk(task: tuple, state: Optional[tuple] = None) -> array:
    """Round-0 gains for pool slice ``(lo, hi)``, as an ``array('d')``."""
    lo, hi = task
    if state is None:
        state = _STATE
    pool, evaluate, current = state
    return array(
        "d", [evaluate(u, current, False)[0] for u in pool[lo:hi]]
    )


def validate_gain_chunk(task: tuple, result) -> bool:
    """Schema check for a :func:`run_gain_chunk` payload.

    Exactly one non-NaN float per pool slot.  (No sign check: the
    bundled objectives only produce non-negative round-0 gains, but the
    evaluator accepts arbitrary ``GainObjective`` weights.)
    """
    lo, hi = task
    if not isinstance(result, array) or result.typecode != "d":
        return False
    if len(result) != hi - lo:
        return False
    return all(g == g for g in result)
