"""Round-0 gain evaluation for the lazy greedy engine.

The first greedy round is the expensive one — with an empty group every
candidate's truncated BFS degenerates to a full BFS — and it is
embarrassingly parallel: the gains are pure functions of the graph and
an all-``-1`` distance vector.  This module is the worker side of that
fan-out, mirroring :mod:`repro.parallel.worker`'s shape: a pickle-cheap
payload shipped once per process via the pool initializer, module-level
state rebuilt from it, and a chunk entry point mapped over index ranges
of the candidate pool.

Two data planes, as in the refine worker:

* **pickle** — :func:`build_greedy_payload` ships CSR rows + pool +
  objective per process; the initializer rebuilds everything.
* **shm** — the initializer gets ``("shm", {"indptr", "indices"})``
  refs, attaches the CSR segments (:mod:`repro.parallel.shm`), and
  builds the :class:`~repro.paths.csr.CSRTraversal` workspace lazily,
  once per process lifetime; the pool and objective arrive per call in
  a :class:`GreedySpec` riding inside each task.

Gains come back as ``array('d')`` blobs in pool order.  Workers run the
same :class:`~repro.paths.csr.CSRTraversal` kernels as the in-process
engine on the same CSR snapshot, so the floats they return are bitwise
identical to an in-process round 0 for any worker count, chunking or
data plane — the lazy engine's exactness argument never has to mention
the pool.

The objective rides along inside the payload (or spec), so it must
pickle; the bundled objectives (plain module-level classes holding
scalars) all do.
"""

from __future__ import annotations

import multiprocessing
from array import array
from typing import NamedTuple, Optional

from repro.parallel.shm import SegmentRef, attach_view, release_attachments
from repro.paths.csr import (
    CSRTraversal,
    make_batch_evaluator,
    make_evaluator,
)

try:  # pragma: no cover - scalar fallback exercised via monkeypatching
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "GreedySpec",
    "build_greedy_payload",
    "build_greedy_state",
    "init_greedy_worker",
    "pool_context",
    "run_gain_chunk",
    "validate_gain_chunk",
]


class GreedySpec(NamedTuple):
    """Per-call round-0 parameters for shared-memory dispatch.

    ``pool`` names the candidate-scope segment; the objective (scalars
    only for the bundled ones) pickles inline.  ``key`` keys the
    worker-side state cache, as in :class:`~repro.parallel.worker.
    RefineSpec`.  ``batch`` is the gain-batch lane count workers use
    inside each chunk — a worker-side execution knob only, since the
    batched kernel is bitwise equal to the scalar one; it participates
    in ``key`` so a cached state is never reused at the wrong width.
    """

    epoch: int
    key: tuple
    objective: object
    pool: SegmentRef
    batch: int = 1


def pool_context():
    """The multiprocessing context for greedy worker pools.

    fork shares the parent's code pages and skips re-imports; spawn is
    the portable fallback (worker entry points are module-level).
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def build_greedy_payload(graph, objective, pool, batch: int = 1) -> tuple:
    """The snapshot shipped to every worker: CSR rows + pool + objective
    (+ the gain-batch lane count).

    CSR-backed graphs already hold ``int32`` ndarrays (which pickle as
    compactly as anything); only the list path's ``array('q')`` indices
    are narrowed to ``'i'`` for the wire.  ``batch == 1`` ships the
    legacy 4-tuple, so older payload producers and consumers interoperate.
    """
    indptr, indices = graph.to_csr()
    if isinstance(indices, array):
        indices = array("i", indices)
    if batch == 1:
        return (indptr, indices, array("q", pool), objective)
    return (indptr, indices, array("q", pool), objective, batch)


def _batch_state(trav, objective, batch):
    """``(batch_evaluate, current_nd)`` for a worker, or ``(None, None)``
    when batching is off or the batch plane is unavailable."""
    if batch <= 1:
        return None, None
    batch_evaluate = make_batch_evaluator(trav, objective)
    if batch_evaluate is None:
        return None, None
    return batch_evaluate, _np.full(trav.n, -1, dtype=_np.int32)


def build_greedy_state(payload: tuple) -> tuple:
    """Rebuild the traversal workspace and bound evaluators from a payload."""
    if len(payload) == 5:
        indptr, indices, pool, objective, batch = payload
    else:
        indptr, indices, pool, objective = payload
        batch = 1
    trav = CSRTraversal(indptr, indices)
    evaluate = make_evaluator(trav, objective)
    # Round 0 only: the group is empty, every distance is infinity.
    current = [-1] * trav.n
    batch_evaluate, current_nd = _batch_state(trav, objective, batch)
    return (pool, evaluate, current, batch, batch_evaluate, current_nd)


#: Worker-process state, populated by :func:`init_greedy_worker`
#: (pickle plane).
_STATE: Optional[tuple] = None

#: Attached ``(indptr, indices)`` views (shm plane); the traversal
#: workspace is built from them lazily, once, on the first spec task.
_CSR: Optional[tuple] = None

#: Lazily built ``(CSRTraversal, current)`` pair shared by every call —
#: ``current`` is the all--1 round-0 distance vector, never mutated by
#: ``collect=False`` evaluation.
_TRAV: Optional[tuple] = None

#: Last materialized :class:`GreedySpec` state:
#: ``{"key", "state", "names"}``, as in :mod:`repro.parallel.worker`.
_CALL: Optional[dict] = None


def init_greedy_worker(payload: tuple) -> None:
    """Pool initializer for either data plane (see module docstring)."""
    global _STATE, _CSR, _TRAV, _CALL
    # isinstance guard: the pickle payload leads with the indptr array,
    # and ndarray == str compares elementwise instead of returning False.
    if payload and isinstance(payload[0], str) and payload[0] == "shm":
        refs = payload[1]
        _CSR = (attach_view(refs["indptr"]), attach_view(refs["indices"]))
        _STATE = None
        _TRAV = None
        _CALL = None
        return
    _STATE = build_greedy_state(payload)


def _greedy_call_state(spec: GreedySpec) -> tuple:
    """The worker state tuple for ``spec``, cached by spec key."""
    global _TRAV, _CALL
    cached = _CALL
    if cached is not None and cached["key"] == spec.key:
        return cached["state"]
    if _CSR is None:
        raise RuntimeError(
            "received a shared-memory task but this worker was not "
            "initialized with a shm payload"
        )
    if _TRAV is None:
        trav = CSRTraversal(_CSR[0], _CSR[1])
        _TRAV = (trav, [-1] * trav.n)
    trav, current = _TRAV
    pool = attach_view(spec.pool)
    evaluate = make_evaluator(trav, spec.objective)
    batch = getattr(spec, "batch", 1)
    batch_evaluate, current_nd = _batch_state(trav, spec.objective, batch)
    state = (pool, evaluate, current, batch, batch_evaluate, current_nd)
    _CALL = {"key": spec.key, "state": state, "names": {spec.pool.name}}
    if cached is not None:
        stale = cached["names"] - _CALL["names"]
        cached = None
        release_attachments(stale)
    return state


def run_gain_chunk(task: tuple, state: Optional[tuple] = None) -> array:
    """Round-0 gains for one pool slice, as an ``array('d')``.

    ``task`` is ``(lo, hi)`` on the pickle plane or ``(spec, lo, hi)``
    on the shm plane.
    """
    if isinstance(task[0], int):
        lo, hi = task
        if state is None:
            state = _STATE
    else:
        spec, lo, hi = task
        if state is None:
            state = _greedy_call_state(spec)
    pool, evaluate, current, batch, batch_evaluate, current_nd = state
    seg = pool[lo:hi]
    if batch_evaluate is not None and hi - lo > 1:
        # Batched lanes: bitwise equal to the scalar loop below (see
        # repro.paths.csr), so chunking × batching never shows in the
        # gains.
        out = array("d")
        for i in range(0, len(seg), batch):
            lane = seg[i : i + batch]
            out.extend(
                g for g, _none in batch_evaluate(lane, current_nd, False)
            )
        return out
    return array("d", [evaluate(u, current, False)[0] for u in seg])


def validate_gain_chunk(task: tuple, result) -> bool:
    """Schema check for a :func:`run_gain_chunk` payload.

    Exactly one non-NaN float per pool slot.  (No sign check: the
    bundled objectives only produce non-negative round-0 gains, but the
    evaluator accepts arbitrary ``GainObjective`` weights.)
    """
    if isinstance(task[0], int):
        lo, hi = task
    else:
        lo, hi = task[1], task[2]
    if not isinstance(result, array) or result.typecode != "d":
        return False
    if len(result) != hi - lo:
        return False
    return all(g == g for g in result)
