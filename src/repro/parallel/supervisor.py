"""Resilient pool supervision for the chunked parallel engines.

The PR-1/PR-3 pooled paths (`parallel_refine_sky`'s status/witness
passes, the lazy greedy round-0 fan-out) assumed a perfect pool: a
worker that segfaults, hangs or returns garbage took the whole run down
with it.  :class:`PoolSupervisor` removes that assumption without
touching the engines' correctness arguments, because every chunk is a
pure function of frozen state — re-running one, anywhere, any number of
times, yields the same value.  Supervision therefore composes freely
with the bit-for-bit equivalence proofs: the supervisor only decides
*where* and *when* a chunk runs, never *what* it computes.

Failure handling, per chunk:

* **Crash** — a worker dying (segfault, ``os._exit``) breaks the
  :class:`~concurrent.futures.process.ProcessPoolExecutor`; the
  supervisor kills what is left of the pool, rebuilds it, and
  resubmits every unfinished chunk.
* **Hang / deadline** — each chunk gets ``config.timeout`` seconds
  from the moment the supervisor starts waiting on it (chunks are
  collected in submission order, so later chunks only ever get *more*
  slack, never less).  A blown deadline terminates the worker
  processes outright — ``close()``/``join()`` would wait on the hung
  task forever — then rebuilds.
* **Worker exception** — e.g. ``MemoryError``: the pool survives;
  only the failing chunk is retried.
* **Corrupt payload** — every result is passed to the caller's
  ``validate(task, result)`` schema check before it is accepted; a
  rejected payload is indistinguishable from a failed chunk.

Each observed failure charges the chunk one unit of its bounded retry
budget, preceded by an exponential backoff with deterministic seeded
jitter (``config.seed``) so chaos tests replay identically.  When the
budget is exhausted the supervisor runs the caller's sequential
``fallback(task)`` in-process — the guaranteed path that cannot crash
differently from the sequential engine itself.  Only a fallback that
*also* raises surfaces, as :class:`~repro.errors.RecoveryError`.

Every recovery event lands in :attr:`PoolSupervisor.events` under
``resilience_*`` keys, which the engines merge into
``counters.extra`` — observability rides the existing counter channel.
"""

from __future__ import annotations

import signal
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass
from random import Random
from typing import Callable, Optional, Sequence

from repro.errors import RecoveryError
from repro.harness.faults import (
    CORRUPT_PAYLOAD,
    FaultPlan,
    active_fault,
    install_fault_plan,
    perform_fault,
    wants_corrupt_return,
)
from repro.parallel.params import validate_pool_params

__all__ = [
    "DEFAULT_TIMEOUT",
    "DEFAULT_MAX_RETRIES",
    "PoolSupervisor",
    "SupervisorConfig",
    "supervised_call",
]

#: Per-chunk deadline when the caller does not set one.  Generous on
#: purpose: a deadline kill on a *live* chunk is safe (the retry or the
#: sequential fallback recomputes the identical value) but wasteful, so
#: the default only has to catch genuine hangs and silent worker deaths.
DEFAULT_TIMEOUT = 300.0

#: Retry budget per chunk before the sequential fallback takes over.
DEFAULT_MAX_RETRIES = 2


@dataclass(frozen=True)
class SupervisorConfig:
    """Recovery policy knobs, bundled so engines forward one object.

    ``timeout``
        Per-chunk deadline in seconds (``None`` → :data:`DEFAULT_TIMEOUT`).
    ``max_retries``
        Pool re-attempts per chunk before falling back sequentially.
    ``backoff_base`` / ``backoff_cap``
        Exponential backoff before a retry round: attempt ``a`` sleeps
        ``min(cap, base · 2^(a-1))`` scaled by jitter in ``[0.5, 1.0)``.
    ``seed``
        Seed of the jitter stream — recovery timing is reproducible.
    """

    timeout: Optional[float] = None
    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    seed: int = 0

    def effective_timeout(self) -> float:
        """The per-chunk deadline in seconds (``None`` → the default)."""
        return DEFAULT_TIMEOUT if self.timeout is None else float(self.timeout)


def _init_supervised_worker(plan, initializer, initargs) -> None:
    """Composed pool initializer: fault plan first, then the engine's own.

    Workers also ignore SIGINT — on Ctrl-C the *parent* decides
    (terminate + one-line message), instead of every child spraying a
    ``KeyboardInterrupt`` traceback over the terminal.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platforms
        pass
    install_fault_plan(plan)
    if initializer is not None:
        initializer(*initargs)


def supervised_call(fn, chunk_id: int, attempt: int, task):
    """Worker-side chunk entry: consult the fault plan, then run ``fn``.

    Module-level so it pickles by reference under any start method.
    """
    kind = active_fault(chunk_id, attempt)
    if kind is not None:
        token = perform_fault(kind)
        if wants_corrupt_return(token):
            return CORRUPT_PAYLOAD
    return fn(task)


#: Event-counter keys (``resilience_`` prefix added on read-out).
_EVENTS = (
    "retries",
    "fallback_chunks",
    "worker_crashes",
    "deadline_kills",
    "worker_errors",
    "corrupt_payloads",
    "pool_rebuilds",
    "backoffs",
)

#: Placeholder for "no result collected yet" (worker payloads are
#: tuples/arrays, so even a worker returning ``None`` is distinguishable).
_UNSET = object()


class PoolSupervisor:
    """Owns one worker pool and runs chunk batches over it, resiliently.

    Use as a context manager: ``__exit__`` unconditionally terminates
    whatever pool is alive, so no child process survives an exception —
    including ``KeyboardInterrupt`` — raised anywhere inside the block.

    One supervisor may :meth:`run` several batches (the refine engine
    runs its status and witness passes over the same pool); events
    accumulate across them.
    """

    def __init__(
        self,
        *,
        workers: int,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        config: Optional[SupervisorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        mp_context=None,
    ):
        config = config or SupervisorConfig()
        validate_pool_params(
            workers=workers,
            timeout=config.timeout,
            max_retries=config.max_retries,
        )
        self.workers = workers
        self.config = config
        self.fault_plan = fault_plan
        self._mp_context = mp_context
        self._initializer = initializer
        self._initargs = initargs
        self._executor: Optional[ProcessPoolExecutor] = None
        self._rng = Random(config.seed)
        self.events: dict[str, int] = {f"resilience_{k}": 0 for k in _EVENTS}

    # -- pool lifecycle ------------------------------------------------
    def __enter__(self) -> "PoolSupervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._kill_pool(count_rebuild=False)

    def shutdown(self) -> None:
        """Terminate the pool now, without charging a rebuild event.

        For owners that keep a supervisor warm across calls (an
        :class:`~repro.parallel.session.EngineSession`) instead of
        context-managing one per call.  Idempotent; a later :meth:`run`
        would simply fork a fresh pool.
        """
        self._kill_pool(count_rebuild=False)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=self._mp_context,
                initializer=_init_supervised_worker,
                initargs=(self.fault_plan, self._initializer, self._initargs),
            )
        return self._executor

    def _kill_pool(self, count_rebuild: bool = True) -> None:
        """Terminate the pool *now* — never wait on possibly-hung tasks."""
        executor = self._executor
        if executor is None:
            return
        self._executor = None
        # ProcessPoolExecutor has no public terminate(); killing the
        # worker processes directly is the only way to reclaim a hung
        # pool, and shutdown(wait=False) then reaps the plumbing.
        procs = list(getattr(executor, "_processes", {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except (OSError, AttributeError, ValueError):
                pass
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.join(5.0)
            except (OSError, AssertionError, ValueError):
                pass
        if count_rebuild:
            self.events["resilience_pool_rebuilds"] += 1

    # -- recovery helpers ----------------------------------------------
    def _backoff(self, attempt: int) -> None:
        cfg = self.config
        delay = min(cfg.backoff_cap, cfg.backoff_base * (2 ** (attempt - 1)))
        self.events["resilience_backoffs"] += 1
        time.sleep(delay * (0.5 + self._rng.random() / 2))

    def _valid(self, validate, task, result) -> bool:
        if validate is None:
            return result is not CORRUPT_PAYLOAD and result != CORRUPT_PAYLOAD
        try:
            return bool(validate(task, result))
        except (TypeError, ValueError, KeyError, IndexError):
            return False

    def _run_fallback(self, fallback, task):
        self.events["resilience_fallback_chunks"] += 1
        try:
            return fallback(task)
        except Exception as exc:
            raise RecoveryError(
                "sequential fallback failed after the retry budget was "
                f"exhausted: {exc!r}"
            ) from exc

    # -- the batch runner ----------------------------------------------
    def run(
        self,
        fn: Callable,
        tasks: Sequence,
        *,
        fallback: Callable,
        validate: Optional[Callable] = None,
    ) -> list:
        """``[fn(task) for task in tasks]`` with supervised execution.

        Results come back in task order.  ``fn`` must be a module-level
        (picklable) function of one task; ``fallback(task)`` must
        compute the same value in-process; ``validate(task, result)``
        (optional) returns truth or raises on a malformed payload.
        """
        results = [_UNSET] * len(tasks)
        attempts = [0] * len(tasks)
        pending = list(range(len(tasks)))
        deadline = self.config.effective_timeout()

        while pending:
            executor = self._ensure_pool()
            try:
                futures = {
                    i: executor.submit(
                        supervised_call, fn, i, attempts[i], tasks[i]
                    )
                    for i in pending
                }
            except (BrokenProcessPool, RuntimeError):
                # The pool broke before it even accepted work (e.g. a
                # crashing initializer): charge the first pending chunk
                # so progress is guaranteed, rebuild, go around.
                self.events["resilience_worker_crashes"] += 1
                self._kill_pool()
                self._observe_failure(
                    pending[0], attempts, fallback, results, tasks
                )
                pending = [i for i in pending if results[i] is _UNSET]
                continue

            failed: list[int] = []
            pool_dead = False
            for i in pending:
                future = futures[i]
                if pool_dead:
                    # Pool already gone: salvage chunks that finished
                    # before the kill, leave the rest (including
                    # futures cancelled by the shutdown — their
                    # CancelledError is a BaseException) for
                    # resubmission.
                    if not future.done() or future.cancelled():
                        continue
                try:
                    result = future.result(timeout=None if pool_dead else deadline)
                except FutureTimeoutError:
                    self.events["resilience_deadline_kills"] += 1
                    self._kill_pool()
                    pool_dead = True
                    failed.append(i)
                    continue
                except BrokenProcessPool:
                    if not pool_dead:
                        self.events["resilience_worker_crashes"] += 1
                        self._kill_pool()
                        pool_dead = True
                        failed.append(i)
                    continue
                except Exception:
                    # Raised *inside* the worker; the pool is healthy.
                    self.events["resilience_worker_errors"] += 1
                    failed.append(i)
                    continue
                if self._valid(validate, tasks[i], result):
                    results[i] = result
                else:
                    self.events["resilience_corrupt_payloads"] += 1
                    failed.append(i)

            max_attempt = 0
            for i in failed:
                max_attempt = max(
                    max_attempt,
                    self._observe_failure(
                        i, attempts, fallback, results, tasks
                    ),
                )
            pending = [i for i in pending if results[i] is _UNSET]
            if pending and max_attempt:
                self._backoff(max_attempt)
        return results

    def _observe_failure(
        self, i: int, attempts: list, fallback, results: list, tasks
    ) -> int:
        """Charge chunk ``i``'s budget; fall back when it is spent.

        Returns the chunk's new attempt number (0 when it was resolved
        by fallback — no backoff needed for work already done).
        """
        attempts[i] += 1
        if attempts[i] > self.config.max_retries:
            results[i] = self._run_fallback(fallback, tasks[i])
            return 0
        self.events["resilience_retries"] += 1
        return attempts[i]
