"""Candidate-set chunking for the parallel refine engine.

The candidate set ``C`` of the filter phase is sorted by vertex ID, so
index ranges over it are contiguous ID ranges — the partitioning the
engine ships to workers.  Chunking is purely a scheduling concern: the
per-candidate scans are pure functions, so any partition of ``C`` merges
to the same result and the same counter totals.
"""

from __future__ import annotations

from repro.errors import ParameterError

__all__ = ["chunk_ranges", "default_chunk_size"]

#: Chunks-per-worker target: a few chunks per worker smooths out the
#: skew of hub-heavy candidates without drowning the pool in tiny tasks.
CHUNKS_PER_WORKER = 4


def chunk_ranges(num_items: int, chunk_size: int) -> list[tuple[int, int]]:
    """Half-open ``(lo, hi)`` index ranges covering ``0 .. num_items``.

    >>> chunk_ranges(7, 3)
    [(0, 3), (3, 6), (6, 7)]
    >>> chunk_ranges(0, 3)
    []
    """
    if chunk_size < 1:
        raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    if num_items < 0:
        raise ParameterError(f"num_items must be >= 0, got {num_items}")
    return [
        (lo, min(lo + chunk_size, num_items))
        for lo in range(0, num_items, chunk_size)
    ]


def default_chunk_size(num_items: int, workers: int) -> int:
    """Chunk size giving ~``CHUNKS_PER_WORKER`` chunks per worker.

    >>> default_chunk_size(1000, 4)
    63
    >>> default_chunk_size(0, 4)
    1
    """
    if workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    if num_items <= 0:
        return 1
    return max(1, -(-num_items // (CHUNKS_PER_WORKER * workers)))
