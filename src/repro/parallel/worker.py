"""Per-candidate refine scans for the parallel engine.

The sequential refine loop of Algorithm 3 looks order-dependent — it
skips potential dominators ``w`` with ``O(w) ≠ w``, and refine updates
``O(*)`` as it goes — but the dependence is shallow, and this module
exploits it to split the phase into two embarrassingly parallel passes
that reproduce the sequential output *bit for bit*:

1. **Status pass** (:func:`scan_status`): is candidate ``u`` dominated
   from its 2-hop neighborhood?  The scan skips only *filter-phase*
   dominations, which are frozen before refine starts.  Skipping a
   refine-dominated ``w`` is a work-avoidance heuristic, never a
   correctness requirement — a pair that passes the checks certifies a
   genuine domination whatever ``w``'s own status — and conversely the
   pass tests a superset of the pairs the sequential scan tests, so the
   dominated *set* it computes equals the sequential one exactly.
2. **Witness pass** (:func:`scan_witness`): for each dominated
   candidate, recover the dominator entry the sequential scan would
   have written.  When the sequential loop reaches ``u``, the refine
   state it sees is the *final* status of every candidate below ``u``
   (entries are written at most once, and candidates are processed in
   ascending ID order), so the sequential witness is a pure function of
   the status-pass output: rescan with the skip predicate
   "``w`` filter-dominated, or ``w < u`` and refine-dominated" and
   return the first dominator that passes Def. 2's tie-break.

Both passes are pure functions of a :class:`RefineState`, which workers
rebuild once per process from a pickle-cheap CSR payload
(:meth:`~repro.graph.adjacency.Graph.to_csr`) and then reuse for every
chunk they are handed — including the per-worker
:class:`~repro.bloom.vertex_filters.VertexBloomIndex`.

Both passes also come in a packed-bitset flavor
(:func:`scan_status_bitset` / :func:`scan_witness_bitset`): the same
two-pass decomposition with the per-pair test replaced by the
word-parallel AND-NOT of :mod:`repro.core.bitset_refine`.  The engine
packs the candidate matrix **once in the parent**, ships its raw words
inside the payload, and workers rebuild zero-copy *views*
(:meth:`~repro.graph.bitmatrix.CandidateBitMatrix.from_payload`) —
rows are never re-packed per process.  Equivalence transfers verbatim:
the decomposition argument above never looks inside the pair test, only
at which pairs are skipped, and the bitset test accepts exactly the
pairs the exact bloom ladder accepts.

And in a block-vectorized flavor (``refine="block"``): the chunk
runners hand whole candidate ranges to
:mod:`repro.core.block_refine`'s batch kernels instead of scanning one
vertex at a time.  The same two-pass decomposition applies unchanged —
the block kernel implements exactly the status/witness predicates
above, in ndarray blocks — so chunked totals and outputs match the
scalar kernels bit for bit.  The engine computes the k-core numbers
once in the parent and ships them like any other call-scoped segment;
workers never re-peel the graph.
"""

from __future__ import annotations

from array import array
from typing import NamedTuple, Optional, Sequence

from repro.bloom.vertex_filters import VertexBloomIndex
from repro.core.bitset_refine import BitsetScanContext
from repro.core.block_refine import (
    BlockRefineContext,
    block_status_chunk,
    block_witness_chunk,
)
from repro.core.counters import SkylineCounters
from repro.graph.adjacency import CSRGraphView, Graph
from repro.graph.bitmatrix import CandidateBitMatrix
from repro.parallel.shm import SegmentRef, attach_view, release_attachments

__all__ = [
    "RefineSpec",
    "RefineState",
    "build_payload",
    "build_state",
    "init_worker",
    "run_status_chunk",
    "run_witness_chunk",
    "scan_status",
    "scan_status_bitset",
    "scan_witness",
    "scan_witness_bitset",
    "validate_status_chunk",
    "validate_witness_chunk",
]


class RefineSpec(NamedTuple):
    """Per-call refine parameters, shipped inside each shm-plane task.

    On the shared-memory plane the pool initializer installs only the
    *graph* (attached CSR views, one per process lifetime); everything
    call-scoped — candidates, filter dominators, kernel knobs, the
    optional bit matrix — rides in this spec as :class:`~repro.parallel.
    shm.SegmentRef` handles plus scalars, a few hundred bytes per task.
    Workers cache the state they build from a spec under ``key`` (the
    engine derives it from the segment names and kernel knobs), so a
    warm session repeating a call re-uses the state outright and a new
    call evicts exactly the previous call's attachments.
    """

    epoch: int
    key: tuple
    refine: str
    bits: int
    seed: int
    candidates: SegmentRef
    dominator: SegmentRef
    matrix: Optional[SegmentRef]
    #: Parent-computed k-core numbers (block kernel only; else None).
    cores: Optional[SegmentRef] = None


class RefineState:
    """Everything a refine scan needs, built once per worker process.

    ``refine`` selects the kernel: ``"bloom"`` states carry a
    :class:`VertexBloomIndex`, ``"bitset"`` states a
    :class:`~repro.core.bitset_refine.BitsetScanContext`, ``"block"``
    states a :class:`~repro.core.block_refine.BlockRefineContext` (the
    non-bloom modes never build a filter index).
    """

    __slots__ = (
        "graph",
        "candidates",
        "dominator",
        "blooms",
        "ctx",
        "refine",
        "refine_dominated",
    )

    def __init__(
        self,
        graph: Graph,
        candidates: Sequence[int],
        dominator: Sequence[int],
        blooms: Optional[VertexBloomIndex],
        ctx: Optional[BitsetScanContext] = None,
        refine: str = "bloom",
    ):
        self.graph = graph
        self.candidates = candidates
        #: Filter-phase dominator array, frozen for the whole refine.
        self.dominator = dominator
        self.blooms = blooms
        self.ctx = ctx
        self.refine = refine
        #: Per-vertex flags for the witness pass; set lazily from the
        #: status-pass output (``None`` until then).
        self.refine_dominated: Optional[bytearray] = None


def build_state(
    graph: Graph,
    candidates: Sequence[int],
    dominator: Sequence[int],
    *,
    bits: int,
    seed: int,
    refine: str = "bloom",
    matrix: Optional[CandidateBitMatrix] = None,
    cores: Optional[Sequence[int]] = None,
) -> RefineState:
    """A :class:`RefineState` over a live graph (in-process execution)."""
    if refine == "bitset":
        ctx = BitsetScanContext(
            graph, candidates, matrix, instrumented=False
        )
        return RefineState(
            graph, candidates, dominator, None, ctx, refine
        )
    if refine == "block":
        ctx = BlockRefineContext(graph, candidates, dominator, cores=cores)
        return RefineState(
            graph, candidates, dominator, None, ctx, refine
        )
    blooms = VertexBloomIndex(graph, candidates, bits=bits, seed=seed)
    return RefineState(graph, candidates, dominator, blooms)


def build_payload(
    graph: Graph,
    candidates: Sequence[int],
    dominator: Sequence[int],
    *,
    bits: int,
    seed: int,
    refine: str = "bloom",
    matrix: Optional[CandidateBitMatrix] = None,
    cores: Optional[Sequence[int]] = None,
) -> tuple:
    """The pickle-cheap snapshot shipped to every worker's initializer.

    In bitset mode the matrix rides along as its
    :meth:`~repro.graph.bitmatrix.CandidateBitMatrix.to_payload` raw
    bytes; workers rebuild read-only views, never re-pack.  In block
    mode the parent's k-core numbers ride the same way, so workers
    never re-peel the graph.
    """
    indptr, indices = graph.to_csr()
    return (
        indptr,
        indices,
        array("q", candidates),
        array("q", dominator),
        bits,
        seed,
        refine,
        matrix.to_payload() if matrix is not None else None,
        array("q", cores) if cores is not None else None,
    )


#: Worker-process state, populated by :func:`init_worker` (pickle plane).
_STATE: Optional[RefineState] = None

#: Worker-process graph view over attached CSR segments (shm plane).
_GRAPH: Optional[Graph] = None

#: Cache of the last :class:`RefineSpec` materialized in this process:
#: ``{"key", "state", "names"}`` where ``names`` are the call-scoped
#: segment attachments to release when a different spec arrives.
_CALL: Optional[dict] = None


def init_worker(payload: tuple) -> None:
    """Pool initializer for either data plane.

    Pickle plane: the classic 9-field payload of :func:`build_payload`
    — rebuild graph, candidates and the kernel once per process.  Shm
    plane: ``("shm", {"indptr": ref, "indices": ref})`` — attach the
    CSR segments and build a lazy :class:`~repro.graph.adjacency.
    CSRGraphView`; per-call state arrives later inside each task's
    :class:`RefineSpec`.  Pool rebuilds after a crash re-run this with
    the same initargs, so a fresh worker re-attaches automatically.
    """
    global _STATE, _GRAPH, _CALL
    # isinstance guard: the pickle payload leads with the indptr array,
    # and ndarray == str compares elementwise instead of returning False.
    if payload and isinstance(payload[0], str) and payload[0] == "shm":
        refs = payload[1]
        _GRAPH = CSRGraphView(
            attach_view(refs["indptr"]), attach_view(refs["indices"])
        )
        _STATE = None
        _CALL = None
        return
    (
        indptr,
        indices,
        candidates,
        dominator,
        bits,
        seed,
        refine,
        matrix_payload,
        cores,
    ) = payload
    graph = Graph.from_csr(indptr, indices)
    matrix = (
        CandidateBitMatrix.from_payload(matrix_payload)
        if matrix_payload is not None
        else None
    )
    _STATE = build_state(
        graph,
        candidates,
        dominator,
        bits=bits,
        seed=seed,
        refine=refine,
        matrix=matrix,
        cores=cores,
    )


def _call_state(spec: RefineSpec) -> RefineState:
    """The :class:`RefineState` for ``spec``, cached per process.

    A warm session re-issuing the same call (same ``spec.key``) hits
    the cache and pays nothing; a different call rebuilds the state
    from freshly attached segments and releases the previous call's
    attachments (the pinned graph segments are never in ``names``).
    """
    global _CALL
    cached = _CALL
    if cached is not None and cached["key"] == spec.key:
        return cached["state"]
    if _GRAPH is None:
        raise RuntimeError(
            "received a shared-memory task but this worker was not "
            "initialized with a shm payload"
        )
    candidates = attach_view(spec.candidates)
    dominator = attach_view(spec.dominator)
    names = {spec.candidates.name, spec.dominator.name}
    matrix = None
    if spec.matrix is not None:
        matrix = CandidateBitMatrix.from_buffer(
            _GRAPH.num_vertices, candidates, attach_view(spec.matrix)
        )
        names.add(spec.matrix.name)
    cores = None
    if spec.cores is not None:
        cores = attach_view(spec.cores)
        names.add(spec.cores.name)
    state = build_state(
        _GRAPH,
        candidates,
        dominator,
        bits=spec.bits,
        seed=spec.seed,
        refine=spec.refine,
        matrix=matrix,
        cores=cores,
    )
    _CALL = {"key": spec.key, "state": state, "names": names}
    if cached is not None:
        stale = cached["names"] - names
        cached = None  # drop the old state (and its views) first
        release_attachments(stale)
    return state


def _task_bounds(task: tuple) -> tuple[int, int]:
    """``(lo, hi)`` of a classic ``(lo, hi, ...)`` or spec-led task."""
    first = task[0]
    if isinstance(first, int):
        return first, task[1]
    return task[1], task[2]


def scan_status(state: RefineState, u: int, stats: SkylineCounters) -> bool:
    """``True`` iff candidate ``u`` has a 2-hop dominator (status pass).

    The check ladder per pair mirrors Algorithm 3 exactly — degree skip,
    dominated-dominator skip (filter-phase state only), whole-filter
    bloom subset test, per-neighbor ``BFcheck`` + exact ``NBRcheck`` —
    and stops at the first pair certifying a domination of ``u``
    (strict, or mutual losing the ID tie-break).
    """
    graph = state.graph
    dominator = state.dominator
    filter_word = state.blooms.filter_word
    bit_of = state.blooms.bit_masks
    neighbors = graph.neighbors
    degree = graph.degree
    has_edge = graph.has_edge

    stats.vertices_examined += 1
    deg_u = degree(u)
    bf_u = filter_word(u)
    nbrs_u = neighbors(u)
    for v in nbrs_u:
        for w in neighbors(v):
            if w == u:
                continue
            if degree(w) < deg_u:
                stats.degree_skips += 1
                continue
            if dominator[w] != w:
                stats.dominated_skips += 1
                continue
            stats.pair_tests += 1
            bf_w = filter_word(w)
            if bf_u & bf_w != bf_u:
                stats.bloom_subset_rejects += 1
                continue
            dominated_by_w = True
            for x in nbrs_u:
                if x == v:
                    continue
                stats.bloom_member_checks += 1
                if not (bf_w & bit_of[x]):
                    stats.bloom_member_rejects += 1
                    dominated_by_w = False
                    break
                stats.nbr_checks += 1
                if not has_edge(w, x):
                    stats.bloom_false_positives += 1
                    dominated_by_w = False
                    break
            if not dominated_by_w:
                continue
            # N(u) ⊆ N[w] certified.  Strict domination, or mutual
            # inclusion lost on the Def. 2 ID tie-break, settles u.
            if degree(w) > deg_u or u > w:
                stats.dominations_found += 1
                return True
            # Mutual inclusion won by u (u < w): u stays, keep scanning.
    return False


def scan_witness(state: RefineState, u: int, stats: SkylineCounters) -> int:
    """The dominator entry the sequential scan records for ``u``.

    Precondition: the status pass found ``u`` dominated, and
    ``state.refine_dominated`` holds its output.  Replays ``u``'s scan
    under the sequential skip predicate — ``w`` is skipped when it is
    filter-dominated, or refine-dominated with ``w < u`` — and returns
    the first ``w`` whose certified inclusion also settles ``u``
    (sequential writes ``O(u)`` at most once, so first hit = final
    entry).
    """
    graph = state.graph
    dominator = state.dominator
    refine_dominated = state.refine_dominated
    filter_word = state.blooms.filter_word
    bit_of = state.blooms.bit_masks
    neighbors = graph.neighbors
    degree = graph.degree
    has_edge = graph.has_edge

    deg_u = degree(u)
    bf_u = filter_word(u)
    nbrs_u = neighbors(u)
    for v in nbrs_u:
        for w in neighbors(v):
            if w == u:
                continue
            if degree(w) < deg_u:
                stats.degree_skips += 1
                continue
            if dominator[w] != w or (w < u and refine_dominated[w]):
                stats.dominated_skips += 1
                continue
            stats.pair_tests += 1
            bf_w = filter_word(w)
            if bf_u & bf_w != bf_u:
                stats.bloom_subset_rejects += 1
                continue
            dominated_by_w = True
            for x in nbrs_u:
                if x == v:
                    continue
                stats.bloom_member_checks += 1
                if not (bf_w & bit_of[x]):
                    stats.bloom_member_rejects += 1
                    dominated_by_w = False
                    break
                stats.nbr_checks += 1
                if not has_edge(w, x):
                    stats.bloom_false_positives += 1
                    dominated_by_w = False
                    break
            if not dominated_by_w:
                continue
            if degree(w) > deg_u or u > w:
                return w
    raise RuntimeError(
        f"refine witness for vertex {u} vanished between passes; "
        "this indicates a bug in the status pass"
    )


def scan_status_bitset(
    state: RefineState, u: int, stats: SkylineCounters
) -> bool:
    """Bitset-kernel status pass: ``True`` iff ``u`` has a 2-hop dominator.

    Same skip predicate as :func:`scan_status` (frozen filter-phase
    dominations only), with the pair test replaced by the packed
    AND-NOT and its stamp-cached verdicts.  Counter stream: the ladder
    counters cover only the candidate members of each visited neighbor
    list (the kernel never iterates non-candidates); ``bloom_*`` and
    ``nbr_checks`` stay zero.
    """
    ctx = state.ctx
    dominator = state.dominator
    deg = ctx.deg
    cand_groups = ctx.cand_groups
    seen = ctx.seen

    stats.vertices_examined += 1
    stamp = ctx.next_stamp()
    deg_u = deg[u]
    row_u = ctx.row_int[u]
    for v in state.graph.neighbors(u):
        for w, deg_w, comp_w in cand_groups[v]:
            if w == u:
                continue
            if deg_w < deg_u:
                stats.degree_skips += 1
                continue
            if dominator[w] != w:
                stats.dominated_skips += 1
                continue
            stats.pair_tests += 1
            if seen[w] == stamp:
                # Cached verdict: a failing w stays failing, a passing
                # w that didn't settle u (mutual won by u) never will.
                continue
            seen[w] = stamp
            if row_u & comp_w:
                continue
            if deg_w > deg_u or u > w:
                stats.dominations_found += 1
                return True
            # Mutual inclusion won by u (u < w): u stays, keep scanning.
    return False


def scan_witness_bitset(
    state: RefineState, u: int, stats: SkylineCounters
) -> int:
    """Bitset-kernel witness pass: the sequential dominator entry for ``u``.

    Same skip predicate as :func:`scan_witness` — both inputs to it
    (filter dominations and the status-pass flags) are frozen, so the
    stamp cache remains sound here too.
    """
    ctx = state.ctx
    dominator = state.dominator
    refine_dominated = state.refine_dominated
    deg = ctx.deg
    cand_groups = ctx.cand_groups
    seen = ctx.seen

    stamp = ctx.next_stamp()
    deg_u = deg[u]
    row_u = ctx.row_int[u]
    for v in state.graph.neighbors(u):
        for w, deg_w, comp_w in cand_groups[v]:
            if w == u:
                continue
            if deg_w < deg_u:
                stats.degree_skips += 1
                continue
            if dominator[w] != w or (w < u and refine_dominated[w]):
                stats.dominated_skips += 1
                continue
            stats.pair_tests += 1
            if seen[w] == stamp:
                continue
            seen[w] = stamp
            if row_u & comp_w:
                continue
            if deg_w > deg_u or u > w:
                return w
    raise RuntimeError(
        f"refine witness for vertex {u} vanished between passes; "
        "this indicates a bug in the status pass"
    )


def _ensure_flags(state: RefineState, dominated: Sequence[int]) -> None:
    if state.refine_dominated is None:
        flags = bytearray(state.graph.num_vertices)
        for u in dominated:
            flags[u] = 1
        state.refine_dominated = flags


def run_status_chunk(task: tuple, state: Optional[RefineState] = None):
    """Status pass over one candidate chunk.

    ``task`` is ``(lo, hi)`` on the pickle plane or
    ``(spec, lo, hi)`` on the shm plane.  Returns
    ``(dominated_ids, counter_dict)``.  ``state`` defaults to the
    worker-process state (installed by :func:`init_worker` or resolved
    from the spec); the engine passes its own when running in-process
    or as the sequential fallback.
    """
    if state is None:
        first = task[0]
        state = _STATE if isinstance(first, int) else _call_state(first)
    lo, hi = _task_bounds(task)
    stats = SkylineCounters()
    if state.refine == "block":
        return block_status_chunk(state.ctx, lo, hi, stats), _chunk_stats(
            stats
        )
    scan = scan_status_bitset if state.refine == "bitset" else scan_status
    dominated = [
        u for u in state.candidates[lo:hi] if scan(state, u, stats)
    ]
    return dominated, _chunk_stats(stats)


def _chunk_stats(stats: SkylineCounters) -> dict:
    """A chunk's counter snapshot, extras folded in as plain ints.

    ``as_dict`` excludes ``extra`` by design; the block kernel's
    instrumentation (``core_pretest_rejects``) lives there, and the
    supervisor's merge routes unknown keys back into ``extra`` — so
    folding the int-valued extras into the flat dict round-trips them.
    """
    out = stats.as_dict()
    for key, value in stats.extra.items():
        if isinstance(value, int) and not isinstance(value, bool):
            out[key] = value
    return out


def _valid_stats(stats) -> bool:
    return isinstance(stats, dict) and all(
        isinstance(k, str)
        and isinstance(v, int)
        and not isinstance(v, bool)
        for k, v in stats.items()
    )


def _valid_vertex(u) -> bool:
    return isinstance(u, int) and not isinstance(u, bool) and u >= 0


def validate_status_chunk(task: tuple, result) -> bool:
    """Schema check for a :func:`run_status_chunk` payload.

    The supervisor rejects (and recomputes) anything that is not a
    ``(ascending vertex-id list, counter dict)`` pair sized within the
    chunk — a worker returning garbage must never poison the merge.
    """
    lo, hi = _task_bounds(task)
    if not (isinstance(result, tuple) and len(result) == 2):
        return False
    part, stats = result
    if not isinstance(part, list) or len(part) > hi - lo:
        return False
    if not all(_valid_vertex(u) for u in part):
        return False
    if any(part[j] >= part[j + 1] for j in range(len(part) - 1)):
        return False
    return _valid_stats(stats)


def validate_witness_chunk(task: tuple, result) -> bool:
    """Schema check for a :func:`run_witness_chunk` payload.

    Exactly one ``(dominated, witness)`` pair per chunk entry — the
    witness pass never drops or invents candidates.
    """
    lo, hi = _task_bounds(task)
    if not (isinstance(result, tuple) and len(result) == 2):
        return False
    part, stats = result
    if not isinstance(part, list) or len(part) != hi - lo:
        return False
    for pair in part:
        if not (isinstance(pair, tuple) and len(pair) == 2):
            return False
        u, w = pair
        if not (_valid_vertex(u) and _valid_vertex(w)) or u == w:
            return False
    return _valid_stats(stats)


def run_witness_chunk(task: tuple, state: Optional[RefineState] = None):
    """Witness pass over one chunk of the dominated-candidate list.

    ``task`` is ``(lo, hi, dominated)`` on the pickle plane —
    ``dominated`` is the full ascending list from the status pass,
    shipped whole so each worker can build the skip flags once and
    index its slice — or ``(spec, lo, hi, dominated_ref)`` on the shm
    plane, where the list lives in a call-scoped segment attached on
    first touch.  Returns ``([(u, witness), ...], counter_dict)``.
    """
    if isinstance(task[0], int):
        lo, hi, dominated = task
        if state is None:
            state = _STATE
    else:
        spec, lo, hi, dom_ref = task
        if state is None:
            state = _call_state(spec)
            if _CALL is not None and _CALL["state"] is state:
                _CALL["names"].add(dom_ref.name)
        dominated = attach_view(dom_ref)
    stats = SkylineCounters()
    if state.refine == "block":
        state.ctx.ensure_refine_dominated(dominated)
        pairs = block_witness_chunk(state.ctx, dominated[lo:hi], stats)
        return pairs, _chunk_stats(stats)
    _ensure_flags(state, dominated)
    scan = scan_witness_bitset if state.refine == "bitset" else scan_witness
    pairs = [(u, scan(state, u, stats)) for u in dominated[lo:hi]]
    return pairs, _chunk_stats(stats)
