"""Warm engine sessions: one pool + one published graph, many calls.

The one-shot pooled engines pay pool fork + payload ship on every call.
For a serving loop — many skyline/greedy requests against the same
immutable graph — that setup dwarfs the dispatch.  An
:class:`EngineSession` amortizes it:

* On the **shm plane** the session publishes the graph's CSR arrays as
  shared-memory segments once (:class:`~repro.parallel.shm.
  ShmDataPlane`), forks one supervised pool whose initializer merely
  *attaches* them, and keeps both alive across calls.  Call-scoped data
  (candidates, dominators, greedy pools) is published into digest-keyed
  cached segments, so a repeated call ships only a spec of a few
  hundred bytes per chunk and hits the workers' state cache outright —
  the first call pays publish + fork, later calls pay chunk dispatch.
* On the **pickle plane** (forced, or the automatic fallback when
  shared memory or numpy is unavailable) the session still centralizes
  the scheduling knobs, but every call rebuilds its own pool — warm
  reuse requires attachable segments, and the docs say so.

Sessions compose with the fault story unchanged: the pool is a
:class:`~repro.parallel.supervisor.PoolSupervisor`, a crashed pool is
rebuilt with the same initargs (workers re-attach by name), and the
session's finalizing plane unlinks every segment exactly once even on
Ctrl-C or :class:`~repro.errors.RecoveryError` unwinds.

    with EngineSession(graph, workers=4) as session:
        for request in requests:
            result = session.refine_sky()          # warm after call 1
            group = session.greedy_maximize(8, objective)

Thread safety: none.  A session is a single-caller object, like the
engines it fronts.
"""

from __future__ import annotations

import threading
from hashlib import blake2b
from typing import Optional

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.parallel.params import validate_pool_params
from repro.parallel.shm import (
    SegmentRef,
    ShmDataPlane,
    buffer_typecode,
    resolve_data_plane,
)
from repro.parallel.supervisor import (
    DEFAULT_MAX_RETRIES,
    PoolSupervisor,
    SupervisorConfig,
)

__all__ = ["EngineSession"]

#: Cached call-scoped segments per session.  Bounds a long-lived session
#: serving many distinct candidate pools; eviction is oldest-first and
#: unlinks the segment (workers still holding the old mapping keep the
#: memory alive until they rotate their own state cache).
_MAX_CACHED_SEGMENTS = 16


def _session_worker_init(refine_payload, greedy_payload) -> None:
    """Initializer of a session pool: arm *both* worker modules.

    One warm pool serves refine chunks and greedy round-0 chunks alike
    (the refine→greedy reuse pattern), so both modules attach the same
    graph segments — the per-process attachment cache maps each name
    once.  Module-level so it pickles under any start method.
    """
    from repro.parallel.greedy_worker import init_greedy_worker
    from repro.parallel.worker import init_worker

    init_worker(refine_payload)
    init_greedy_worker(greedy_payload)


class EngineSession:
    """Owns a warm worker pool + published segments for one graph.

    Parameters mirror the pooled engines' scheduling knobs and are
    fixed for the session's lifetime — per-call overrides that conflict
    raise :class:`~repro.errors.ParameterError` rather than silently
    rebuilding the pool.

    ``data_plane`` is resolved once, here: ``"auto"`` picks ``"shm"``
    when shared memory and numpy are both usable and falls back to
    ``"pickle"`` otherwise (the reason lands in
    ``counters.extra["data_plane_fallback_reason"]`` of every call).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        workers: Optional[int] = None,
        data_plane: str = "auto",
        chunk_size: Optional[int] = None,
        timeout: Optional[float] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        fault_plan=None,
        seed: int = 0,
    ):
        if workers is None:
            from repro.parallel.engine import default_worker_count

            workers = default_worker_count()
        validate_pool_params(
            workers=workers,
            chunk_size=chunk_size,
            timeout=timeout,
            max_retries=max_retries,
        )
        self.graph = graph
        self.workers = workers
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.max_retries = max_retries
        self.fault_plan = fault_plan
        self.seed = seed
        self.data_plane, self.plane_fallback_reason = resolve_data_plane(
            data_plane
        )
        self._plane: Optional[ShmDataPlane] = (
            ShmDataPlane() if self.data_plane == "shm" else None
        )
        self._graph_refs: Optional[dict] = None
        self._supervisor: Optional[PoolSupervisor] = None
        self._seg_cache: dict[tuple, SegmentRef] = {}
        self._epoch = 0
        self._pooled_calls = 0
        self._closed = False
        self._close_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def check_open(self) -> None:
        """Raise :class:`ParameterError` on use after :meth:`close`."""
        if self._closed:
            raise ParameterError(
                "this EngineSession is closed; create a new one (its "
                "pool and shared-memory segments are gone)"
            )

    def close(self) -> None:
        """Shut the pool down and unlink every segment.  Idempotent.

        Hardened for the serving teardown paths: safe to call from a
        different thread than the one running a pooled call (the
        supervisor kills its pool; the in-flight call surfaces an
        error, never a leak), re-entrant under races (a lock makes the
        closed-flag flip atomic), and exception-safe — segment unlink
        runs even if the pool teardown raises, so an atexit or asyncio
        cancellation unwind never strands ``/dev/shm`` residue.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            supervisor, self._supervisor = self._supervisor, None
        try:
            if supervisor is not None:
                supervisor.shutdown()
        finally:
            self._seg_cache.clear()
            if self._plane is not None:
                self._plane.close()

    def __enter__(self) -> "EngineSession":
        self.check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"EngineSession(workers={self.workers}, "
            f"data_plane={self.data_plane!r}, {state})"
        )

    # -- shm machinery (engine-facing) ---------------------------------
    @property
    def plane(self) -> ShmDataPlane:
        return self._plane

    def _require_shm(self) -> None:
        if self._plane is None:
            raise ParameterError(
                "this EngineSession runs on the pickle plane; it has no "
                "shared-memory segments to publish"
            )

    def graph_refs(self) -> dict:
        """Publish the graph CSR once; return its segment refs.

        Publication is atomic: either both segments are published and
        the refs recorded, or — on a mid-publish failure — the partial
        segment is unlinked before the exception propagates, so a
        rebuild loop retrying a failed session never accumulates
        orphaned ``/dev/shm`` segments.
        """
        self.check_open()
        self._require_shm()
        if self._graph_refs is None:
            indptr, indices = self.graph.to_csr()  # memoized on the graph
            refs: dict[str, SegmentRef] = {}
            try:
                refs["indptr"] = self._plane.publish(
                    indptr, buffer_typecode(indptr)
                )
                refs["indices"] = self._plane.publish(
                    indices, buffer_typecode(indices)
                )
            except BaseException:
                for ref in refs.values():
                    self._plane.unlink_one(ref)
                raise
            self._graph_refs = refs
        return self._graph_refs

    def supervisor(self) -> PoolSupervisor:
        """The warm pool supervisor (shm plane only), created on first use."""
        self.check_open()
        if self._supervisor is None:
            from repro.parallel.engine import _pool_context

            refs = self.graph_refs()
            payload = ("shm", refs)
            self._supervisor = PoolSupervisor(
                workers=self.workers,
                initializer=_session_worker_init,
                initargs=(payload, payload),
                config=SupervisorConfig(
                    timeout=self.timeout,
                    max_retries=self.max_retries,
                    seed=self.seed,
                ),
                fault_plan=self.fault_plan,
                mp_context=_pool_context(),
            )
        return self._supervisor

    def cached_segment(self, kind: str, data, typecode: str) -> SegmentRef:
        """A published segment for ``data``, deduplicated by content.

        Identical content (same ``kind``/bytes) returns the *same*
        segment ref across calls — that name stability is what lets the
        workers' spec-keyed state cache recognize a repeated call.  The
        cache is bounded; the oldest entry is unlinked when it overflows.
        """
        self.check_open()
        self._require_shm()
        mv = memoryview(data)
        if mv.format != "B":
            mv = mv.cast("B")
        digest = blake2b(mv, digest_size=16).digest()
        key = (kind, typecode, digest)
        ref = self._seg_cache.get(key)
        if ref is None:
            ref = self._plane.publish(mv, typecode)
            self._seg_cache[key] = ref
            while len(self._seg_cache) > _MAX_CACHED_SEGMENTS:
                oldest = next(iter(self._seg_cache))
                self._plane.unlink_one(self._seg_cache.pop(oldest))
        return ref

    def next_epoch(self) -> int:
        """A fresh per-call epoch; tags each call's specs for workers."""
        self._epoch += 1
        return self._epoch

    def note_pooled_call(self) -> str:
        """``"cold"`` for the session's first pooled call, ``"warm"`` after."""
        label = "warm" if self._pooled_calls else "cold"
        self._pooled_calls += 1
        return label

    # -- convenience entry points --------------------------------------
    def refine_sky(self, **options):
        """``parallel_refine_sky(graph, session=self, **options)``."""
        from repro.parallel.engine import parallel_refine_sky

        return parallel_refine_sky(self.graph, session=self, **options)

    def greedy_maximize(self, k: int, objective, **options):
        """``lazy_greedy_maximize(graph, k, objective, session=self, ...)``."""
        from repro.centrality.lazy_greedy import lazy_greedy_maximize

        return lazy_greedy_maximize(
            self.graph, k, objective, session=self, **options
        )
