"""Zero-copy shared-memory data plane for the pooled engines.

The pickle plane ships a full CSR/bitmatrix payload into *every* worker
through the pool initializer and rebuilds adjacency lists per process.
For one immutable graph served repeatedly that is pure overhead: the
refine and greedy kernels are read-only over frozen snapshots, which is
exactly the shape :mod:`multiprocessing.shared_memory` is built for.

This module is the plumbing both sides share:

Parent side
    :class:`ShmDataPlane` creates named segments (``repro_*``), copies a
    buffer in once, and hands out :class:`SegmentRef` descriptors —
    tiny picklable ``(name, nbytes, typecode)`` triples that ride inside
    pool initargs and per-chunk task tuples.  Segments are unlinked
    **exactly once**: ``close()`` is idempotent, every plane registers a
    :func:`weakref.finalize` (which the interpreter also runs at exit,
    covering Ctrl-C and :class:`~repro.errors.RecoveryError` unwinds
    that bypass a ``finally``), and a module registry lets tests assert
    nothing is left behind.

Worker side
    :func:`attach_view` maps a segment by name — no copy, no pickle —
    and returns a typed :class:`memoryview` over exactly the published
    bytes (POSIX shared memory rounds segments up to page size, so the
    view must be cut to ``ref.nbytes`` before casting).  Attachments are
    cached per process; the parent owns unlink, and because workers
    share the parent's ``resource_tracker`` process the extra register
    an attach performs is an idempotent no-op.

POSIX unlink semantics make the fault story simple: once every process
that matters has mapped a segment, the parent may unlink it and the
memory survives until the last map drops — so a worker killed and
rebuilt mid-call re-attaches by name *before* the parent unlinks (the
pool initializer re-runs on rebuild with the same initargs), and a
parent dying takes the names with it via the finalize hook.
"""

from __future__ import annotations

import os
import weakref
from typing import NamedTuple, Optional

from repro.graph.bitmatrix import HAVE_NUMPY

try:  # pragma: no cover - absence exercised via monkeypatched HAVE_SHM
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: ``True`` when :mod:`multiprocessing.shared_memory` is importable.
HAVE_SHM = _shared_memory is not None

__all__ = [
    "HAVE_SHM",
    "SegmentRef",
    "ShmDataPlane",
    "attach_view",
    "attached_segment_names",
    "buffer_typecode",
    "live_segment_names",
    "release_attachments",
    "resolve_data_plane",
    "shm_available",
]

#: Integer formats a :class:`memoryview` can round-trip through
#: ``cast`` — the element types :func:`buffer_typecode` preserves.
_CASTABLE_FORMATS = frozenset("bBhHiIlLqQ")


def buffer_typecode(data) -> str:
    """The :class:`SegmentRef` typecode that reproduces ``data``'s view.

    ``array('q')`` snapshots report ``"q"``, ``int32`` ndarrays ``"i"``,
    ``int64`` ndarrays ``"l"`` or ``"q"`` — whatever
    ``memoryview(data).format`` says, as long as :func:`attach_view` can
    ``cast`` to it on the worker side.  Anything else (packed bitmatrix
    words, multi-byte structs) degrades to raw bytes ``"B"``.
    """
    fmt = memoryview(data).format
    return fmt if fmt in _CASTABLE_FORMATS else "B"


class SegmentRef(NamedTuple):
    """A picklable handle to one published segment.

    ``nbytes`` is the *published* length — ``SharedMemory.size`` may be
    page-rounded above it — and ``typecode`` is the :mod:`array`-style
    element type the bytes should be viewed as (``"B"`` = raw bytes).
    """

    name: str
    nbytes: int
    typecode: str


# ----------------------------------------------------------------------
# Parent side: publishing
# ----------------------------------------------------------------------

#: Every live parent-owned segment in this process, by name.  Planes add
#: on publish and remove on unlink; tests read it to assert hygiene.
_REGISTRY: dict[str, object] = {}

_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """``True`` iff a segment can actually be created on this host.

    Import success is not enough — a platform without a usable shared
    memory mount raises only at create time — so the first call probes
    with a one-byte segment and the verdict is cached.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        if not HAVE_SHM:
            _AVAILABLE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=1)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except (OSError, ValueError):
                _AVAILABLE = False
    return _AVAILABLE


def resolve_data_plane(requested: str) -> tuple[str, Optional[str]]:
    """Resolve a ``data_plane`` request against what the host supports.

    Returns ``(plane, fallback_reason)``.  ``"auto"`` resolves to
    ``"shm"`` when shared memory and numpy are both usable and degrades
    to ``"pickle"`` otherwise, carrying the reason —
    ``"no-shared-memory"`` or ``"no-numpy"`` — so engines can record
    why.  Explicit requests are honored or rejected, never degraded:
    ``"pickle"`` always works, ``"shm"`` raises
    :class:`~repro.errors.ParameterError` on a host that cannot serve
    it.
    """
    from repro.errors import ParameterError

    if requested not in ("auto", "shm", "pickle"):
        raise ParameterError(
            f"unknown data plane {requested!r}; choose 'auto', 'shm' "
            "or 'pickle'"
        )
    if requested == "pickle":
        return "pickle", None
    if not shm_available():
        if requested == "shm":
            raise ParameterError(
                "shared memory is unavailable on this host; use "
                "data_plane='pickle' (or 'auto' to fall back silently)"
            )
        return "pickle", "no-shared-memory"
    if not HAVE_NUMPY:
        if requested == "shm":
            raise ParameterError(
                "data_plane='shm' requires numpy for zero-copy views; "
                "use 'auto' to fall back to pickle silently"
            )
        return "pickle", "no-numpy"
    return "shm", None


def _cleanup_segments(segments: dict) -> None:
    """Close + unlink every segment in ``segments`` (idempotent, total).

    Module-level so a plane's :func:`weakref.finalize` holds no
    reference back to the plane itself.  ``BufferError`` (a live
    exported view) only skips the ``close``; the ``unlink`` — the part
    hygiene depends on — still runs.
    """
    for name, shm in list(segments.items()):
        segments.pop(name, None)
        _REGISTRY.pop(name, None)
        try:
            shm.close()
        except BufferError:
            pass
        except OSError:
            pass
        try:
            shm.unlink()
        except (OSError, FileNotFoundError):
            pass


class ShmDataPlane:
    """Parent-side owner of a set of named shared-memory segments.

    ``publish`` copies a buffer into a fresh segment and returns its
    :class:`SegmentRef`; ``unlink_one`` retires a single call-scoped
    segment early; ``close`` retires everything.  All three are
    idempotent, and an unclosed plane is swept by its finalizer at
    garbage collection or interpreter exit — each segment is unlinked
    exactly once no matter which path runs first.
    """

    def __init__(self):
        if not shm_available():
            from repro.errors import ParameterError

            raise ParameterError(
                "shared memory is unavailable on this host; use "
                "data_plane='pickle' (or 'auto' to fall back silently)"
            )
        self._segments: dict[str, object] = {}
        self._counter = 0
        self._finalizer = weakref.finalize(
            self, _cleanup_segments, self._segments
        )

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def segment_names(self) -> tuple[str, ...]:
        """Names of the segments this plane currently owns (for tests)."""
        return tuple(self._segments)

    def publish(self, data, typecode: str = "B") -> SegmentRef:
        """Copy ``data`` (any buffer) into a new segment.

        ``typecode`` is recorded in the ref so :func:`attach_view` can
        hand workers a correctly typed view.  Zero-length buffers get a
        one-byte segment (POSIX rejects empty maps); ``nbytes`` in the
        ref stays 0 and the attached view is empty.
        """
        if self.closed:
            from repro.errors import ParameterError

            raise ParameterError(
                "cannot publish on a closed shared-memory plane"
            )
        mv = memoryview(data)
        nbytes = mv.nbytes
        # Zero-length views can't be cast (empty numpy shapes carry
        # zero strides) — and never need to be: nothing gets copied.
        if nbytes and mv.format != "B":
            mv = mv.cast("B")
        shm = None
        while shm is None:
            self._counter += 1
            name = (
                f"repro_{os.getpid() % 1000000}_"
                f"{os.urandom(3).hex()}{self._counter}"
            )
            try:
                shm = _shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, nbytes)
                )
            except FileExistsError:
                continue
        try:
            if nbytes:
                shm.buf[:nbytes] = mv
        except BaseException:
            # The segment exists but was never registered with the
            # plane; unlink it here or nothing ever will — a failed
            # copy must not strand /dev/shm residue.
            _cleanup_segments({shm.name: shm})
            raise
        self._segments[shm.name] = shm
        _REGISTRY[shm.name] = shm
        return SegmentRef(shm.name, nbytes, typecode)

    def unlink_one(self, ref: SegmentRef) -> None:
        """Retire one segment early (e.g. a call-scoped blob). Idempotent."""
        shm = self._segments.pop(ref.name, None)
        if shm is None:
            return
        _cleanup_segments({ref.name: shm})

    def close(self) -> None:
        """Unlink every owned segment; safe to call any number of times."""
        # detach() disarms the exit-time finalizer, then the same
        # cleanup runs directly — either path unlinks each name once.
        if self._finalizer.detach() is not None:
            _cleanup_segments(self._segments)

    # Context-manager sugar for the ephemeral (non-session) engine path.
    def __enter__(self) -> "ShmDataPlane":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def live_segment_names() -> tuple[str, ...]:
    """Every parent-owned segment currently live in this process."""
    return tuple(_REGISTRY)


# ----------------------------------------------------------------------
# Worker side: attaching
# ----------------------------------------------------------------------

#: Per-process attachment cache: name -> (SharedMemory, base memoryview).
#: Shared by the refine and greedy worker modules so one session pool
#: maps each graph segment once.
_ATTACHED: dict[str, tuple] = {}


def attach_view(ref: SegmentRef) -> memoryview:
    """Map ``ref``'s segment (cached per process) and view its bytes.

    Returns a read-capable :class:`memoryview` of exactly
    ``ref.nbytes`` bytes, cast to ``ref.typecode`` (``"B"`` stays raw).
    The underlying map is cached by name, so repeated attachments — the
    same graph segments across every call of a session — are free.
    """
    entry = _ATTACHED.get(ref.name)
    if entry is None:
        # Attaching re-registers the name with the resource_tracker on
        # 3.10-3.12, but workers share the parent's tracker process
        # (fork and spawn both inherit its pipe), so the register is an
        # idempotent set-add and the parent's single unlink unregisters
        # it exactly once — no untracking dance needed.
        shm = _shared_memory.SharedMemory(name=ref.name)
        entry = (shm, shm.buf)
        _ATTACHED[ref.name] = entry
    view = entry[1][: ref.nbytes]
    if ref.typecode != "B":
        view = view.cast(ref.typecode)
    return view


def attached_segment_names() -> tuple[str, ...]:
    """Names currently mapped in this process (tests/benchmarks)."""
    return tuple(_ATTACHED)


def release_attachments(names) -> None:
    """Drop cached attachments for ``names`` (unknown names ignored).

    Callers must drop their typed views first; a still-exported view
    makes ``close`` raise :class:`BufferError`, in which case the map is
    simply left to die with the process (bounded by the handful of
    per-call segments a worker ever touches).
    """
    for name in list(names):
        entry = _ATTACHED.pop(name, None)
        if entry is None:
            continue
        shm, base = entry
        del base
        try:
            shm.close()
        except BufferError:
            pass
