"""``parallel_refine_sky`` — FilterRefineSky with a multi-worker refine.

The filter phase stays sequential (it is near-linear and inherently
order-coupled through its twin tie-breaks); the refine phase — the
dominant cost on candidate-heavy graphs, and independent per candidate —
is chunked over a :mod:`multiprocessing` pool.  Workers receive one CSR
snapshot of the graph (:meth:`~repro.graph.adjacency.Graph.to_csr`) via
the pool initializer, rebuild their :class:`~repro.bloom.vertex_filters.
VertexBloomIndex` once, and then scan candidate chunks; see
:mod:`repro.parallel.worker` for the two-pass decomposition and the
argument that its output is bit-for-bit the sequential one.

Guarantees:

* ``skyline``, ``dominator`` and ``candidates`` are **identical** to
  :func:`~repro.core.filter_refine.filter_refine_sky` on every input,
  for every worker count and chunk size.
* Merged counters are deterministic — per-candidate tallies summed over
  any partition — though they differ from the sequential schedule's
  (the status pass stops at the first dominator; the witness pass
  rescans dominated candidates).  Scheduling facts (mode, workers,
  chunk count, rescans) land in ``counters.extra["parallel_*"]`` keys,
  outside :meth:`~repro.core.counters.SkylineCounters.as_dict`.
* Small graphs (``num_edges < small_graph_edges``) and ``workers <= 1``
  run the same two passes in-process — no pool, no snapshot, no
  latency regression — with, by construction, the same result and the
  same counter totals.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from array import array
from typing import Optional

from repro.bloom.vertex_filters import width_for_max_degree
from repro.core.bitset_refine import density_prefers_bloom
from repro.core.block_refine import choose_refine_kernel
from repro.core.counters import SkylineCounters
from repro.core.filter_phase import filter_phase
from repro.core.result import SkylineResult
from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.bitmatrix import (
    HAVE_NUMPY,
    CandidateBitMatrix,
    matrix_words,
    validate_word_budget,
)
from repro.graph.cores import core_decomposition
from repro.parallel.chunks import chunk_ranges, default_chunk_size
from repro.parallel.params import validate_pool_params
from repro.parallel.shm import (
    ShmDataPlane,
    buffer_typecode,
    resolve_data_plane,
)
from repro.parallel.supervisor import (
    DEFAULT_MAX_RETRIES,
    PoolSupervisor,
    SupervisorConfig,
)
from repro.parallel.worker import (
    RefineSpec,
    build_payload,
    build_state,
    init_worker,
    run_status_chunk,
    run_witness_chunk,
    validate_status_chunk,
    validate_witness_chunk,
)

from repro.harness.faults import FaultPlan

__all__ = ["parallel_refine_sky", "default_worker_count", "SMALL_GRAPH_EDGES"]

#: Below this many edges the pool overhead dwarfs the refine itself, so
#: the engine stays in-process regardless of ``workers``.
SMALL_GRAPH_EDGES = 2048


def default_worker_count() -> int:
    """Usable CPUs of this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


def _pool_context():
    # fork shares the parent's code pages and skips re-imports; spawn is
    # the portable fallback (worker entry points are module-level).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def parallel_refine_sky(
    graph: Graph,
    *,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    small_graph_edges: int = SMALL_GRAPH_EDGES,
    bloom_bits: Optional[int] = None,
    bits_per_element: int = 8,
    seed: int = 0,
    counters: Optional[SkylineCounters] = None,
    exact: bool = True,
    refine: str = "bloom",
    word_budget: Optional[int] = None,
    density_fallback: bool = True,
    timeout: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
    fault_plan: Optional[FaultPlan] = None,
    data_plane: str = "auto",
    session=None,
) -> SkylineResult:
    """Compute the neighborhood skyline with a parallel refine phase.

    Parameters
    ----------
    graph:
        The input graph.
    workers:
        Worker processes for the refine phase; ``None`` uses every
        usable CPU.  ``1`` runs in-process.
    chunk_size:
        Candidates per task; ``None`` targets a few chunks per worker.
        Purely a scheduling knob — any value yields the same result.
    small_graph_edges:
        In-process threshold: graphs with fewer edges never pay for a
        pool.  Pass ``0`` to force pooling (tests do).
    bloom_bits / bits_per_element / seed:
        Bloom sizing, as in :func:`~repro.core.filter_refine.filter_refine_sky`.
    counters:
        Optional instrumentation sink; worker tallies are merged in.
    exact:
        Must be ``True``.  The approximate variant is sequential-only:
        its one-sided bloom errors are not transitive, so the
        dominated-dominator skips it rides on are schedule-dependent
        and a parallel run could return a different subset.
    refine:
        Pair-test kernel for the scans: ``"bloom"`` (the default bloom
        ladder), ``"bitset"`` (the packed AND-NOT of
        :mod:`repro.core.bitset_refine`; the parent packs the candidate
        matrix once and ships raw words, workers rebuild views),
        ``"block"`` (the block-vectorized counting kernel of
        :mod:`repro.core.block_refine`; the parent peels the k-core
        decomposition once and ships the core numbers), or ``"auto"``
        (the three-way cutover of
        :func:`~repro.core.block_refine.choose_refine_kernel`, decided
        here in the parent).  All kernels accept exactly the same
        pairs, so the result is identical whichever runs; counters
        differ per kernel but remain deterministic for any worker
        count and chunking.
    word_budget:
        Bitset cutover as in
        :func:`~repro.core.bitset_refine.filter_refine_bitset_sky`:
        when ``|C| · ⌈n/64⌉`` words exceed it (or numpy is missing) a
        ``refine="bitset"`` run falls back to the bloom kernel and
        records ``counters.extra["refine_path"] == "bloom-fallback"``
        with the reason in ``"bitset_fallback_reason"``.  Candidate-
        dense inputs fall back too
        (:func:`~repro.core.bitset_refine.density_prefers_bloom`) —
        the parent decides, so one run uses one kernel throughout.
        Nonpositive budgets are rejected
        (:func:`~repro.graph.bitmatrix.validate_word_budget`).
    density_fallback:
        ``False`` disables the candidate-density cutover only, as in
        :func:`~repro.core.bitset_refine.filter_refine_bitset_sky`.
    timeout / max_retries:
        Recovery policy of the :class:`~repro.parallel.supervisor.
        PoolSupervisor` every pooled run now executes under: per-chunk
        deadline in seconds (``None`` uses the supervisor default) and
        pool re-attempts per chunk before the supervisor recomputes the
        chunk sequentially in-process.  Recovery never changes the
        result — only where a chunk runs — and every recovery event is
        recorded under ``counters.extra["resilience_*"]``.
    fault_plan:
        Deterministic fault injection for chaos tests
        (:class:`~repro.harness.faults.FaultPlan`); ``None`` (the
        default, and the only sane production value) injects nothing.
        Ignored on the in-process path, which has no workers to break.
    data_plane:
        How graph-scale data reaches the workers.  ``"pickle"`` ships a
        payload per process through the pool initializer (the classic
        plane).  ``"shm"`` publishes the CSR arrays, candidate ids and
        bit-matrix words as named shared-memory segments
        (:mod:`repro.parallel.shm`); workers attach zero-copy and
        rebuild only per-process scratch (the bloom index / traversal
        workspace).  ``"auto"`` (the default) picks shm when
        :mod:`multiprocessing.shared_memory` and numpy are both usable
        and falls back to pickle otherwise — the resolved plane and any
        fallback reason land in ``counters.extra["data_plane"]`` /
        ``["data_plane_fallback_reason"]``.  Both planes are bit-for-bit
        identical in results.
    session:
        A warm :class:`~repro.parallel.session.EngineSession` for this
        same graph: the call reuses its pool and published segments
        instead of forking/publishing per call.  The session's
        scheduling knobs (``workers`` / ``timeout`` / ``max_retries`` /
        ``fault_plan``) are authoritative; passing a conflicting value
        here raises :class:`~repro.errors.ParameterError`.

    The result's ``skyline``/``dominator``/``candidates`` are identical
    to the sequential ``filter_refine_sky`` for any worker count, either
    data plane, with or without a session — and, with supervision, for
    any combination of worker crashes, hangs and corrupt payloads.
    """
    if not exact:
        raise ParameterError(
            "the parallel engine computes the exact skyline only; use "
            "algorithm='filter_refine' with exact=False for the "
            "approximate variant"
        )
    if refine not in ("bloom", "bitset", "block", "auto"):
        raise ParameterError(
            f"unknown refine kernel {refine!r}; choose 'bloom', "
            "'bitset', 'block' or 'auto'"
        )
    word_budget = validate_word_budget(word_budget)
    if session is not None:
        session.check_open()
        if session.graph is not graph:
            raise ParameterError(
                "this EngineSession was created for a different graph; "
                "sessions pin one published graph snapshot"
            )
        if workers is None:
            workers = session.workers
        elif workers != session.workers:
            raise ParameterError(
                f"workers={workers} conflicts with the session's "
                f"{session.workers}; the pool size is fixed at session "
                "construction"
            )
        if fault_plan is not None:
            raise ParameterError(
                "fault_plan is fixed at session construction; pass it "
                "to EngineSession instead"
            )
        fault_plan = session.fault_plan
        if timeout is not None and timeout != session.timeout:
            raise ParameterError(
                f"timeout={timeout} conflicts with the session's "
                f"{session.timeout}; the supervisor config is fixed at "
                "session construction"
            )
        timeout = session.timeout
        if max_retries not in (session.max_retries, DEFAULT_MAX_RETRIES):
            raise ParameterError(
                f"max_retries={max_retries} conflicts with the "
                f"session's {session.max_retries}"
            )
        max_retries = session.max_retries
        if chunk_size is None:
            chunk_size = session.chunk_size
        if data_plane == "auto":
            effective_plane = session.data_plane
            plane_reason = session.plane_fallback_reason
        else:
            resolved, _ = resolve_data_plane(data_plane)
            if resolved != session.data_plane:
                raise ParameterError(
                    f"data_plane={data_plane!r} conflicts with the "
                    f"session's {session.data_plane!r}"
                )
            effective_plane = session.data_plane
            plane_reason = session.plane_fallback_reason
    else:
        effective_plane, plane_reason = resolve_data_plane(data_plane)
    if workers is None:
        workers = default_worker_count()
    validate_pool_params(
        workers=workers,
        chunk_size=chunk_size,
        timeout=timeout,
        max_retries=max_retries,
    )
    if bloom_bits is None:
        dmax = max(graph.degrees(), default=0)
        bits = width_for_max_degree(dmax, bits_per_element)
    elif bloom_bits <= 0 or bloom_bits % 32 != 0:
        raise ParameterError(
            f"bloom width must be a positive multiple of 32, got {bloom_bits}"
        )
    else:
        bits = bloom_bits

    n = graph.num_vertices
    candidates, dominator = filter_phase(graph, counters=counters)

    # The kernel cutover is decided here in the parent — workers never
    # second-guess it — so one run uses one kernel throughout.
    effective_refine = refine
    words_needed = matrix_words(len(candidates), n)
    bitset_fallback_reason = None
    if refine == "auto":
        # choose_refine_kernel only picks "bitset" below the block
        # minimum candidate count, where the density fallback never
        # applies — no second cutover pass needed.
        effective_refine = choose_refine_kernel(
            len(candidates), n, word_budget=word_budget
        )
    elif refine == "bitset":
        if not HAVE_NUMPY or words_needed > word_budget:
            bitset_fallback_reason = "word-budget"
        elif density_fallback and density_prefers_bloom(len(candidates), n):
            bitset_fallback_reason = "candidate-density"
        if bitset_fallback_reason is not None:
            effective_refine = "bloom"
    elif refine == "block" and not HAVE_NUMPY:
        bitset_fallback_reason = "numpy-missing"
        effective_refine = "bloom"
    matrix = (
        CandidateBitMatrix.from_graph(graph, candidates)
        if effective_refine == "bitset"
        else None
    )
    # Block mode: peel the k-core decomposition once, parent-side; it
    # rides to workers like any other call-scoped snapshot.
    cores = (
        core_decomposition(graph).core
        if effective_refine == "block"
        else None
    )

    size = chunk_size or default_chunk_size(len(candidates), workers)
    status_tasks = chunk_ranges(len(candidates), size)
    use_pool = workers > 1 and graph.num_edges >= small_graph_edges

    chunk_dicts: list[dict] = []
    resilience_events: Optional[dict[str, int]] = None
    session_label: Optional[str] = None
    plane_publish_s: Optional[float] = None
    if use_pool:
        # The guaranteed sequential fallback: an in-process RefineState
        # built lazily, only if a chunk actually exhausts its retries.
        # Scans are pure functions of frozen state, so recomputing any
        # chunk here yields exactly the value the worker would have —
        # on either data plane (the chunk runners attach any segment
        # refs in their tasks themselves, parent-side too).
        _fb: list = []

        def _fallback_state():
            if not _fb:
                _fb.append(
                    build_state(
                        graph,
                        candidates,
                        dominator,
                        bits=bits,
                        seed=seed,
                        refine=effective_refine,
                        matrix=matrix,
                        cores=cores,
                    )
                )
            return _fb[0]

        if effective_plane == "shm":
            # Shared-memory plane: the graph CSR lives in named
            # segments workers attach zero-copy; call-scoped data
            # (candidates, dominators, matrix words) ships the same
            # way, so each task is a few-hundred-byte spec.
            owns_plane = session is None
            publish_t0 = time.perf_counter()
            if owns_plane:
                plane = ShmDataPlane()
                indptr, indices = graph.to_csr()
                graph_refs = {
                    "indptr": plane.publish(
                        indptr, buffer_typecode(indptr)
                    ),
                    "indices": plane.publish(
                        indices, buffer_typecode(indices)
                    ),
                }
                supervisor = PoolSupervisor(
                    workers=workers,
                    initializer=init_worker,
                    initargs=(("shm", graph_refs),),
                    config=SupervisorConfig(
                        timeout=timeout, max_retries=max_retries, seed=seed
                    ),
                    fault_plan=fault_plan,
                    mp_context=_pool_context(),
                )
                cand_ref = plane.publish(array("q", candidates), "q")
                dom_ref = plane.publish(array("q", dominator), "q")
                matrix_ref = (
                    plane.publish(matrix.rows, "B")
                    if matrix is not None
                    else None
                )
                cores_ref = (
                    plane.publish(array("q", cores), "q")
                    if cores is not None
                    else None
                )
                epoch = 1
            else:
                plane = session.plane
                supervisor = session.supervisor()
                session_label = session.note_pooled_call()
                cand_ref = session.cached_segment(
                    "cand", array("q", candidates), "q"
                )
                dom_ref = session.cached_segment(
                    "dom", array("q", dominator), "q"
                )
                matrix_ref = (
                    session.cached_segment("matrix", matrix.rows, "B")
                    if matrix is not None
                    else None
                )
                cores_ref = (
                    session.cached_segment("cores", array("q", cores), "q")
                    if cores is not None
                    else None
                )
                epoch = session.next_epoch()
            spec = RefineSpec(
                epoch=epoch,
                key=(
                    effective_refine,
                    bits,
                    seed,
                    cand_ref.name,
                    dom_ref.name,
                    matrix_ref.name if matrix_ref is not None else None,
                    cores_ref.name if cores_ref is not None else None,
                ),
                refine=effective_refine,
                bits=bits,
                seed=seed,
                candidates=cand_ref,
                dominator=dom_ref,
                matrix=matrix_ref,
                cores=cores_ref,
            )
            plane_publish_s = time.perf_counter() - publish_t0
            # A session supervisor accumulates events across calls;
            # this call's resilience tally is the delta.
            events_before = dict(supervisor.events)
            dom_blob_ref = None
            try:
                dominated: list[int] = []
                for part, stats in supervisor.run(
                    run_status_chunk,
                    [(spec, lo, hi) for lo, hi in status_tasks],
                    fallback=lambda task: run_status_chunk(
                        task, _fallback_state()
                    ),
                    validate=validate_status_chunk,
                ):
                    dominated.extend(part)
                    chunk_dicts.append(stats)
                # The dominated list is born here, between the passes —
                # always a fresh per-call segment, never cached.
                dom_blob_ref = plane.publish(array("q", dominated), "q")
                witness_tasks = [
                    (spec, lo, hi, dom_blob_ref)
                    for lo, hi in chunk_ranges(len(dominated), size)
                ]
                witness_pairs: list[tuple[int, int]] = []
                for part, stats in supervisor.run(
                    run_witness_chunk,
                    witness_tasks,
                    fallback=lambda task: run_witness_chunk(
                        task, _fallback_state()
                    ),
                    validate=validate_witness_chunk,
                ):
                    witness_pairs.extend(part)
                    chunk_dicts.append(stats)
            finally:
                if owns_plane:
                    # One-shot call: tear down pool and segments on
                    # every exit path (RecoveryError, Ctrl-C, ...).
                    supervisor.shutdown()
                    plane.close()
                elif dom_blob_ref is not None:
                    # Session call: pool and cached segments stay warm;
                    # only the per-call dominated blob is retired.
                    plane.unlink_one(dom_blob_ref)
            resilience_events = {
                key: value - events_before.get(key, 0)
                for key, value in supervisor.events.items()
            }
        else:
            if session is not None:
                # Pickle-plane sessions centralize the knobs but cannot
                # keep workers warm (nothing to re-attach): every call
                # ships a fresh payload through a fresh pool.
                session_label = "cold"
            payload = build_payload(
                graph,
                candidates,
                dominator,
                bits=bits,
                seed=seed,
                refine=effective_refine,
                matrix=matrix,
                cores=cores,
            )
            supervisor = PoolSupervisor(
                workers=workers,
                initializer=init_worker,
                initargs=(payload,),
                config=SupervisorConfig(
                    timeout=timeout, max_retries=max_retries, seed=seed
                ),
                fault_plan=fault_plan,
                mp_context=_pool_context(),
            )
            # Context management guarantees terminate()/join() on *every*
            # exit path — a chunk raising mid-iteration, RecoveryError,
            # Ctrl-C — so no child process ever outlives the engine call.
            with supervisor:
                dominated = []
                for part, stats in supervisor.run(
                    run_status_chunk,
                    status_tasks,
                    fallback=lambda task: run_status_chunk(
                        task, _fallback_state()
                    ),
                    validate=validate_status_chunk,
                ):
                    dominated.extend(part)
                    chunk_dicts.append(stats)
                blob = array("q", dominated)
                witness_tasks = [
                    (lo, hi, blob)
                    for lo, hi in chunk_ranges(len(dominated), size)
                ]
                witness_pairs = []
                for part, stats in supervisor.run(
                    run_witness_chunk,
                    witness_tasks,
                    fallback=lambda task: run_witness_chunk(
                        task, _fallback_state()
                    ),
                    validate=validate_witness_chunk,
                ):
                    witness_pairs.extend(part)
                    chunk_dicts.append(stats)
            resilience_events = supervisor.events
    else:
        state = build_state(
            graph,
            candidates,
            dominator,
            bits=bits,
            seed=seed,
            refine=effective_refine,
            matrix=matrix,
            cores=cores,
        )
        dominated = []
        for task in status_tasks:
            part, stats = run_status_chunk(task, state)
            dominated.extend(part)
            chunk_dicts.append(stats)
        witness_pairs = []
        for task in chunk_ranges(len(dominated), size):
            part, stats = run_witness_chunk((*task, dominated), state)
            witness_pairs.extend(part)
            chunk_dicts.append(stats)

    final = list(dominator)
    for u, w in witness_pairs:
        final[u] = w

    if counters is not None:
        for delta in chunk_dicts:
            counters.merge_dict(delta)
        counters.extra["parallel_mode"] = "pool" if use_pool else "in-process"
        counters.extra["parallel_workers"] = workers
        counters.extra["parallel_chunks"] = len(status_tasks)
        counters.extra["parallel_rescans"] = len(dominated)
        if use_pool:
            counters.extra["data_plane"] = effective_plane
            if plane_reason is not None:
                counters.extra["data_plane_fallback_reason"] = plane_reason
            if session_label is not None:
                counters.extra["parallel_session"] = session_label
            if plane_publish_s is not None:
                counters.extra["plane_publish_s"] = plane_publish_s
        if resilience_events is not None:
            for key, value in resilience_events.items():
                counters.extra[key] = counters.extra.get(key, 0) + value
        if bitset_fallback_reason is not None:
            counters.extra["refine_path"] = "bloom-fallback"
            counters.extra["bitset_fallback_reason"] = bitset_fallback_reason
            if bitset_fallback_reason == "word-budget":
                counters.extra["bitset_words_over_budget"] = words_needed
            elif bitset_fallback_reason == "candidate-density":
                counters.extra["candidate_density"] = (
                    len(candidates) / n if n else 0.0
                )
        else:
            counters.extra["refine_path"] = effective_refine
        if refine == "auto":
            counters.extra["refine_requested"] = "auto"
        if effective_refine == "block":
            # The chunk merges already accumulated the pretest tally;
            # pin the key even when no pair was ever rejected.
            counters.extra.setdefault("core_pretest_rejects", 0)

    skyline = tuple(u for u in range(n) if final[u] == u)
    return SkylineResult(
        skyline=skyline,
        dominator=tuple(final),
        candidates=tuple(candidates),
        algorithm="FilterRefineSkyParallel",
        counters=counters,
    )
