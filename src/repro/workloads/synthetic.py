"""Synthetic-workload building blocks beyond the raw generators.

* :func:`plant_cliques` — overlay dense communities on a backbone graph.
  The copying model reproduces degree structure and neighborhood nesting
  but, like most growth models, yields small cliques; real social
  networks (Pokec, Orkut — the paper's Exp-6 graphs) contain large dense
  communities.  Planting a power-law-ish ladder of cliques restores a
  realistic clique-size spectrum, giving the top-k experiments
  distinguishable answers at every rank.
* :func:`attach_hub_satellites` — graft mega-hubs with large satellite
  peripheries onto a backbone.  The paper's most skyline-friendly graphs
  (WikiTalk: ``dmax ≈ 100k`` on 2.4M vertices, skyline 8 %) are
  dominated by exactly this pattern: a few enormous hubs whose
  low-degree satellites sit inside the hub's neighborhood and are
  therefore edge-dominated (Def. 4).  It is also the structure on which
  BaseSky's ``O(m · dmax)`` behaviour actually bites — every
  degree-≥2 satellite scans the hub's whole neighborhood before its
  counter completes — so grafting it reproduces the paper's Exp-1
  runtime separation at laptop scale.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder

__all__ = [
    "plant_cliques",
    "attach_hub_satellites",
    "DEFAULT_CLIQUE_LADDER",
]

#: A descending ladder of community sizes used by the Exp-6 stand-ins.
DEFAULT_CLIQUE_LADDER: tuple[int, ...] = (
    18, 15, 13, 12, 11, 10, 10, 9, 9, 8, 8, 8, 7, 7, 7, 7, 6, 6, 6, 6,
)


def plant_cliques(
    graph: Graph,
    sizes: Sequence[int] = DEFAULT_CLIQUE_LADDER,
    *,
    seed: Optional[int] = None,
) -> Graph:
    """Return ``graph`` plus one planted clique per entry of ``sizes``.

    Members of each clique are sampled uniformly without replacement;
    existing edges are kept, missing in-clique edges are added.  The
    result's maximum clique size is at least ``max(sizes)``.
    """
    n = graph.num_vertices
    for s in sizes:
        if s < 2:
            raise ParameterError(f"planted clique size must be >= 2, got {s}")
        if s > n:
            raise ParameterError(
                f"planted clique size {s} exceeds vertex count {n}"
            )
    rng = random.Random(seed)
    builder = GraphBuilder(n)
    builder.add_edges(graph.edges())
    for s in sizes:
        members = rng.sample(range(n), s)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                if not builder.has_edge(u, v):
                    builder.add_edge(u, v)
    return builder.build()


def attach_hub_satellites(
    graph: Graph,
    num_hubs: int,
    satellites_per_hub: int,
    *,
    max_satellite_degree: int = 4,
    seed: Optional[int] = None,
) -> Graph:
    """Graft satellite peripheries onto the highest-degree vertices.

    The ``num_hubs`` highest-degree vertices of ``graph`` each receive
    ``satellites_per_hub`` new vertices.  A satellite links its hub and
    ``d − 1`` random existing members of the hub's neighborhood, with
    ``d`` drawn power-law-ish from ``[1, max_satellite_degree]`` —
    so every satellite satisfies ``N[sat] ⊆ N[hub]`` and is
    edge-dominated by its hub.

    Returns a new graph with ``num_hubs · satellites_per_hub`` extra
    vertices appended after the originals.
    """
    if num_hubs < 1 or satellites_per_hub < 0:
        raise ParameterError(
            "need num_hubs >= 1 and satellites_per_hub >= 0, got "
            f"{num_hubs}/{satellites_per_hub}"
        )
    if num_hubs > graph.num_vertices:
        raise ParameterError(
            f"num_hubs {num_hubs} exceeds vertex count {graph.num_vertices}"
        )
    if max_satellite_degree < 1:
        raise ParameterError(
            f"max_satellite_degree must be >= 1, got {max_satellite_degree}"
        )
    rng = random.Random(seed)
    n = graph.num_vertices
    hubs = sorted(
        graph.vertices(), key=lambda u: (-graph.degree(u), u)
    )[:num_hubs]
    builder = GraphBuilder(n + num_hubs * satellites_per_hub)
    builder.add_edges(graph.edges())
    # Satellites must attach to *current* hub neighbors, including
    # earlier satellites of the same hub, so track the growing list.
    hub_neighbors = {h: list(graph.neighbors(h)) for h in hubs}
    next_id = n
    for h in hubs:
        neighbors = hub_neighbors[h]
        for _ in range(satellites_per_hub):
            sat = next_id
            next_id += 1
            builder.add_edge(sat, h)
            if neighbors:
                # P(d) ∝ 1/d on [1, max_satellite_degree].
                weights = [1.0 / d for d in range(1, max_satellite_degree + 1)]
                extra = rng.choices(
                    range(max_satellite_degree), weights=weights
                )[0]
                for x in rng.sample(neighbors, min(extra, len(neighbors))):
                    if not builder.has_edge(sat, x):
                        builder.add_edge(sat, x)
            neighbors.append(sat)
    return builder.build()
