"""Named datasets: embedded real graphs and seeded synthetic stand-ins."""

from repro.workloads.bombing import bombing_proxy
from repro.workloads.registry import (
    LARGE_TIER_NAMES,
    TABLE1_NAMES,
    DatasetSpec,
    PaperStats,
    load,
    names,
    spec,
)

__all__ = [
    "bombing_proxy",
    "LARGE_TIER_NAMES",
    "TABLE1_NAMES",
    "DatasetSpec",
    "PaperStats",
    "load",
    "names",
    "spec",
]
