"""Proxy for the Madrid train-bombing contact network (Fig. 13b).

The original is a 64-vertex, 243-edge network of contacts between
suspects of the 2004 Madrid attack (KONECT).  The raw data is not
embedded here; the case study uses two properties — the size/density and
a hub-heavy contact structure in which low-degree members are dominated
(the paper reports a 20-vertex skyline, 31 %) — so the proxy is a seeded
copying-model graph densified to exactly 243 edges on 64 vertices, with
parameters chosen so FilterRefineSky finds a skyline of 21 vertices
(33 %).  DESIGN.md §3 records the substitution.
"""

from __future__ import annotations

import random

from repro.graph.adjacency import Graph
from repro.graph.builder import GraphBuilder
from repro.graph.generators import copying_power_law

__all__ = ["bombing_proxy", "BOMBING_N", "BOMBING_M"]

BOMBING_N = 64
BOMBING_M = 243
_SEED = 3


def bombing_proxy() -> Graph:
    """A deterministic 64-vertex, 243-edge hub-heavy contact proxy."""
    base = copying_power_law(
        BOMBING_N, 1.4, 0.9, max_out_degree=14, seed=_SEED
    )
    rng = random.Random(_SEED)
    builder = GraphBuilder(BOMBING_N)
    edges = list(base.edges())
    if len(edges) >= BOMBING_M:
        rng.shuffle(edges)
        builder.add_edges(edges[:BOMBING_M])
    else:
        builder.add_edges(edges)
        # Densify with degree-biased extra contacts until the count fits.
        weighted = [x for edge in edges for x in edge]
        while builder.num_edges < BOMBING_M:
            u = rng.choice(weighted)
            v = rng.choice(weighted)
            if u != v and not builder.has_edge(u, v):
                builder.add_edge(u, v)
    return builder.build()
