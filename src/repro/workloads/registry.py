"""Dataset registry: the paper's graphs and their scaled stand-ins.

The paper evaluates on five KONECT/SNAP graphs (Table I) plus
LiveJournal/Pokec/Orkut for scalability and clique experiments, and two
tiny case-study networks.  Real dumps are not shipped here; instead each
large graph gets a **seeded copying-model stand-in**
(:func:`~repro.graph.generators.copying_power_law`) tuned so that the
skyline fraction ``|R|/n`` lands in the paper's reported range — the
copying process reproduces the neighborhood-nesting structure of real
web/social/communication graphs that independent-edge models lack (see
DESIGN.md §3).  The two clique-experiment graphs additionally carry a
planted ladder of dense communities so the top-k clique ranks are
distinguishable.  Zachary's karate club is embedded exactly; the
Madrid-bombing contact network is replaced by a same-size proxy.

Every dataset is deterministic: same name → same graph, across runs and
machines.

>>> load("karate").num_vertices
34
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional

from repro.errors import DatasetNotFoundError, ParameterError
from repro.graph.adjacency import Graph
from repro.graph.csr import as_csr
from repro.graph.generators import (
    configuration_model,
    copying_power_law,
    kronecker_graph,
    power_law_degrees,
    watts_strogatz,
)
from repro.graph.karate import karate_club
from repro.workloads.bombing import bombing_proxy
from repro.workloads.synthetic import attach_hub_satellites, plant_cliques

__all__ = [
    "DatasetSpec",
    "PaperStats",
    "load",
    "spec",
    "names",
    "TABLE1_NAMES",
    "LARGE_TIER_NAMES",
]


@dataclass(frozen=True)
class PaperStats:
    """The row the paper's Table I reports for the original dataset."""

    num_vertices: int
    num_edges: int
    max_degree: int


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: loader plus provenance metadata."""

    name: str
    description: str
    kind: str  # "embedded" (real data shipped) or "standin" (synthetic)
    loader: Callable[[], Graph]
    paper: Optional[PaperStats] = None
    #: "standard" datasets are paper-scale and safe to load everywhere;
    #: "large" is the million-edge benchmark tier — excluded from
    #: default listings so tests and the CLI never materialize one by
    #: accident.
    tier: str = "standard"

    def load(self) -> Graph:
        """Materialize the graph (loaders are pure and seeded)."""
        return self.loader()


def _standin(
    n: int,
    degree_exponent: float,
    copy_prob: float,
    seed: int,
    *,
    proto_link_prob: float = 0.0,
    max_out_degree: int = 30,
    planted: bool = False,
    hubs: int = 0,
    satellites: int = 0,
    satellite_degree: int = 4,
) -> Callable[[], Graph]:
    def loader() -> Graph:
        graph = copying_power_law(
            n,
            degree_exponent,
            copy_prob,
            proto_link_prob=proto_link_prob,
            max_out_degree=max_out_degree,
            seed=seed,
        )
        if hubs:
            graph = attach_hub_satellites(
                graph,
                hubs,
                satellites,
                max_satellite_degree=satellite_degree,
                seed=seed,
            )
        if planted:
            graph = plant_cliques(graph, seed=seed)
        return graph

    return loader


_SPECS: dict[str, DatasetSpec] = {}


def _register(spec_: DatasetSpec) -> None:
    _SPECS[spec_.name] = spec_


# -- Table I datasets (scaled stand-ins) --------------------------------
# Parameters: a lower degree exponent / higher copy probability gives a
# hubbier graph with a smaller skyline.  WikiTalk is by far the most
# star-like of the originals (dmax = 100k on 2.4M vertices; skyline
# fraction 8%%), so its stand-in gets the most aggressive copying.
_register(
    DatasetSpec(
        name="notredame_sim",
        description="Web network stand-in (Notredame: n=325,731, m=1,090,109)",
        kind="standin",
        loader=_standin(4000, 2.3, 0.90, seed=101, hubs=2, satellites=1200),
        paper=PaperStats(325_731, 1_090_109, 10_721),
    )
)
_register(
    DatasetSpec(
        name="youtube_sim",
        description="Social network stand-in (Youtube: n=1,134,890, m=2,987,624)",
        kind="standin",
        loader=_standin(5000, 2.4, 0.88, seed=102, hubs=3, satellites=800),
        paper=PaperStats(1_134_890, 2_987_624, 28_754),
    )
)
_register(
    DatasetSpec(
        name="wikitalk_sim",
        description=(
            "Communication network stand-in "
            "(WikiTalk: n=2,394,385, m=4,659,565)"
        ),
        kind="standin",
        loader=_standin(3000, 2.9, 0.96, seed=103, hubs=3, satellites=2000),
        paper=PaperStats(2_394_385, 4_659_565, 100_029),
    )
)
_register(
    DatasetSpec(
        name="flixster_sim",
        description="Social network stand-in (Flixster: n=2,523,386, m=7,918,801)",
        kind="standin",
        loader=_standin(5000, 2.6, 0.85, seed=104, hubs=2, satellites=800),
        paper=PaperStats(2_523_386, 7_918_801, 1_474),
    )
)
_register(
    DatasetSpec(
        name="dblp_sim",
        description=(
            "Collaboration network stand-in "
            "(DBLP: n=1,843,617, m=8,350,260)"
        ),
        kind="standin",
        loader=_standin(5000, 2.1, 0.80, seed=105, max_out_degree=40, hubs=2, satellites=400),
        paper=PaperStats(1_843_617, 8_350_260, 2_213),
    )
)

# -- Scalability / clique datasets --------------------------------------
_register(
    DatasetSpec(
        name="livejournal_sim",
        description="Scalability stand-in for LiveJournal (Exp-7)",
        kind="standin",
        loader=_standin(5000, 2.4, 0.85, seed=106, hubs=2, satellites=1000),
    )
)
_register(
    DatasetSpec(
        name="pokec_sim",
        description="Clique-experiment stand-in for Pokec (Exp-6)",
        kind="standin",
        loader=_standin(3000, 1.4, 0.93, seed=107, proto_link_prob=0.5, max_out_degree=50, planted=True, hubs=2, satellites=800, satellite_degree=10),
    )
)
_register(
    DatasetSpec(
        name="orkut_sim",
        description="Clique-experiment stand-in for Orkut (Exp-6)",
        kind="standin",
        loader=_standin(3500, 1.3, 0.93, seed=108, proto_link_prob=0.5, max_out_degree=60, planted=True, hubs=2, satellites=1000, satellite_degree=10),
    )
)

# -- Case-study networks (Fig. 13) --------------------------------------
_register(
    DatasetSpec(
        name="karate",
        description="Zachary's karate club (real, embedded; 34/78)",
        kind="embedded",
        loader=karate_club,
        paper=PaperStats(34, 78, 17),
    )
)
_register(
    DatasetSpec(
        name="bombing_proxy",
        description=(
            "Proxy for the Madrid train-bombing contact network (64/243)"
        ),
        kind="standin",
        loader=bombing_proxy,
        paper=PaperStats(64, 243, 29),
    )
)

# -- Large workload tier (million-edge scale) ---------------------------
# Generated with the vectorized numpy generators, so materialization is
# seconds, not minutes; loading additionally requires numpy (the
# standard tier does not).  Excluded from names() by default.
_register(
    DatasetSpec(
        name="kron_large",
        description=(
            "Stochastic Kronecker (R-MAT) graph, scale 17, ~1.2M edges "
            "after erasure (mild skew keeps the refine scan CI-sized)"
        ),
        kind="standin",
        tier="large",
        loader=lambda: kronecker_graph(
            17, 9, initiator=(0.35, 0.25, 0.25, 0.15), seed=701
        ),
    )
)
_register(
    DatasetSpec(
        name="ws_large",
        description=(
            "Watts-Strogatz small world, n=200k, k=10, beta=0.05 "
            "(~1.0M edges)"
        ),
        kind="standin",
        tier="large",
        loader=lambda: watts_strogatz(200_000, 10, 0.05, seed=702),
    )
)
_register(
    DatasetSpec(
        name="config_large",
        description=(
            "Erased configuration model, n=250k power-law degrees "
            "(exponent 2.3, ~1.7M edges)"
        ),
        kind="standin",
        tier="large",
        loader=lambda: configuration_model(
            power_law_degrees(250_000, 2.3, min_degree=4, seed=703),
            seed=703,
        ),
    )
)

#: The five datasets of the paper's Table I, in table order.
TABLE1_NAMES: tuple[str, ...] = (
    "notredame_sim",
    "youtube_sim",
    "wikitalk_sim",
    "flixster_sim",
    "dblp_sim",
)

#: The million-edge benchmark tier, in registration order.
LARGE_TIER_NAMES: tuple[str, ...] = (
    "kron_large",
    "ws_large",
    "config_large",
)


def names(*, tier: str = "standard") -> tuple[str, ...]:
    """Registered dataset names, sorted.

    ``tier`` selects ``"standard"`` (default — the paper-scale sets
    every caller historically got), ``"large"`` (the million-edge
    benchmark tier) or ``"all"``.
    """
    if tier not in ("standard", "large", "all"):
        raise ParameterError(
            f"unknown tier {tier!r}; choose 'standard', 'large' or 'all'"
        )
    return tuple(
        sorted(
            name
            for name, s in _SPECS.items()
            if tier == "all" or s.tier == tier
        )
    )


def spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` for ``name``."""
    try:
        return _SPECS[name]
    except KeyError:
        raise DatasetNotFoundError(name, names()) from None


@lru_cache(maxsize=None)
def load(name: str) -> Graph:
    """Materialize the named dataset.

    Loaders are pure and seeded, and graphs are immutable, so results
    are memoized — repeated loads (CLI listings, test fixtures, bench
    modules) share one instance per dataset.  When numpy is available
    the graph comes back on the CSR substrate (:func:`~repro.graph.csr.
    as_csr`) — identical results, vectorized whole-graph scans.
    """
    return as_csr(spec(name).load())
