#!/usr/bin/env python3
"""Maintaining the skyline of an evolving network.

Scenario: a social network's "influence frontier" (the neighborhood
skyline) feeds a downstream dashboard, and edges arrive/disappear
continuously.  Recomputing the skyline from scratch on every change is
wasteful — `DynamicSkyline` repairs only the 2-hop region around each
flipped edge.

The script replays a random update stream against both strategies,
verifies they always agree, and reports the work difference.  It also
shows the dominance-layer view (`dominance_layers`): how deep below the
frontier each vertex sits, i.e. who is next in line when a frontier
vertex loses its edge.

Run:  python examples/dynamic_monitoring.py
"""

import random
import time

from repro.core import DynamicSkyline, dominance_layers, filter_refine_sky
from repro.graph.adjacency import Graph
from repro.graph.generators import copying_power_law


def main(updates: int = 250) -> None:
    graph = copying_power_law(400, 2.5, 0.88, seed=31)
    n = graph.num_vertices
    rng = random.Random(31)

    dynamic = DynamicSkyline(graph)
    edges = set(graph.edges())
    print(
        f"network: {n} vertices, {len(edges)} edges; initial frontier "
        f"size {len(dynamic.skyline)}"
    )

    # Replay a stream of random edge flips against both strategies.
    t_dynamic = 0.0
    t_recompute = 0.0
    frontier_sizes = []
    for _ in range(updates):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        start = time.perf_counter()
        if edge in edges:
            dynamic.delete_edge(*edge)
            edges.discard(edge)
        else:
            dynamic.insert_edge(*edge)
            edges.add(edge)
        t_dynamic += time.perf_counter() - start

        start = time.perf_counter()
        from_scratch = filter_refine_sky(Graph.from_edges(n, edges))
        t_recompute += time.perf_counter() - start

        assert dynamic.skyline == from_scratch.skyline
        frontier_sizes.append(len(from_scratch.skyline))

    print(f"replayed {updates} edge flips; strategies agreed on every one")
    print(f"  incremental maintenance: {t_dynamic:.2f}s total")
    print(f"  recompute-from-scratch:  {t_recompute:.2f}s total")
    print(f"  speedup: {t_recompute / t_dynamic:.1f}x")
    print(
        f"  frontier size ranged {min(frontier_sizes)}–{max(frontier_sizes)}"
    )

    # The layer view: who is waiting just below the frontier?
    final = dynamic.to_graph()
    layers = dominance_layers(final)
    depth_hist: dict[int, int] = {}
    for depth in layers:
        depth_hist[depth] = depth_hist.get(depth, 0) + 1
    print("\ndominance depth histogram (1 = frontier):")
    for depth in sorted(depth_hist):
        print(f"  layer {depth}: {depth_hist[depth]} vertices")


if __name__ == "__main__":
    main()
