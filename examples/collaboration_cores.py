#!/usr/bin/env python3
"""Finding the k densest collaboration cores via top-k maximum cliques.

Scenario: in a collaboration network, the largest cliques are the
tightest working groups ("cores").  Sec. IV-C of the paper extends the
skyline pruning from one maximum clique (``NeiSkyMC``, Algorithm 5) to
the k largest cliques (``NeiSkyTopkMCC``).

The script builds a collaboration-style graph (copying backbone plus a
planted ladder of dense communities — see
``repro.workloads.synthetic.plant_cliques``), finds the top-k cliques
with and without skyline pruning, and verifies both agree.

Run:  python examples/collaboration_cores.py [k]
"""

import sys
import time

from repro.clique import base_topk_mcc, is_clique, neisky_topk_mcc
from repro.core import filter_refine_sky
from repro.graph.generators import copying_power_law
from repro.workloads.synthetic import plant_cliques


def main(k: int = 5) -> None:
    backbone = copying_power_law(
        2500, 1.5, 0.92, proto_link_prob=0.4, max_out_degree=40, seed=23
    )
    network = plant_cliques(
        backbone, sizes=(14, 11, 9, 8, 8, 7, 7, 6, 6, 6), seed=23
    )
    skyline = filter_refine_sky(network)
    print(
        f"collaboration network: {network.num_vertices} researchers, "
        f"{network.num_edges} co-authorships"
    )
    print(
        f"neighborhood skyline: {skyline.size} vertices "
        f"({100 * skyline.size / network.num_vertices:.0f}% of the graph)\n"
    )

    start = time.perf_counter()
    base = base_topk_mcc(network, k)
    base_time = time.perf_counter() - start

    start = time.perf_counter()
    pruned = neisky_topk_mcc(network, k, skyline_result=skyline)
    pruned_time = time.perf_counter() - start

    print(f"top-{k} cores (BaseTopkMCC, {base_time:.2f}s):")
    for i, clique in enumerate(base, start=1):
        assert is_clique(network, clique)
        print(f"  #{i}: {len(clique)} members — {clique}")

    print(f"\ntop-{k} cores (NeiSkyTopkMCC, {pruned_time:.2f}s):")
    for i, clique in enumerate(pruned, start=1):
        assert is_clique(network, clique)
        print(f"  #{i}: {len(clique)} members")

    base_sizes = [len(c) for c in base]
    pruned_sizes = [len(c) for c in pruned]
    print(
        f"\nsizes agree rank by rank: {base_sizes == pruned_sizes} "
        f"({base_sizes})"
    )
    print(f"speedup from skyline pruning: {base_time / pruned_time:.2f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
