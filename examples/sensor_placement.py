#!/usr/bin/env python3
"""Sensor placement via group closeness maximization (paper Sec. IV-A).

Scenario: place ``k`` monitoring sensors on a communication network so
that every node is as close as possible to its nearest sensor — the
group closeness maximization problem, one of the two group-centrality
applications the paper accelerates with the neighborhood skyline.

The script builds a synthetic communication network (copying model, the
package's stand-in for real hub-heavy topologies), runs the plain
greedy (``BaseGC``, the Greedy++ role) and the skyline-pruned greedy
(``NeiSkyGC``, Algorithm 4), and compares wall-clock, number of
marginal-gain evaluations, and solution quality.

Run:  python examples/sensor_placement.py [k]
"""

import sys
import time

from repro.centrality import base_gc, group_closeness, neisky_gc
from repro.core import filter_refine_sky
from repro.graph import largest_connected_component
from repro.graph.generators import copying_power_law


def main(k: int = 8) -> None:
    raw = copying_power_law(1200, 2.4, 0.88, seed=17)
    network, _ = largest_connected_component(raw)
    n = network.num_vertices
    print(
        f"communication network: {n} nodes, {network.num_edges} links; "
        f"placing k={k} sensors\n"
    )

    # Baseline greedy: evaluates every vertex every round.
    start = time.perf_counter()
    base = base_gc(network, k)
    base_time = time.perf_counter() - start
    base_quality = group_closeness(network, base.group)

    # Skyline-pruned greedy: evaluate only undominated vertices.
    start = time.perf_counter()
    skyline = filter_refine_sky(network).skyline
    pruned = neisky_gc(network, k, skyline=skyline)
    pruned_time = time.perf_counter() - start
    pruned_quality = group_closeness(network, pruned.group)

    print(f"{'':24s}{'BaseGC':>12s}{'NeiSkyGC':>12s}")
    print(f"{'candidate pool':24s}{base.pool_size:>12d}{pruned.pool_size:>12d}")
    print(
        f"{'gain evaluations':24s}"
        f"{base.evaluations:>12d}{pruned.evaluations:>12d}"
    )
    print(f"{'wall clock (s)':24s}{base_time:>12.3f}{pruned_time:>12.3f}")
    print(
        f"{'group closeness':24s}{base_quality:>12.5f}{pruned_quality:>12.5f}"
    )
    print(
        f"\nspeedup: {base_time / pruned_time:.2f}x with "
        f"{100 * pruned_quality / base_quality:.2f}% of the baseline quality"
    )
    print("sensors (BaseGC):  ", sorted(base.group))
    print("sensors (NeiSkyGC):", sorted(pruned.group))

    # The skyline prunes the pool without losing the high-value spots:
    shared = set(base.group) & set(pruned.group)
    print(f"{len(shared)} of {k} chosen locations coincide")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
