#!/usr/bin/env python3
"""Quickstart: computing neighborhood skylines.

Covers the core public API in ~60 lines:

* build a graph (from edges, a generator, or the dataset registry),
* compute its neighborhood skyline with ``neighborhood_skyline``,
* inspect the result (skyline, candidates, dominator witnesses),
* see how the skyline behaves on the paper's special graphs (Fig. 2).

Run:  python examples/quickstart.py
"""

from repro import Graph, neighborhood_skyline
from repro.core import SkylineCounters
from repro.graph import (
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    karate_club,
    path_graph,
)


def main() -> None:
    # -- 1. A tiny hand-built graph ------------------------------------
    # A hub (0) with three spokes, one of which has a pendant.
    g = Graph.from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4), (1, 2)])
    result = neighborhood_skyline(g)
    print("tiny graph skyline:", result.skyline)
    for u in g.vertices():
        witness = result.dominator[u]
        status = "skyline" if witness == u else f"dominated by {witness}"
        print(f"  vertex {u} (deg {g.degree(u)}): {status}")

    # -- 2. Zachary's karate club (the paper's Fig. 13a) ---------------
    karate = karate_club()
    counters = SkylineCounters()
    result = neighborhood_skyline(karate, counters=counters)
    print(
        f"\nkarate club: {result.size} of {karate.num_vertices} vertices "
        f"in the skyline ({100 * result.size / karate.num_vertices:.0f}%)"
    )
    print("skyline vertices:", result.skyline)
    print(
        "work: "
        f"{counters.pair_tests} pair tests, "
        f"{counters.bloom_subset_rejects} bloom rejects, "
        f"{counters.bloom_false_positives} false positives corrected"
    )

    # -- 3. Algorithms are interchangeable -----------------------------
    for algorithm in ("base", "cset", "lc_join"):
        alt = neighborhood_skyline(karate, algorithm=algorithm)
        assert alt.skyline == result.skyline
    print("BaseSky, BaseCSet and LC-Join all agree with FilterRefineSky.")

    # -- 4. Special graphs (paper Fig. 2) -------------------------------
    print("\nspecial graphs (paper Fig. 2):")
    specials = [
        ("clique K10", complete_graph(10)),
        ("complete binary tree depth 3", complete_binary_tree(3)),
        ("cycle C10", cycle_graph(10)),
        ("path P10", path_graph(10)),
    ]
    for name, graph in specials:
        r = neighborhood_skyline(graph)
        print(
            f"  {name:30s} |V|={graph.num_vertices:3d} "
            f"|C|={r.candidate_size:3d} |R|={r.size:3d}"
        )


if __name__ == "__main__":
    main()
