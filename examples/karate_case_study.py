#!/usr/bin/env python3
"""Reproduction of the paper's case studies (Fig. 13).

Runs FilterRefineSky on Zachary's karate club (real, embedded) and the
Madrid-bombing contact proxy, prints which actors form the neighborhood
skyline, and verifies the paper's qualitative finding: low-degree
vertices are the ones that get dominated, so the skyline concentrates
on the structurally important actors.

Run:  python examples/karate_case_study.py
"""

from repro import neighborhood_skyline
from repro.centrality import closeness_centrality, harmonic_centrality
from repro.workloads import load


def analyze(name: str, paper_skyline_count: int) -> None:
    graph = load(name)
    result = neighborhood_skyline(graph)
    inside = result.skyline_set
    outside = [u for u in graph.vertices() if u not in inside]
    pct = 100 * result.size / graph.num_vertices

    print(f"== {name} ==")
    print(
        f"n={graph.num_vertices}, m={graph.num_edges}; skyline: "
        f"{result.size} vertices ({pct:.0f}%) — paper reports "
        f"{paper_skyline_count}"
    )

    avg = lambda xs: sum(xs) / max(1, len(xs))  # noqa: E731
    deg_in = avg([graph.degree(u) for u in inside])
    deg_out = avg([graph.degree(u) for u in outside])
    print(f"average degree: skyline {deg_in:.1f} vs dominated {deg_out:.1f}")

    # Every dominated vertex has a recorded witness; show a few.
    shown = 0
    for u in graph.vertices():
        w = result.dominator[u]
        if w != u and shown < 5:
            print(
                f"  vertex {u} (deg {graph.degree(u)}) is dominated by "
                f"{w} (deg {graph.degree(w)})"
            )
            shown += 1

    # The skyline keeps the central actors (karate: 0 = Mr. Hi,
    # 33 = John A.).
    top_by_closeness = max(
        graph.vertices(), key=lambda u: closeness_centrality(graph, u)
    )
    top_by_harmonic = max(
        graph.vertices(), key=lambda u: harmonic_centrality(graph, u)
    )
    print(
        f"most central vertices ({top_by_closeness} by closeness, "
        f"{top_by_harmonic} by harmonic) in skyline: "
        f"{top_by_closeness in inside and top_by_harmonic in inside}"
    )
    print()


def main() -> None:
    analyze("karate", paper_skyline_count=15)
    analyze("bombing_proxy", paper_skyline_count=20)


if __name__ == "__main__":
    main()
