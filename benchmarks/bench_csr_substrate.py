"""Before/after microbench: list-backed graph vs the numpy CSR substrate.

Times the two phases the substrate vectorized — the skyline **filter
phase** (edge-constrained domination scan) and full-graph **BFS** — on
the same graph twice: once on the plain list-of-lists :class:`Graph`
("before") and once on the :class:`CSRGraph` ndarray substrate
("after").  Results are asserted identical before any timing is
trusted; the speedup is only meaningful because the outputs are
bit-for-bit the same.

Rows land in ``BENCH_skyline.json`` as ``bench="csr_substrate"``:
one row per (instance, phase, backend), with the speedup recorded in
the CSR row's ``extra``.

Usage::

    PYTHONPATH=src python benchmarks/bench_csr_substrate.py [dataset ...]
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.filter_phase import filter_phase
from repro.graph.adjacency import Graph
from repro.graph.csr import CSRGraph
from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    write_bench_json,
)
from repro.paths.bfs import bfs_distances
from repro.paths.csr import CSRTraversal
from repro.workloads import load

#: One paper-scale graph and one million-edge-tier graph, per the
#: substrate PR's acceptance criteria.
DEFAULT_INSTANCES = ("wikitalk_sim", "ws_large")

#: Full-BFS sources: a fixed, size-independent sample so the BFS
#: numbers compare across graphs of different orders.
BFS_SOURCE_COUNT = 8

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _bfs_sources(n: int) -> list[int]:
    step = max(1, n // BFS_SOURCE_COUNT)
    return list(range(0, n, step))[:BFS_SOURCE_COUNT]


def run_one(name: str) -> list[dict]:
    csr = load(name)
    assert isinstance(csr, CSRGraph)
    listg = Graph.from_edges(csr.num_vertices, csr.edges())

    # -- filter phase --------------------------------------------------
    t0 = time.perf_counter()
    cand_list, dom_list = filter_phase(listg)
    t_filter_list = time.perf_counter() - t0
    t0 = time.perf_counter()
    cand_csr, dom_csr = filter_phase(csr)
    t_filter_csr = time.perf_counter() - t0
    assert cand_list == cand_csr, f"{name}: filter candidates diverged"
    assert dom_list == dom_csr, f"{name}: filter dominators diverged"

    # -- full BFS ------------------------------------------------------
    sources = _bfs_sources(csr.num_vertices)
    t0 = time.perf_counter()
    dists_list = [bfs_distances(listg, s) for s in sources]
    t_bfs_list = time.perf_counter() - t0
    trav = CSRTraversal.from_graph(csr)
    t0 = time.perf_counter()
    dists_csr = [trav.bfs_distances(s) for s in sources]
    t_bfs_csr = time.perf_counter() - t0
    assert dists_list == dists_csr, f"{name}: BFS distances diverged"

    filter_speedup = t_filter_list / t_filter_csr if t_filter_csr else 0.0
    bfs_speedup = t_bfs_list / t_bfs_csr if t_bfs_csr else 0.0
    print(
        f"{name}: n={csr.num_vertices} m={csr.num_edges} "
        f"filter {t_filter_list:.2f}s -> {t_filter_csr:.2f}s "
        f"({filter_speedup:.1f}x)  "
        f"bfs x{len(sources)} {t_bfs_list:.2f}s -> {t_bfs_csr:.2f}s "
        f"({bfs_speedup:.1f}x)"
    )

    shape = {
        "num_vertices": csr.num_vertices,
        "num_edges": csr.num_edges,
    }
    return [
        bench_entry(
            bench="csr_substrate",
            instance=name,
            algorithm="filter_phase_list",
            wall_s=t_filter_list,
            extra={**shape, "candidate_size": len(cand_list)},
        ),
        bench_entry(
            bench="csr_substrate",
            instance=name,
            algorithm="filter_phase_csr",
            wall_s=t_filter_csr,
            extra={
                **shape,
                "candidate_size": len(cand_csr),
                "speedup_vs_list": round(filter_speedup, 2),
            },
        ),
        bench_entry(
            bench="csr_substrate",
            instance=name,
            algorithm="bfs_list",
            wall_s=t_bfs_list,
            extra={**shape, "sources": len(sources)},
        ),
        bench_entry(
            bench="csr_substrate",
            instance=name,
            algorithm="bfs_csr",
            wall_s=t_bfs_csr,
            extra={
                **shape,
                "sources": len(sources),
                "speedup_vs_list": round(bfs_speedup, 2),
            },
        ),
    ]


def main(argv) -> int:
    instances = tuple(argv) or DEFAULT_INSTANCES
    entries = []
    for name in instances:
        entries.extend(run_one(name))
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    print(f"merged {len(entries)} entries into {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
