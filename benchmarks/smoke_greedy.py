"""CI smoke check for the lazy (CELF) group-centrality engine.

Plain script (no pytest) so CI can run it in seconds on tiny registry
instances: runs BaseGC/NeiSkyGC and BaseGH under the eager reference
driver, the lazy engine, the lazy engine with forced batched gain
lanes (``gain_batch=3``), and the lazy engine with a forced round-0
worker pool, asserts every result bit-for-bit identical (group, gains,
pool size), checks the counter invariant ``lazy.evaluations +
lazy.evaluations_saved == eager.evaluations``, and records the wall
times into ``BENCH_skyline.json`` at the repo root (merge-write:
entries from full benchmark runs are preserved).  The merged document
is schema checked with :func:`repro.harness.benchjson.validate_file`,
and the whole run must finish inside ``REPRO_SMOKE_GREEDY_BUDGET``
seconds (default 120) so a perf regression in the smoke tier fails CI
instead of quietly stretching it.

Exit status is non-zero on any mismatch, so the CI step fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/smoke_greedy.py [dataset ...]
"""

from __future__ import annotations

import os
import sys
import time

from repro.centrality import base_gc, base_gh, neisky_gc
from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    validate_file,
    write_bench_json,
)
from repro.workloads import load

DEFAULT_INSTANCES = ("karate", "bombing_proxy")
SMOKE_K = 6

#: Wall-time budget for the whole smoke run, in seconds.
WALL_BUDGET = float(os.environ.get("REPRO_SMOKE_GREEDY_BUDGET", "120"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _check_pair(name, label, eager, lazy):
    assert lazy.group == eager.group, (name, label)
    assert lazy.gains == eager.gains, (name, label)
    assert lazy.pool_size == eager.pool_size, (name, label)
    assert (
        lazy.evaluations + lazy.evaluations_saved == eager.evaluations
    ), (name, label)


def run(instances) -> list[dict]:
    entries = []
    for name in instances:
        graph = load(name)
        saved_note = ""
        for label, runner in (
            ("BaseGC", base_gc),
            ("NeiSkyGC", neisky_gc),
            ("BaseGH", base_gh),
        ):
            t_eager, eager = _timed(lambda r=runner: r(graph, SMOKE_K))
            t_lazy, lazy = _timed(
                lambda r=runner: r(graph, SMOKE_K, strategy="lazy")
            )
            _check_pair(name, label, eager, lazy)
            # Forced batched lanes (the graphs are below the auto
            # threshold, so force a width): must be a pure no-op on
            # the result and the evaluation accounting.
            t_batched, batched = _timed(
                lambda r=runner: r(
                    graph, SMOKE_K, strategy="lazy", gain_batch=3
                )
            )
            _check_pair(name, label, eager, batched)
            assert batched.evaluations == lazy.evaluations, (name, label)
            entries.append(
                bench_entry(
                    bench="smoke_greedy",
                    instance=name,
                    algorithm=f"{label}-eager(k={SMOKE_K})",
                    wall_s=t_eager,
                    extra={"evaluations": eager.evaluations},
                )
            )
            entries.append(
                bench_entry(
                    bench="smoke_greedy",
                    instance=name,
                    algorithm=f"{label}-lazy(k={SMOKE_K})",
                    wall_s=t_lazy,
                    extra={
                        "evaluations": lazy.evaluations,
                        "evaluations_saved": lazy.evaluations_saved,
                    },
                )
            )
            entries.append(
                bench_entry(
                    bench="smoke_greedy",
                    instance=name,
                    algorithm=f"{label}-lazy-batched(k={SMOKE_K},B=3)",
                    wall_s=t_batched,
                    extra={
                        "evaluations": batched.evaluations,
                        "evaluations_saved": batched.evaluations_saved,
                    },
                )
            )
            if label == "BaseGC":
                saved_note = (
                    f"lazy saved {lazy.evaluations_saved} of "
                    f"{eager.evaluations} BaseGC evaluations"
                )

        # Forced round-0 pool (the graphs are below the edge threshold,
        # so force it) — any worker count must be a pure no-op on the
        # result and on the counters.
        from repro.centrality.group_closeness_max import ClosenessObjective
        from repro.centrality.lazy_greedy import lazy_greedy_maximize

        seq = lazy_greedy_maximize(graph, SMOKE_K, ClosenessObjective(graph))
        par = lazy_greedy_maximize(
            graph,
            SMOKE_K,
            ClosenessObjective(graph),
            workers=2,
            small_graph_edges=0,
        )
        assert par.group == seq.group, name
        assert par.gains == seq.gains, name
        assert par.evaluations == seq.evaluations, name
        assert par.evaluations_saved == seq.evaluations_saved, name

        print(
            f"{name}: k={SMOKE_K} eager/lazy/batched/pooled groups "
            "identical; " + saved_note
        )
    return entries


def main(argv) -> int:
    start = time.perf_counter()
    instances = tuple(argv) or DEFAULT_INSTANCES
    entries = run(instances)
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    problems = validate_file(path)
    assert not problems, problems
    wall = time.perf_counter() - start
    assert wall <= WALL_BUDGET, (
        f"smoke run took {wall:.1f}s, over the {WALL_BUDGET:.0f}s budget"
    )
    print(
        f"merged {len(entries)} entries into {path} (schema OK, "
        f"{wall:.1f}s of {WALL_BUDGET:.0f}s budget)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
