"""Ablation — algorithmic work counters (scale-free Exp-1 companion).

Wall-clock comparisons at laptop scale are noisy and flatten the
constant-factor effects the paper measures in C++; the *work counters*
are not.  This bench reports, per algorithm and dataset, the dominant
operation counts:

* ``counter_updates``  — BaseSky/BaseCSet T-array increments,
* ``pair_tests``       — candidate dominator pairs actually examined,
* ``vertices_examined``— outer-loop vertices not skipped by ``O(u)≠u``,
* ``bloom_subset_rejects`` — pairs killed by one whole-filter AND.

The asymptotic story of the paper reads off directly: BaseSky's
increment count dwarfs everything, the filter phase slashes
``vertices_examined``, and the bloom filter disposes of almost every
surviving pair in O(1).
"""

import pytest

from _datasets import dataset
from repro.core import (
    SkylineCounters,
    base_cset_sky,
    base_sky,
    filter_refine_sky,
)
from repro.workloads import TABLE1_NAMES

ALGORITHMS = (
    ("BaseSky", base_sky),
    ("BaseCSet", base_cset_sky),
    ("FilterRefineSky", filter_refine_sky),
)


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize(
    "algo_name,algo", ALGORITHMS, ids=[a for a, _ in ALGORITHMS]
)
def test_ablation_work_counters(benchmark, figure_report, name, algo_name, algo):
    graph = dataset(name)
    counters = SkylineCounters()

    def run():
        counters.reset()
        return algo(graph, counters=counters)

    benchmark.pedantic(run, rounds=1, iterations=1)

    report = figure_report(
        "Ablation counters",
        "Work counters of the skyline algorithms (scale-free comparison)",
        (
            "dataset",
            "algorithm",
            "vertices examined",
            "counter updates",
            "pair tests",
            "bloom subset rejects",
        ),
    )
    report.add_row(
        name,
        algo_name,
        counters.vertices_examined,
        counters.counter_updates,
        counters.pair_tests,
        counters.bloom_subset_rejects,
    )
    report.add_note(
        "BaseSky's counter updates are its O(m·dmax) term; the filter "
        "phase cuts vertices examined to |C|; bloom rejects show how "
        "many surviving pairs FilterRefineSky disposes of in O(1)."
    )
