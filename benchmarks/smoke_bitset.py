"""CI smoke check for the packed-bitset refine kernel.

Plain script (no pytest) so CI can run it in seconds on tiny registry
instances: computes the skyline with the bloom baseline, the bitset
kernel, the forced bloom-fallback (``word_budget=1``) and the parallel
engine with ``refine="bitset"``, asserts every result bit-for-bit equal,
and records the wall times into ``BENCH_skyline.json`` at the repo root
(merge-write: entries from full benchmark runs are preserved).

Exit status is non-zero on any mismatch, so the CI step fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/smoke_bitset.py [dataset ...]
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.bitset_refine import filter_refine_bitset_sky
from repro.core.counters import SkylineCounters
from repro.core.filter_refine import filter_refine_sky
from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    write_bench_json,
)
from repro.parallel import parallel_refine_sky
from repro.workloads import load

DEFAULT_INSTANCES = ("karate", "bombing_proxy")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def run(instances) -> list[dict]:
    entries = []
    for name in instances:
        graph = load(name)
        t_bloom, ref = _timed(lambda: filter_refine_sky(graph))

        counters = SkylineCounters()
        t_bit, bit = _timed(
            lambda: filter_refine_bitset_sky(graph, counters=counters)
        )
        assert bit.skyline == ref.skyline, name
        assert bit.dominator == ref.dominator, name
        path = counters.extra.get("refine_path")

        _, fb = _timed(
            lambda: filter_refine_bitset_sky(graph, word_budget=1)
        )
        assert fb.dominator == ref.dominator, name

        _, par = _timed(
            lambda: parallel_refine_sky(
                graph, workers=2, refine="bitset", small_graph_edges=0
            )
        )
        assert par.dominator == ref.dominator, name

        entries.append(
            bench_entry(
                bench="smoke_bitset",
                instance=name,
                algorithm="FilterRefineSky",
                wall_s=t_bloom,
            )
        )
        entries.append(
            bench_entry(
                bench="smoke_bitset",
                instance=name,
                algorithm="FilterRefineSkyBitset",
                wall_s=t_bit,
                counters=counters.as_dict(),
                extra={"refine_path": path},
            )
        )
        print(
            f"{name}: |R|={len(ref.skyline)} bloom {t_bloom:.4f}s "
            f"bitset {t_bit:.4f}s ({path}); fallback and parallel "
            "outputs identical"
        )
    return entries


def main(argv) -> int:
    instances = tuple(argv) or DEFAULT_INSTANCES
    entries = run(instances)
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    print(f"merged {len(entries)} entries into {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
