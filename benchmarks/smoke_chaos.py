"""CI chaos smoke: injected worker faults never change any result.

Plain script (no pytest) so CI can run it in seconds: replays a fixed
fault schedule — one plan per kind (crash / corrupt / oom / slow, plus
a short-deadline hang) and a seeded random plan — against the pooled
refine engine and the pooled lazy-greedy round 0 on tiny registry
instances, asserting every recovered result bit-for-bit identical to
the sequential reference and that the recovery left a visible trace in
the ``resilience_*`` counters.

Everything is seeded, so a failure here replays identically on a
laptop with the same command.  Exit status is non-zero on any
mismatch.

Usage::

    PYTHONPATH=src python benchmarks/smoke_chaos.py [dataset ...]
"""

from __future__ import annotations

import multiprocessing
import sys

from repro.centrality.greedy import greedy_maximize
from repro.centrality.group_closeness_max import ClosenessObjective
from repro.centrality.lazy_greedy import lazy_greedy_maximize
from repro.core.counters import SkylineCounters
from repro.core.filter_refine import filter_refine_sky
from repro.harness.faults import FaultPlan
from repro.parallel.engine import parallel_refine_sky
from repro.workloads import load

DEFAULT_INSTANCES = ("karate", "bombing_proxy")
SMOKE_K = 5
SMOKE_SEED = 20230410  # fixed: CI and laptops replay the same chaos
HANG_DEADLINE = 1.0

#: The chaos schedule: every fault kind once, then a seeded random
#: plan.  Hang gets a short deadline so the kill path actually runs.
PLANS = (
    ("crash", FaultPlan.single("crash"), None),
    ("corrupt", FaultPlan.single("corrupt"), None),
    ("oom", FaultPlan.single("oom"), None),
    ("slow", FaultPlan.single("slow", slow_seconds=0.02), None),
    ("hang", FaultPlan.single("hang", hang_seconds=15.0), HANG_DEADLINE),
    ("seeded", FaultPlan.seeded(SMOKE_SEED, rate=0.3), None),
)


def _events(counters: SkylineCounters) -> dict[str, int]:
    return {
        k: v
        for k, v in counters.extra.items()
        if k.startswith("resilience_") and v
    }


def run(instances) -> None:
    for name in instances:
        graph = load(name)
        seq_sky = filter_refine_sky(graph)
        seq_greedy = greedy_maximize(graph, SMOKE_K, ClosenessObjective(graph))
        fired: dict[str, int] = {}

        for label, plan, deadline in PLANS:
            counters = SkylineCounters()
            result = parallel_refine_sky(
                graph,
                workers=2,
                small_graph_edges=0,
                counters=counters,
                fault_plan=plan,
                timeout=deadline,
            )
            assert result.skyline == seq_sky.skyline, (name, label)
            assert result.dominator == seq_sky.dominator, (name, label)
            assert result.candidates == seq_sky.candidates, (name, label)
            for key, value in _events(counters).items():
                fired[key] = fired.get(key, 0) + value

            counters = SkylineCounters()
            result = lazy_greedy_maximize(
                graph,
                SMOKE_K,
                ClosenessObjective(graph),
                workers=2,
                small_graph_edges=0,
                counters=counters,
                fault_plan=plan,
                timeout=deadline,
            )
            assert result.group == seq_greedy.group, (name, label)
            assert result.gains == seq_greedy.gains, (name, label)
            for key, value in _events(counters).items():
                fired[key] = fired.get(key, 0) + value

            assert multiprocessing.active_children() == [], (name, label)

        # The schedule must have actually exercised every recovery path.
        for key in (
            "resilience_worker_crashes",
            "resilience_corrupt_payloads",
            "resilience_worker_errors",
            "resilience_deadline_kills",
            "resilience_retries",
        ):
            assert fired.get(key, 0) >= 1, (name, key, fired)

        summary = ", ".join(f"{k}={v}" for k, v in sorted(fired.items()))
        print(f"{name}: all chaos results bit-for-bit sequential; {summary}")


def main(argv) -> int:
    run(tuple(argv) or DEFAULT_INSTANCES)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
