"""Fig. 5 (Exp-3) — sizes of the skyline R, candidates C and vertex set V.

Paper shape: on all five (power-law) datasets both |R| and |C| are far
below |V|, with a visible gap between |R| and |C|; WikiTalk shows the
most extreme reduction (|R|/n ≈ 8 % in the paper).
"""

import pytest

from _datasets import dataset
from repro.core import filter_refine_sky
from repro.workloads import TABLE1_NAMES


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_fig5_sizes(benchmark, figure_report, name):
    graph = dataset(name)
    result = benchmark.pedantic(
        filter_refine_sky, args=(graph,), rounds=1, iterations=1
    )
    report = figure_report(
        "Figure 5",
        "Sizes of skyline R, candidates C and vertex set V",
        ("dataset", "|R|", "|C|", "|V|", "R/V", "C/V"),
    )
    n = graph.num_vertices
    report.add_row(
        name,
        result.size,
        result.candidate_size,
        n,
        result.size / n,
        result.candidate_size / n,
    )
    if name == TABLE1_NAMES[-1]:
        report.add_note(
            "expected shape: R <= C << V on every dataset; wikitalk_sim "
            "most extreme (paper: 8% on WikiTalk, 27% on Flixster)."
        )
