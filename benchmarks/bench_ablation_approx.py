"""Ablation — the ε-approximate skyline (the paper's future-work remark).

Sweeps ε on the five stand-ins and reports how the (strictly monotone)
skyline size shrinks as domination is relaxed, alongside the runtime of
the threshold-counting scan.  ε = 0 is the exact skyline, giving a
built-in consistency check against FilterRefineSky.
"""

import time

import pytest

from _datasets import dataset
from repro.core import filter_refine_sky
from repro.core.approx import approx_skyline
from repro.workloads import TABLE1_NAMES

EPSILONS = (0.0, 0.2, 0.4)


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("epsilon", EPSILONS)
def test_ablation_approx_skyline(benchmark, figure_report, name, epsilon):
    graph = dataset(name)
    start = time.perf_counter()
    result = benchmark.pedantic(
        approx_skyline, args=(graph, epsilon), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start

    if epsilon == 0.0:
        assert result.skyline == filter_refine_sky(graph).skyline

    report = figure_report(
        "Ablation approx",
        "ε-approximate skyline: size vs relaxation",
        ("dataset", "ε", "|R_ε|", "|R_ε|/n", "time (s)"),
    )
    n = graph.num_vertices
    report.add_row(name, epsilon, result.size, result.size / n, elapsed)
    report.add_note(
        "ε = 0 equals the exact skyline (checked in-test); the size "
        "typically shrinks as domination is relaxed (tie-break flips "
        "can locally re-admit vertices — see core/approx.py)."
    )
