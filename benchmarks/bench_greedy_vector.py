"""Before/after benchmark for the batched marginal-gain plane.

For each instance (default: ``kron_large``) this builds a fixed seeded
candidate pool and runs group-closeness maximization at ``k = 16`` four
ways on the same graph:

* **eager scalar** (``gain_batch=1``) — the reference driver every
  other leg is pinned to;
* **lazy scalar** — the CELF engine with the scalar kernel: the
  **before** row the speedup is measured against;
* **lazy batched** (``gain_batch="auto"``) — the **after** row;
* **lazy pooled+batched** (``workers=2``) — the round-0 fan-out
  shipping batched lanes inside each worker.

Every leg is asserted bit-for-bit equal (group, per-round gains, and
the CELF ``evaluations + evaluations_saved == eager.evaluations``
invariant) *before* any timing row is recorded, so a speedup number
can never paper over a wrong answer.  On the default instance the run
**fails** unless the batched lazy engine beats the scalar lazy engine
by at least ``MIN_SPEEDUP``×.

A second section benches the vectorized set-containment join the same
way: ``lc_join_sky`` under the scalar and vector kernels on small-tier
instances, skylines asserted identical to ``filter_refine_sky`` ground
truth, recorded as ``bench="containment_vector"`` rows.

Rows go into ``BENCH_skyline.json`` at the repo root (merge-write,
same as every other harness script), and the merged document is schema
checked with :func:`repro.harness.benchjson.validate_file` before the
run reports success.

Usage::

    PYTHONPATH=src python benchmarks/bench_greedy_vector.py [dataset ...]
"""

from __future__ import annotations

import os
import random
import sys
import time

from repro.centrality.greedy import greedy_maximize
from repro.centrality.group_closeness_max import ClosenessObjective
from repro.centrality.lazy_greedy import lazy_greedy_maximize
from repro.core.counters import SkylineCounters
from repro.core.filter_refine import filter_refine_sky
from repro.core.join_sky import lc_join_sky
from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    validate_file,
    write_bench_json,
)
from repro.workloads import load

DEFAULT_INSTANCES = ("kron_large",)
CONTAINMENT_INSTANCES = ("wikitalk_sim", "dblp_sim")

GREEDY_K = 16
POOL_SIZE = 192
POOL_SEED = 9

#: Acceptance floor for the batched-vs-scalar lazy speedup on the
#: default instances; override per-run with ``REPRO_MIN_GREEDY_SPEEDUP``.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_GREEDY_SPEEDUP", "2.0"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _assert_same_selection(name, label, result, ref) -> None:
    assert result.group == ref.group, (name, label, "group")
    assert result.gains == ref.gains, (name, label, "gains")
    assert result.pool_size == ref.pool_size, (name, label, "pool_size")


def run_greedy_one(name: str, enforce_speedup: bool) -> list[dict]:
    graph = load(name)
    n = graph.num_vertices
    k = min(GREEDY_K, n)
    pool = random.Random(POOL_SEED).sample(range(n), min(POOL_SIZE, n))
    objective = ClosenessObjective(graph)

    t_eager, eager = _timed(
        lambda: greedy_maximize(
            graph, k, objective, candidates=pool, gain_batch=1
        )
    )
    t_scalar, scalar = _timed(
        lambda: lazy_greedy_maximize(
            graph, k, objective, candidates=pool, gain_batch=1
        )
    )
    counters = SkylineCounters()
    t_batched, batched = _timed(
        lambda: lazy_greedy_maximize(
            graph,
            k,
            objective,
            candidates=pool,
            gain_batch="auto",
            counters=counters,
        )
    )
    t_pooled, pooled = _timed(
        lambda: lazy_greedy_maximize(
            graph,
            k,
            objective,
            candidates=pool,
            gain_batch="auto",
            workers=2,
            small_graph_edges=0,
        )
    )

    # Correctness gates before any timing row is recorded.
    _assert_same_selection(name, "lazy-scalar", scalar, eager)
    _assert_same_selection(name, "lazy-batched", batched, eager)
    _assert_same_selection(name, "lazy-pooled", pooled, eager)
    for label, lazy in (
        ("lazy-scalar", scalar),
        ("lazy-batched", batched),
        ("lazy-pooled", pooled),
    ):
        assert (
            lazy.evaluations + lazy.evaluations_saved == eager.evaluations
        ), (name, label, "CELF counter invariant")
    assert batched.evaluations == scalar.evaluations, name
    assert pooled.evaluations == scalar.evaluations, name

    speedup = t_scalar / max(t_batched, 1e-9)
    extra_counters = counters.extra
    print(
        f"{name}: n={n} m={graph.num_edges} k={k} |pool|={len(pool)} "
        f"eager {t_eager:.2f}s lazy-scalar {t_scalar:.2f}s "
        f"lazy-batched {t_batched:.2f}s "
        f"(B={extra_counters.get('gain_batch')}) "
        f"lazy-pooled {t_pooled:.2f}s => {speedup:.1f}x; "
        "all selections bit-for-bit identical to the scalar eager run"
    )
    if enforce_speedup:
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: batched round-loop speedup {speedup:.2f}x is below "
            f"the {MIN_SPEEDUP}x acceptance floor"
        )

    common = {
        "num_vertices": n,
        "num_edges": graph.num_edges,
        "k": k,
        "pool_size": len(pool),
    }
    return [
        bench_entry(
            bench="greedy_vector",
            instance=name,
            algorithm=f"BaseGC-eager-scalar(k={k})",
            wall_s=t_eager,
            extra={**common, "variant": "reference",
                   "evaluations": eager.evaluations},
        ),
        bench_entry(
            bench="greedy_vector",
            instance=name,
            algorithm=f"BaseGC-lazy-scalar(k={k})",
            wall_s=t_scalar,
            extra={
                **common,
                "variant": "before",
                "evaluations": scalar.evaluations,
                "evaluations_saved": scalar.evaluations_saved,
            },
        ),
        bench_entry(
            bench="greedy_vector",
            instance=name,
            algorithm=f"BaseGC-lazy-batched(k={k})",
            wall_s=t_batched,
            extra={
                **common,
                "variant": "after",
                "evaluations": batched.evaluations,
                "evaluations_saved": batched.evaluations_saved,
                "speedup_vs_scalar": round(speedup, 2),
                "gain_batch": extra_counters.get("gain_batch"),
                "batch_rounds": extra_counters.get("batch_rounds"),
                "lanes_evaluated": extra_counters.get("lanes_evaluated"),
                "lanes_short_circuited": extra_counters.get(
                    "lanes_short_circuited"
                ),
            },
        ),
        bench_entry(
            bench="greedy_vector",
            instance=name,
            algorithm=f"BaseGC-lazy-pooled-batched(k={k},w=2)",
            wall_s=t_pooled,
            extra={**common, "variant": "pooled",
                   "evaluations": pooled.evaluations},
        ),
    ]


def run_containment_one(name: str) -> list[dict]:
    graph = load(name)
    ref = filter_refine_sky(graph)

    t_scalar, scalar = _timed(
        lambda: lc_join_sky(graph, join_kernel="scalar")
    )
    t_vector, vector = _timed(
        lambda: lc_join_sky(graph, join_kernel="vector")
    )
    auto = lc_join_sky(graph)

    for label, result in (
        ("scalar", scalar),
        ("vector", vector),
        ("auto", auto),
    ):
        assert result.skyline == ref.skyline, (name, label, "skyline")
        # The dominator witness is the join's own (it may differ from
        # filter-refine's), but the kernel must not change it.
        assert result.dominator == scalar.dominator, (name, label)

    speedup = t_scalar / max(t_vector, 1e-9)
    print(
        f"{name}: |C|={len(ref.candidates)} |R|={len(ref.skyline)} "
        f"join scalar {t_scalar:.3f}s vector {t_vector:.3f}s "
        f"=> {speedup:.1f}x; skylines identical to filter-refine"
    )
    common = {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "skyline_size": len(ref.skyline),
    }
    return [
        bench_entry(
            bench="containment_vector",
            instance=name,
            algorithm="LCJoinSky-scalar",
            wall_s=t_scalar,
            extra={**common, "variant": "before"},
        ),
        bench_entry(
            bench="containment_vector",
            instance=name,
            algorithm="LCJoinSky-vector",
            wall_s=t_vector,
            extra={
                **common,
                "variant": "after",
                "speedup_vs_scalar": round(speedup, 2),
            },
        ),
    ]


def main(argv) -> int:
    instances = tuple(argv) or DEFAULT_INSTANCES
    entries = []
    for name in instances:
        # The speedup floor is an acceptance gate for the large tier;
        # explicitly requested small instances still record their rows
        # (batched lanes are not expected to win at toy sizes).
        entries.extend(run_greedy_one(name, name in DEFAULT_INSTANCES))
    if instances == DEFAULT_INSTANCES:
        for name in CONTAINMENT_INSTANCES:
            entries.extend(run_containment_one(name))
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    problems = validate_file(path)
    assert not problems, problems
    print(f"merged {len(entries)} entries into {path} (schema OK)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
