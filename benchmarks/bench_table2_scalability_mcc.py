"""Table II (Exp-7) — scalability of MC-BRB vs NeiSkyMC on LiveJournal.

The paper's Table II shows NeiSkyMC within a few percent of MC-BRB
(1,055,273 vs 1,063,380 μs at 100 %) — near-parity, with the skyline
version marginally ahead.  At laptop scale the skyline computation does
not amortize against sub-second clique searches, so the report carries
three columns: MC-BRB, NeiSkyMC end-to-end (includes FilterRefineSky,
as the paper's timing does), and the NeiSkyMC search alone with a
precomputed skyline — the last is the apples-to-apples search
comparison.
"""

import time

import pytest

from _datasets import SCALING_FRACTIONS, scalability_instance
from repro.clique import mc_brb, neisky_mc
from repro.core import filter_refine_sky

_RESULTS: dict[tuple[str, float], dict[str, float]] = {}
_COLUMNS = ("MC-BRB", "NeiSkyMC e2e", "NeiSkyMC search")


def _record(figure_report, axis, fraction, label, elapsed, omega):
    key = (axis, fraction)
    _RESULTS.setdefault(key, {})[label] = elapsed
    _RESULTS[key][label + "_omega"] = omega
    row = _RESULTS[key]
    if all(c in row for c in _COLUMNS):
        report = figure_report(
            "Table 2",
            "Scalability of maximum clique search on livejournal_sim",
            ("axis", "fraction") + tuple(f"{c} (s)" for c in _COLUMNS) + ("omega",),
        )
        omegas = {row[c + "_omega"] for c in _COLUMNS}
        assert len(omegas) == 1, "solvers disagree on omega"
        report.add_row(
            axis,
            fraction,
            *(row[c] for c in _COLUMNS),
            int(row["MC-BRB_omega"]),
        )
        if len(_RESULTS) == 2 * len(SCALING_FRACTIONS):
            report.add_note(
                "expected shape: both solvers grow with n; the search "
                "columns are near parity (paper Table II shows <=6% "
                "differences); the end-to-end column carries the "
                "skyline cost, which amortizes only at paper scale."
            )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_table2_mc_brb(benchmark, figure_report, axis, fraction):
    graph = scalability_instance(axis, fraction)
    start = time.perf_counter()
    clique = benchmark.pedantic(mc_brb, args=(graph,), rounds=1, iterations=1)
    _record(
        figure_report,
        axis,
        fraction,
        "MC-BRB",
        time.perf_counter() - start,
        len(clique),
    )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_table2_neisky_mc_end_to_end(benchmark, figure_report, axis, fraction):
    graph = scalability_instance(axis, fraction)
    start = time.perf_counter()
    clique = benchmark.pedantic(
        neisky_mc, args=(graph,), rounds=1, iterations=1
    )
    _record(
        figure_report,
        axis,
        fraction,
        "NeiSkyMC e2e",
        time.perf_counter() - start,
        len(clique),
    )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_table2_neisky_mc_search_only(benchmark, figure_report, axis, fraction):
    graph = scalability_instance(axis, fraction)
    skyline = filter_refine_sky(graph).skyline

    def run():
        return neisky_mc(graph, skyline=skyline)

    start = time.perf_counter()
    clique = benchmark.pedantic(run, rounds=1, iterations=1)
    _record(
        figure_report,
        axis,
        fraction,
        "NeiSkyMC search",
        time.perf_counter() - start,
        len(clique),
    )
