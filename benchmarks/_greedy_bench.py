"""Shared recording helper for the eager-vs-lazy greedy benchmarks.

Figs. 7/8 (k-ladder) and 11/12 (scalability) all pair an eager greedy
run with the lazy (CELF + CSR kernels) schedule of the identical
computation.  :func:`record_lazy` logs one lazy measurement: a
``BENCH_skyline.json`` entry carrying wall time and both evaluation
counters, plus — when the matching eager test already ran in this
session — a row in a per-figure "lazy" report with the wall-clock
speedup.
"""

from __future__ import annotations

from repro.harness.benchjson import bench_entry


def record_lazy(
    figure_report,
    bench_json,
    results: dict,
    *,
    bench: str,
    figure: str,
    instance: str,
    key,
    label_args,
    eager_label: str,
    lazy_label: str,
    elapsed: float,
    result,
) -> None:
    """Log one lazy greedy run.

    ``results`` is the producing module's accumulator keyed by ``key``;
    the eager tests must have stored ``eager_label`` (wall seconds) and
    ``eager_label + "_evals"`` under the same key for the speedup row
    to appear.  ``label_args`` are the leading report-row cells (e.g.
    ``(name, k)`` or ``(axis, fraction)``); ``instance`` / the
    ``lazy_label(...)`` algorithm string form the JSON entry identity.
    """
    row = results.setdefault(key, {})
    row[lazy_label] = elapsed
    row[lazy_label + "_evals"] = result.evaluations
    extra = {
        "strategy": "lazy",
        "evaluations": result.evaluations,
        "evaluations_saved": result.evaluations_saved,
    }
    eager_s = row.get(eager_label)
    eager_evals = row.get(eager_label + "_evals")
    if eager_s is not None:
        extra["eager_wall_s"] = eager_s
        extra["speedup_vs_eager"] = eager_s / elapsed
        if eager_evals is not None:
            extra["eager_evaluations"] = int(eager_evals)
    bench_json(
        bench_entry(
            bench=bench,
            instance=instance,
            algorithm=f"{lazy_label}({', '.join(map(str, label_args))})",
            wall_s=elapsed,
            extra=extra,
        )
    )
    if eager_s is None:
        return
    report = figure_report(
        f"{figure} lazy",
        f"{figure}: eager vs lazy (CELF + CSR kernels) schedules of "
        "the identical greedy computation",
        (
            "instance",
            "params",
            "eager (s)",
            "lazy (s)",
            "speedup",
            "eager evals",
            "lazy evals",
            "saved",
        ),
    )
    report.add_row(
        instance,
        "/".join(map(str, label_args)),
        eager_s,
        elapsed,
        eager_s / elapsed,
        int(eager_evals) if eager_evals is not None else -1,
        result.evaluations,
        result.evaluations_saved,
    )
