"""Fig. 9 (Exp-6) — BaseTopkMCC vs NeiSkyTopkMCC on Pokec/Orkut stand-ins.

NeiSky times include the skyline computation (as in the paper).
Expected shape: at k = 1 NeiSkyTopkMCC is slightly *slower* (it must
compute the skyline first while the base degenerates to plain MC-BRB);
from k ≥ 2 onward the skyline-rooted rounds win and both curves grow
with k.
"""

import time

import pytest

from _datasets import dataset
from repro.clique import base_topk_mcc, neisky_topk_mcc

DATASETS = ("pokec_sim", "orkut_sim")
K_VALUES = (1, 3, 5, 7, 9)

_RESULTS: dict[tuple[str, int], dict[str, object]] = {}


def _record(figure_report, name, k, label, elapsed, sizes):
    key = (name, k)
    _RESULTS.setdefault(key, {})[label] = elapsed
    _RESULTS[key][label + "_sizes"] = sizes
    row = _RESULTS[key]
    if "BaseTopkMCC" in row and "NeiSkyTopkMCC" in row:
        report = figure_report(
            "Figure 9",
            "Top-k maximum cliques: BaseTopkMCC vs NeiSkyTopkMCC",
            (
                "dataset",
                "k",
                "Base (s)",
                "NeiSky (s)",
                "speedup",
                "base sizes",
                "neisky sizes",
            ),
        )
        report.add_row(
            name,
            k,
            row["BaseTopkMCC"],
            row["NeiSkyTopkMCC"],
            row["BaseTopkMCC"] / row["NeiSkyTopkMCC"],
            str(row["BaseTopkMCC_sizes"]),
            str(row["NeiSkyTopkMCC_sizes"]),
        )
        if name == DATASETS[-1] and k == K_VALUES[-1]:
            report.add_note(
                "expected shape: NeiSky slightly slower at k=1 (skyline "
                "cost), faster for k>=2; clique sizes identical rank by "
                "rank."
            )


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig9_base_topk(benchmark, figure_report, name, k):
    graph = dataset(name)
    start = time.perf_counter()
    cliques = benchmark.pedantic(
        base_topk_mcc, args=(graph, k), rounds=1, iterations=1
    )
    _record(
        figure_report,
        name,
        k,
        "BaseTopkMCC",
        time.perf_counter() - start,
        [len(c) for c in cliques],
    )


@pytest.mark.parametrize("name", DATASETS)
@pytest.mark.parametrize("k", K_VALUES)
def test_fig9_neisky_topk(benchmark, figure_report, name, k):
    graph = dataset(name)
    start = time.perf_counter()
    cliques = benchmark.pedantic(
        neisky_topk_mcc, args=(graph, k), rounds=1, iterations=1
    )
    _record(
        figure_report,
        name,
        k,
        "NeiSkyTopkMCC",
        time.perf_counter() - start,
        [len(c) for c in cliques],
    )
