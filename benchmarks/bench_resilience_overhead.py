"""Measure the pool supervisor's overhead against a raw pool replica.

The supervisor's no-fault cost is pure bookkeeping: one deadline per
``future.result`` wait, one schema check per chunk, and counter sums.
This benchmark prices that bookkeeping by running the refine phase's
exact chunk workload twice over the same shipped payload —

* **raw**: ``ProcessPoolExecutor.map`` over the status and witness
  chunks, no deadlines, no validation, no retry machinery (the
  pre-supervisor engine's shape);
* **supervised**: the same tasks through :class:`PoolSupervisor.run`
  with the engine's validators and fallback wired, fault plan empty.

Both sides pay pool startup and payload shipping, so the delta is the
supervision itself.  Min-of-N wall times and the overhead percentage
are merged into ``BENCH_skyline.json`` (target: < 2%).

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py \
        [--dataset NAME] [--workers W] [--repeats N]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from array import array
from concurrent.futures import ProcessPoolExecutor

from repro.bloom.vertex_filters import width_for_max_degree
from repro.core.filter_phase import filter_phase
from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    write_bench_json,
)
from repro.parallel.chunks import chunk_ranges, default_chunk_size
from repro.parallel.engine import _pool_context
from repro.parallel.supervisor import PoolSupervisor, SupervisorConfig
from repro.parallel.worker import (
    build_payload,
    build_state,
    init_worker,
    run_status_chunk,
    run_witness_chunk,
    validate_status_chunk,
    validate_witness_chunk,
)
from repro.workloads import load

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _prepare(graph):
    candidates, dominator = filter_phase(graph)
    dmax = max((graph.degree(u) for u in graph.vertices()), default=0)
    bits = width_for_max_degree(dmax, 8)
    payload = build_payload(
        graph, candidates, dominator, bits=bits, seed=0, refine="bloom"
    )
    state = build_state(
        graph, candidates, dominator, bits=bits, seed=0, refine="bloom"
    )
    return candidates, payload, state


def _witness_tasks(dominated, size):
    blob = array("q", dominated)
    return [(lo, hi, blob) for lo, hi in chunk_ranges(len(dominated), size)]


def run_raw(payload, status_tasks, size, workers):
    """The two refine passes over a bare executor — no supervision."""
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=init_worker,
        initargs=(payload,),
    ) as pool:
        dominated = []
        for part, _stats in pool.map(run_status_chunk, status_tasks):
            dominated.extend(part)
        pairs = []
        for part, _stats in pool.map(
            run_witness_chunk, _witness_tasks(dominated, size)
        ):
            pairs.extend(part)
    return dominated, pairs


def run_supervised(payload, state, status_tasks, size, workers):
    """The same passes through the supervisor, fault plan empty."""
    supervisor = PoolSupervisor(
        workers=workers,
        initializer=init_worker,
        initargs=(payload,),
        config=SupervisorConfig(),
        mp_context=_pool_context(),
    )
    with supervisor:
        dominated = []
        for part, _stats in supervisor.run(
            run_status_chunk,
            status_tasks,
            fallback=lambda task: run_status_chunk(task, state),
            validate=validate_status_chunk,
        ):
            dominated.extend(part)
        pairs = []
        for part, _stats in supervisor.run(
            run_witness_chunk,
            _witness_tasks(dominated, size),
            fallback=lambda task: run_witness_chunk(task, state),
            validate=validate_witness_chunk,
        ):
            pairs.extend(part)
    return dominated, pairs


def measure(dataset: str, workers: int, repeats: int) -> list[dict]:
    graph = load(dataset)
    candidates, payload, state = _prepare(graph)
    size = default_chunk_size(len(candidates), workers)
    status_tasks = chunk_ranges(len(candidates), size)

    best_raw = best_sup = float("inf")
    reference = None
    # Alternate the order inside every repeat so cache/scheduler drift
    # cannot systematically favor one side of the min.
    for _ in range(repeats):
        start = time.perf_counter()
        raw = run_raw(payload, status_tasks, size, workers)
        best_raw = min(best_raw, time.perf_counter() - start)

        start = time.perf_counter()
        sup = run_supervised(payload, state, status_tasks, size, workers)
        best_sup = min(best_sup, time.perf_counter() - start)

        assert raw == sup, "supervised pool diverged from raw pool"
        reference = raw

    assert reference is not None
    overhead_pct = 100.0 * (best_sup - best_raw) / best_raw
    print(
        f"{dataset}: workers={workers} chunks={len(status_tasks)} "
        f"raw={best_raw:.3f}s supervised={best_sup:.3f}s "
        f"overhead={overhead_pct:+.2f}% (target < 2%)"
    )
    return [
        bench_entry(
            bench="resilience_overhead",
            instance=dataset,
            algorithm=f"raw-pool(w={workers})",
            wall_s=best_raw,
        ),
        bench_entry(
            bench="resilience_overhead",
            instance=dataset,
            algorithm=f"supervised-pool(w={workers})",
            wall_s=best_sup,
            extra={"overhead_pct": round(overhead_pct, 2)},
        ),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="wikitalk_sim")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    entries = measure(args.dataset, args.workers, args.repeats)
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    print(f"merged {len(entries)} entries into {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
