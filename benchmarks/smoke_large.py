"""CI smoke check for the million-edge workload tier.

End-to-end over the large-graph substrate, in one seeded run:

1. materialize the ``kron_large`` registry graph (stochastic Kronecker,
   ~1.2M edges, CSR-backed from birth);
2. convert it to the binary on-disk format and re-open it via
   ``np.memmap`` (:mod:`repro.graph.binfmt`) — the open must be
   effectively instant and the loaded graph identical in counts;
3. run the parallel block-kernel skyline on the memmap-backed graph
   through the supervised engine (shared-memory data plane where
   available);
4. assert the skyline is non-empty, sane (a subset of the filter
   candidates), that the **refine phase** stayed inside its wall-time
   budget (the block kernel's reason to exist — the bloom baseline
   takes several times longer at this scale), and that **zero**
   shared-memory residue survives — no live parent segments and no
   ``repro_*`` file in ``/dev/shm``.

Wall times go into ``BENCH_skyline.json`` as ``bench="large_tier"``
rows through the same checkpoint journal the sweep harness uses, so an
interrupted smoke resumes instead of regenerating the graph.

Usage::

    PYTHONPATH=src python benchmarks/smoke_large.py [dataset ...]
"""

from __future__ import annotations

import glob
import os
import sys
import tempfile
import time

from repro.core.filter_phase import filter_phase
from repro.graph.binfmt import read_binary_graph, write_binary_graph
from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    write_bench_json,
)
from repro.harness.checkpoint import CheckpointJournal
from repro.parallel import parallel_refine_sky
from repro.parallel.shm import live_segment_names
from repro.workloads import load, spec

DEFAULT_INSTANCES = ("kron_large",)

#: The smoke refuses to pass on anything smaller — the tier's reason to
#: exist is that the substrate handles seven-figure edge counts.
MIN_EDGES = 1_000_000

#: Wall-time budget for the refine phase (end-to-end skyline wall minus
#: a separately timed filter pass).  The block kernel clears this with
#: ample slack on ``kron_large`` while the bloom baseline is several
#: times over it, so a silent regression to scalar refine fails the
#: smoke.  Override for unusually slow CI hosts.
REFINE_BUDGET_S = float(
    os.environ.get("REPRO_SMOKE_REFINE_BUDGET_S", "20.0")
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _assert_no_residue(where: str) -> None:
    assert not live_segment_names(), (
        f"{where}: live parent segments {live_segment_names()}"
    )
    leaked = glob.glob("/dev/shm/repro_*")
    assert not leaked, f"{where}: /dev/shm residue {leaked}"


def run_one(name: str, workdir: str, journal: CheckpointJournal) -> list[dict]:
    t0 = time.perf_counter()
    graph = load(name)
    t_gen = time.perf_counter() - t0
    assert graph.num_edges >= MIN_EDGES, (
        f"{name}: {graph.num_edges} edges; the large tier starts at "
        f"{MIN_EDGES}"
    )

    binary_path = os.path.join(workdir, f"{name}.rsky")
    t0 = time.perf_counter()
    write_binary_graph(graph, binary_path)
    t_convert = time.perf_counter() - t0

    t0 = time.perf_counter()
    mapped = read_binary_graph(binary_path)
    t_open = time.perf_counter() - t0
    assert mapped.num_vertices == graph.num_vertices
    assert mapped.num_edges == graph.num_edges
    # O(1) open: a million-edge graph must map in well under a second.
    assert t_open < 1.0, f"{name}: memmap open took {t_open:.3f}s"

    cell = journal.get(name, "parallel_block", 0)
    if cell is not None:
        wall = cell["wall_s"]
        refine_wall = cell["extra"]["refine_s"]
        skyline_size = cell["extra"]["skyline_size"]
        candidate_size = cell["extra"]["candidate_size"]
        print(f"{name}: resumed skyline cell from checkpoint")
    else:
        t0 = time.perf_counter()
        candidates, _ = filter_phase(mapped)
        t_filter = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = parallel_refine_sky(
            mapped, workers=2, refine="block", small_graph_edges=0
        )
        wall = time.perf_counter() - t0
        refine_wall = max(wall - t_filter, 0.0)
        assert result.size > 0, f"{name}: empty skyline"
        assert result.candidate_size is not None
        assert result.size <= result.candidate_size
        assert set(result.skyline) <= set(candidates), (
            f"{name}: skyline escaped the candidate set"
        )
        skyline_size = result.size
        candidate_size = result.candidate_size
        journal.mark_done(
            name,
            "parallel_block",
            0,
            wall_s=wall,
            refine_s=refine_wall,
            skyline_size=skyline_size,
            candidate_size=candidate_size,
        )
    assert refine_wall <= REFINE_BUDGET_S, (
        f"{name}: refine phase took {refine_wall:.1f}s, over the "
        f"{REFINE_BUDGET_S:.0f}s block-kernel budget"
    )
    _assert_no_residue(name)

    print(
        f"{name}: n={graph.num_vertices} m={graph.num_edges} "
        f"gen {t_gen:.1f}s convert {t_convert:.2f}s "
        f"memmap-open {t_open * 1000:.1f}ms skyline {wall:.1f}s "
        f"(refine {refine_wall:.1f}s <= {REFINE_BUDGET_S:.0f}s budget) "
        f"|C|={candidate_size} |R|={skyline_size}; no shm residue"
    )
    return [
        bench_entry(
            bench="large_tier",
            instance=name,
            algorithm="parallel_block_skyline",
            wall_s=wall,
            extra={
                "refine_s": round(refine_wall, 3),
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "skyline_size": skyline_size,
                "candidate_size": candidate_size,
                "generate_s": round(t_gen, 3),
                "convert_s": round(t_convert, 3),
                "memmap_open_s": round(t_open, 6),
                "description": spec(name).description,
            },
        )
    ]


def main(argv) -> int:
    instances = tuple(argv) or DEFAULT_INSTANCES
    entries = []
    journal = CheckpointJournal(
        os.path.join(REPO_ROOT, ".smoke_large_checkpoint.json")
    )
    with tempfile.TemporaryDirectory(prefix="smoke_large_") as workdir:
        for name in instances:
            entries.extend(run_one(name, workdir, journal))
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    # A clean full run retires its journal; only interrupted runs leave
    # one behind for the resume path.
    try:
        os.unlink(journal.path)
    except FileNotFoundError:
        pass
    print(f"merged {len(entries)} entries into {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
