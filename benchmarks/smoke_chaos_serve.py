"""CI chaos smoke: a faulted 100-request trace, self-healing verified.

Plain script (no pytest) so CI can run it in seconds.  It brings up
the full self-healing serving stack — registry, warm sessions,
supervised engine, per-graph circuit breakers — on an ephemeral port,
replays a seeded 100-request mixed trace while a seeded
:class:`~repro.harness.faults.ServeFaultPlan` injects engine
exceptions, session poisoning, shm attach failures and slow queries,
and asserts the resilience contract:

* availability >= 95%: at least 95 of the 100 requests answer 200
  (degraded 200s count — they are marked and correct);
* **every** 200 is bit-for-bit equal to the direct API result for its
  exact parameters, computed with no server in between;
* faults genuinely fired and were healed: injected-fault and rebuild
  counters are non-zero in ``/metrics``;
* queue accounting is conserved: enqueued == dequeued + expired;
* shutdown is clean: no surviving shm segment, no ``/dev/shm``
  residue, no orphaned child process.

The headline numbers merge into ``BENCH_skyline.json`` as a
``bench="chaos_serve"`` row so the CI artifact tracks availability,
rebuild count and p99-under-fault over time.  Fully seeded: a red run
here replays identically with the same command locally.

Usage::

    PYTHONPATH=src python benchmarks/smoke_chaos_serve.py
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import sys

from _serve_trace import (
    direct_references,
    generate_trace,
    replay,
    summarize,
    verify_200s,
)

from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    write_bench_json,
)
from repro.harness.faults import ServeFaultPlan
from repro.parallel import live_segment_names
from repro.serve import (
    GraphRegistry,
    ServeConfig,
    ServerThread,
    SupervisionConfig,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

GRAPHS = ("karate", "bombing_proxy")
NUM_REQUESTS = 100
SEED = 11
AVAILABILITY_FLOOR = 0.95


def main() -> int:
    trace = generate_trace(GRAPHS, NUM_REQUESTS, seed=SEED, mean_gap_s=0.005)
    references = direct_references(trace)
    fault_plan = ServeFaultPlan.seeded(
        SEED, GRAPHS, max_calls=4 * NUM_REQUESTS, rate=0.2
    )
    registry = GraphRegistry(workers=1)
    for name in GRAPHS:
        registry.register_spec(name)
    config = ServeConfig(
        port=0,
        queue_capacity=NUM_REQUESTS,
        batch_max=8,
        supervision=SupervisionConfig(
            query_deadline_s=30.0,
            backoff_base_s=0.005,
            backoff_cap_s=0.05,
            max_session_rebuilds=10_000,
            breaker_threshold=3,
            breaker_cooldown_s=0.25,
            seed=SEED,
        ),
    )
    with ServerThread(registry, config, fault_plan=fault_plan) as handle:
        status, health = handle.request("GET", "/health")
        assert status == 200 and health["status"] == "ok", health
        outcomes, wall_s = replay(
            handle, trace, max_clients=8, capture_docs=True
        )
        _, metrics = handle.request("GET", "/metrics")

    summary = summarize(outcomes, wall_s)
    availability = summary["ok"] / summary["requests"]
    assert availability >= AVAILABILITY_FLOOR, summary["statuses"]

    # Bit-for-bit: every 200 (degraded included) equals the direct API.
    verified, degraded = verify_200s(trace, outcomes, references)
    assert verified == summary["ok"]

    # The chaos genuinely happened and was healed, not dodged.
    supervision = metrics["supervision"]
    injected = sum(supervision["injected_faults"].values())
    rebuilds = sum(supervision["rebuilds"].values())
    assert injected > 0, "seeded fault plan injected nothing"
    assert rebuilds > 0, "faults fired but no session was rebuilt"

    # Conserved queue accounting even while sessions churn.
    queue = metrics["queue"]
    assert queue["enqueued_total"] == (
        queue["dequeued_total"] + queue["expired_total"]
    ), queue
    assert queue["depth"] == 0, queue

    # Clean shutdown: nothing survives the context manager.
    assert live_segment_names() == (), live_segment_names()
    leaked = glob.glob("/dev/shm/repro_*")
    assert not leaked, f"/dev/shm residue {leaked}"
    assert multiprocessing.active_children() == []

    entry = bench_entry(
        bench="chaos_serve",
        instance="+".join(GRAPHS),
        algorithm=f"smoke-chaos(n={NUM_REQUESTS})",
        wall_s=summary["wall_s"],
        extra={
            "availability": round(availability, 4),
            "ok": summary["ok"],
            "degraded": degraded,
            "injected_faults": injected,
            "rebuilds": rebuilds,
            "p50_ms": round(summary["p50_ms"], 2),
            "p99_ms": round(summary["p99_ms"], 2),
            "statuses": summary["statuses"],
        },
    )
    write_bench_json(os.path.join(REPO_ROOT, BENCH_FILENAME), [entry])

    print(
        f"chaos serve smoke: {summary['ok']}/{NUM_REQUESTS} ok "
        f"(availability={availability:.1%}, {degraded} degraded), "
        f"{injected} faults injected, {rebuilds} rebuilds, "
        f"p99={summary['p99_ms']:.1f}ms, wall={wall_s:.2f}s, zero residue"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
