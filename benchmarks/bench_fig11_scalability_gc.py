"""Fig. 11 (Exp-7) — scalability of Greedy++ (BaseGC) vs NeiSkyGC.

LiveJournal centrality instance subsampled along ``n`` and ``ρ``; fixed
``k``.  Expected shape: NeiSkyGC faster at every point, growing more
smoothly.  The lazy (CELF + CSR) schedule of the NeiSkyGC computation
rides along; both schedules land in ``BENCH_skyline.json`` under
``bench="fig11_scalability_gc"``.
"""

import time

import pytest

from _datasets import (
    GROUP_K_DEFAULT,
    SCALING_FRACTIONS,
    scalability_centrality_instance,
)
from _greedy_bench import record_lazy
from repro.centrality import base_gc, neisky_gc
from repro.core import filter_refine_sky
from repro.harness.benchjson import bench_entry

BENCH = "fig11_scalability_gc"

_RESULTS: dict[tuple[str, float], dict[str, float]] = {}


def _record(figure_report, axis, fraction, label, elapsed):
    key = (axis, fraction)
    _RESULTS.setdefault(key, {})[label] = elapsed
    row = _RESULTS[key]
    if "Greedy++" in row and "NeiSkyGC" in row:
        report = figure_report(
            "Figure 11",
            f"Scalability of group closeness (k={GROUP_K_DEFAULT}) "
            "on livejournal_sim",
            ("axis", "fraction", "Greedy++ (s)", "NeiSkyGC (s)", "speedup"),
        )
        report.add_row(
            axis,
            fraction,
            row["Greedy++"],
            row["NeiSkyGC"],
            row["Greedy++"] / row["NeiSkyGC"],
        )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig11_base_gc(benchmark, figure_report, axis, fraction):
    graph = scalability_centrality_instance(axis, fraction)
    start = time.perf_counter()
    benchmark.pedantic(
        base_gc, args=(graph, GROUP_K_DEFAULT), rounds=1, iterations=1
    )
    _record(figure_report, axis, fraction, "Greedy++", time.perf_counter() - start)


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig11_neisky_gc(benchmark, figure_report, bench_json, axis, fraction):
    graph = scalability_centrality_instance(axis, fraction)

    def run():
        skyline = filter_refine_sky(graph).skyline
        return neisky_gc(graph, GROUP_K_DEFAULT, skyline=skyline)

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _record(figure_report, axis, fraction, "NeiSkyGC", elapsed)
    _RESULTS[(axis, fraction)]["NeiSkyGC_evals"] = result.evaluations
    bench_json(
        bench_entry(
            bench=BENCH,
            instance=f"livejournal_sim[{axis}={fraction}]",
            algorithm=f"NeiSkyGC(k={GROUP_K_DEFAULT})",
            wall_s=elapsed,
            extra={
                "strategy": "eager",
                "evaluations": result.evaluations,
            },
        )
    )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig11_lazy_gc(benchmark, figure_report, bench_json, axis, fraction):
    # Same NeiSkyGC computation under the CELF schedule + CSR kernels;
    # the result is asserted identical before the timing is recorded.
    graph = scalability_centrality_instance(axis, fraction)
    skyline = filter_refine_sky(graph).skyline
    eager = neisky_gc(graph, GROUP_K_DEFAULT, skyline=skyline)

    def run():
        sky = filter_refine_sky(graph).skyline
        return neisky_gc(
            graph, GROUP_K_DEFAULT, skyline=sky, strategy="lazy"
        )

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert result.group == eager.group
    assert result.gains == eager.gains
    record_lazy(
        figure_report,
        bench_json,
        _RESULTS,
        bench=BENCH,
        figure="Figure 11",
        instance=f"livejournal_sim[{axis}={fraction}]",
        key=(axis, fraction),
        label_args=(f"k={GROUP_K_DEFAULT}",),
        eager_label="NeiSkyGC",
        lazy_label="LazyNeiSkyGC",
        elapsed=elapsed,
        result=result,
    )
