"""Fig. 11 (Exp-7) — scalability of Greedy++ (BaseGC) vs NeiSkyGC.

LiveJournal centrality instance subsampled along ``n`` and ``ρ``; fixed
``k``.  Expected shape: NeiSkyGC faster at every point, growing more
smoothly.
"""

import time

import pytest

from _datasets import (
    GROUP_K_DEFAULT,
    SCALING_FRACTIONS,
    scalability_centrality_instance,
)
from repro.centrality import base_gc, neisky_gc
from repro.core import filter_refine_sky

_RESULTS: dict[tuple[str, float], dict[str, float]] = {}


def _record(figure_report, axis, fraction, label, elapsed):
    key = (axis, fraction)
    _RESULTS.setdefault(key, {})[label] = elapsed
    row = _RESULTS[key]
    if "Greedy++" in row and "NeiSkyGC" in row:
        report = figure_report(
            "Figure 11",
            f"Scalability of group closeness (k={GROUP_K_DEFAULT}) "
            "on livejournal_sim",
            ("axis", "fraction", "Greedy++ (s)", "NeiSkyGC (s)", "speedup"),
        )
        report.add_row(
            axis,
            fraction,
            row["Greedy++"],
            row["NeiSkyGC"],
            row["Greedy++"] / row["NeiSkyGC"],
        )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig11_base_gc(benchmark, figure_report, axis, fraction):
    graph = scalability_centrality_instance(axis, fraction)
    start = time.perf_counter()
    benchmark.pedantic(
        base_gc, args=(graph, GROUP_K_DEFAULT), rounds=1, iterations=1
    )
    _record(figure_report, axis, fraction, "Greedy++", time.perf_counter() - start)


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig11_neisky_gc(benchmark, figure_report, axis, fraction):
    graph = scalability_centrality_instance(axis, fraction)

    def run():
        skyline = filter_refine_sky(graph).skyline
        return neisky_gc(graph, GROUP_K_DEFAULT, skyline=skyline)

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    _record(figure_report, axis, fraction, "NeiSkyGC", time.perf_counter() - start)
