"""CI serving smoke: a 100-request trace, zero errors, clean shutdown.

Plain script (no pytest) so CI can run it in seconds.  It brings up
the full serving stack — registry, warm sessions, bounded queue,
asyncio HTTP front — on an ephemeral port, replays a seeded mixed
trace of 100 requests from concurrent clients, and asserts the
service-level contract:

* every request completes with 200 (the queue is provisioned for the
  trace, so nothing is rejected, nothing expires, nothing errors);
* client-observed p99 latency stays under a deliberately generous
  bound — this catches pathological serialization, not regressions of
  a few milliseconds;
* ``/metrics`` accounting is conserved: enqueued == dequeued, zero
  rejected/expired, engine counters flowed through;
* shutdown is clean: no surviving ``repro_*`` shared-memory segment,
  no ``/dev/shm`` residue, no orphaned child process.

Usage::

    PYTHONPATH=src python benchmarks/smoke_serve.py
"""

from __future__ import annotations

import glob
import multiprocessing
import sys

from _serve_trace import generate_trace, replay, summarize

from repro.parallel import live_segment_names
from repro.serve import GraphRegistry, ServeConfig, ServerThread

GRAPHS = ("karate", "bombing_proxy")
NUM_REQUESTS = 100
P99_BOUND_S = 20.0  # generous: catches serialization pathologies only


def main() -> int:
    trace = generate_trace(GRAPHS, NUM_REQUESTS, seed=7, mean_gap_s=0.005)
    registry = GraphRegistry(workers=1)
    for name in GRAPHS:
        registry.register_spec(name)
    config = ServeConfig(port=0, queue_capacity=NUM_REQUESTS, batch_max=8)
    with ServerThread(registry, config) as handle:
        status, health = handle.request("GET", "/health")
        assert status == 200 and health["status"] == "ok", health
        outcomes, wall_s = replay(handle, trace, max_clients=8)
        _, metrics = handle.request("GET", "/metrics")

    summary = summarize(outcomes, wall_s)
    assert summary["ok"] == NUM_REQUESTS, summary["statuses"]
    assert summary["server_errors"] == 0, summary["statuses"]
    assert summary["rejected"] == 0 and summary["expired"] == 0, summary
    p99_s = summary["p99_ms"] / 1000.0
    assert p99_s < P99_BOUND_S, f"p99 {p99_s:.2f}s over {P99_BOUND_S}s bound"

    queue = metrics["queue"]
    assert queue["enqueued_total"] == NUM_REQUESTS, queue
    assert queue["dequeued_total"] == NUM_REQUESTS, queue
    assert queue["rejected_total"] == 0 and queue["expired_total"] == 0, queue
    assert queue["depth"] == 0, queue
    assert metrics["engine"]["counters"].get("pair_tests", 0) > 0, (
        "engine counters did not flow into /metrics"
    )

    # Clean shutdown: nothing survives the context manager.
    assert live_segment_names() == (), live_segment_names()
    leaked = glob.glob("/dev/shm/repro_*")
    assert not leaked, f"/dev/shm residue {leaked}"
    assert multiprocessing.active_children() == []

    print(
        f"serve smoke: {NUM_REQUESTS} requests, all 200, "
        f"p50={summary['p50_ms']:.1f}ms p99={summary['p99_ms']:.1f}ms, "
        f"wall={wall_s:.2f}s, zero residue"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
