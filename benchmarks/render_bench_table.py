"""Render the README benchmark table from ``BENCH_skyline.json``.

Reads the ``parallel_speedup`` entries of the repo-root benchmark
document and prints a GitHub-markdown table of refine-phase times for
the bloom baseline vs the packed-bitset kernel, with the speedup ratio
— the table pasted into README.md.  Keeping the renderer next to the
data means the README numbers are always regenerable::

    PYTHONPATH=src python benchmarks/render_bench_table.py
"""

from __future__ import annotations

import os
import sys

from repro.harness.benchjson import BENCH_FILENAME, load_bench_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def render(entries) -> str:
    by_key = {
        (e["instance"], e["algorithm"]): e
        for e in entries
        if e["bench"] == "parallel_speedup"
    }
    instances = sorted({k[0] for k in by_key})
    lines = [
        "| dataset | refine bloom (s) | refine bitset (s) | speedup |",
        "|---|---|---|---|",
    ]
    for name in instances:
        bloom = by_key.get((name, "FilterRefineSky"))
        bit = by_key.get((name, "FilterRefineSkyBitset"))
        if bloom is None or bit is None:
            continue
        ratio = bit.get("extra", {}).get(
            "refine_speedup_vs_bloom",
            bloom["refine_s"] / bit["refine_s"],
        )
        lines.append(
            f"| {name} | {bloom['refine_s']:.4f} | {bit['refine_s']:.4f} "
            f"| {ratio:.2f}x |"
        )
    return "\n".join(lines)


def main() -> int:
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    entries = load_bench_json(path)
    if not entries:
        print(
            f"no entries in {path}; run "
            "`PYTHONPATH=src python -m pytest benchmarks/"
            "bench_parallel_speedup.py` first",
            file=sys.stderr,
        )
        return 1
    print(render(entries))
    return 0


if __name__ == "__main__":
    sys.exit(main())
