"""Render the README benchmark tables from ``BENCH_skyline.json``.

Reads the repo-root benchmark document and prints GitHub-markdown
tables pasted into README.md — refine-phase times for the bloom
baseline vs the packed-bitset kernel (``parallel_speedup`` entries),
and eager vs lazy (CELF + CSR) group-centrality wall times with their
evaluation counts (``fig7_group_closeness``/``fig8_group_harmonic``
entries).  Keeping the renderer next to the data means the README
numbers are always regenerable::

    PYTHONPATH=src python benchmarks/render_bench_table.py
"""

from __future__ import annotations

import os
import sys

from repro.harness.benchjson import BENCH_FILENAME, load_bench_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def render(entries) -> str:
    by_key = {
        (e["instance"], e["algorithm"]): e
        for e in entries
        if e["bench"] == "parallel_speedup"
    }
    instances = sorted({k[0] for k in by_key})
    lines = [
        "| dataset | refine bloom (s) | refine bitset (s) | speedup |",
        "|---|---|---|---|",
    ]
    for name in instances:
        bloom = by_key.get((name, "FilterRefineSky"))
        bit = by_key.get((name, "FilterRefineSkyBitset"))
        if bloom is None or bit is None:
            continue
        ratio = bit.get("extra", {}).get(
            "refine_speedup_vs_bloom",
            bloom["refine_s"] / bit["refine_s"],
        )
        lines.append(
            f"| {name} | {bloom['refine_s']:.4f} | {bit['refine_s']:.4f} "
            f"| {ratio:.2f}x |"
        )
    return "\n".join(lines)


#: (bench, objective label) pairs feeding the group-centrality table.
GREEDY_BENCHES = (
    ("fig7_group_closeness", "GC"),
    ("fig8_group_harmonic", "GH"),
)


def render_greedy(entries) -> str:
    """Eager vs lazy group-centrality table from the fig7/fig8 entries.

    Each lazy rider entry carries its eager twin's wall time and
    evaluation count in ``extra`` (written by
    ``benchmarks/_greedy_bench.py``), so one entry per row suffices.
    Returns ``""`` when no lazy entries have been recorded yet.
    """
    rows = []
    for bench, objective in GREEDY_BENCHES:
        for e in entries:
            extra = e.get("extra", {})
            if e["bench"] != bench or "speedup_vs_eager" not in extra:
                continue
            k = e["algorithm"].rsplit("k=", 1)[-1].rstrip(")")
            rows.append(
                (
                    e["instance"],
                    objective,
                    int(k),
                    extra["eager_wall_s"],
                    e["wall_s"],
                    extra["speedup_vs_eager"],
                    extra["eager_evaluations"],
                    extra["evaluations"],
                )
            )
    if not rows:
        return ""
    rows.sort()
    lines = [
        "| dataset | objective | k | eager (s) | lazy (s) | speedup "
        "| eager evals | lazy evals |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for inst, obj, k, eager_s, lazy_s, ratio, eager_ev, lazy_ev in rows:
        lines.append(
            f"| {inst} | {obj} | {k} | {eager_s:.3f} | {lazy_s:.3f} "
            f"| {ratio:.2f}x | {eager_ev} | {lazy_ev} |"
        )
    return "\n".join(lines)


#: The two vectorized phases of the csr_substrate bench, with the
#: (list, csr) algorithm names each phase's rows carry.
_SUBSTRATE_PHASES = (
    ("filter", "filter_phase_list", "filter_phase_csr"),
    ("bfs", "bfs_list", "bfs_csr"),
)


def render_substrate(entries) -> str:
    """List-backed vs CSR substrate table (``csr_substrate`` entries).

    One row per (instance, phase); speedup comes from the CSR row's
    ``extra`` (recorded at measurement time).  Returns ``""`` when no
    substrate rows exist yet.
    """
    by_key = {
        (e["instance"], e["algorithm"]): e
        for e in entries
        if e["bench"] == "csr_substrate"
    }
    instances = sorted({k[0] for k in by_key})
    rows = []
    for name in instances:
        for phase, list_alg, csr_alg in _SUBSTRATE_PHASES:
            before = by_key.get((name, list_alg))
            after = by_key.get((name, csr_alg))
            if before is None or after is None:
                continue
            extra = after.get("extra", {})
            ratio = extra.get(
                "speedup_vs_list", before["wall_s"] / after["wall_s"]
            )
            rows.append(
                f"| {name} | {extra.get('num_edges', '?')} | {phase} "
                f"| {before['wall_s']:.2f} | {after['wall_s']:.2f} "
                f"| {ratio:.1f}x |"
            )
    if not rows:
        return ""
    return "\n".join(
        [
            "| dataset | edges | phase | list (s) | CSR (s) | speedup |",
            "|---|---|---|---|---|---|",
            *rows,
        ]
    )


def render_refine_vector(entries) -> str:
    """Block-kernel before/after table (``refine_vector`` entries).

    One row per instance: candidate count, the before row's refine wall
    (annotated with the path that actually ran — at large scale the
    default-budget bitset kernel is the bloom fallback), the block
    kernel's refine wall, and the measured speedup.  Returns ``""``
    when ``bench_refine_vector.py`` has not been run yet.
    """
    by_key = {
        (e["instance"], e["algorithm"]): e
        for e in entries
        if e["bench"] == "refine_vector"
    }
    rows = []
    for name in sorted({k[0] for k in by_key}):
        before = by_key.get((name, "FilterRefineSkyBitset"))
        after = by_key.get((name, "FilterRefineSkyBlock"))
        if before is None or after is None:
            continue
        b_extra = before.get("extra", {})
        a_extra = after.get("extra", {})
        ratio = a_extra.get(
            "refine_speedup",
            b_extra["refine_s"] / a_extra["refine_s"],
        )
        rows.append(
            f"| {name} | {a_extra.get('candidate_size', '?')} "
            f"| {b_extra['refine_s']:.2f} "
            f"({b_extra.get('refine_path', '?')}) "
            f"| {a_extra['refine_s']:.2f} | {ratio:.1f}x "
            f"| {a_extra.get('core_pretest_rejects', '?')} |"
        )
    if not rows:
        return ""
    return "\n".join(
        [
            "| dataset | \\|C\\| | refine before (s) | refine block (s) "
            "| speedup | core-pretest rejects |",
            "|---|---|---|---|---|---|",
            *rows,
        ]
    )


def render_large_tier(entries) -> str:
    """Million-edge tier table (``large_tier`` entries).

    One row per instance: graph shape, binary convert / memmap open
    times, and the end-to-end parallel block-kernel skyline wall time.
    Returns ``""`` when the tier has not been benched yet.
    """
    rows = []
    for e in entries:
        if e["bench"] != "large_tier":
            continue
        extra = e.get("extra", {})
        rows.append(
            (
                e["instance"],
                f"| {e['instance']} | {extra.get('num_vertices', '?')} "
                f"| {extra.get('num_edges', '?')} "
                f"| {extra.get('convert_s', 0):.2f} "
                f"| {extra.get('memmap_open_s', 0) * 1000:.1f}ms "
                f"| {e['wall_s']:.1f} "
                f"| {extra.get('skyline_size', '?')} |",
            )
        )
    if not rows:
        return ""
    rows.sort()
    return "\n".join(
        [
            "| dataset | n | m | convert (s) | memmap open | skyline (s) "
            "| \\|R\\| |",
            "|---|---|---|---|---|---|---|",
            *[line for _, line in rows],
        ]
    )


def render_greedy_vector(entries) -> str:
    """Batched gain-plane before/after table (``greedy_vector`` rows).

    One row per instance: pool shape, the eager reference wall, the
    scalar and batched lazy walls with the measured speedup, and the
    auto-chosen lane width.  Returns ``""`` when
    ``bench_greedy_vector.py`` has not been run yet.
    """
    by_inst = {}
    for e in entries:
        if e["bench"] == "greedy_vector":
            variant = e.get("extra", {}).get("variant")
            by_inst.setdefault(e["instance"], {})[variant] = e
    rows = []
    for name in sorted(by_inst):
        group = by_inst[name]
        before = group.get("before")
        after = group.get("after")
        if before is None or after is None:
            continue
        ref = group.get("reference")
        a_extra = after.get("extra", {})
        ratio = a_extra.get(
            "speedup_vs_scalar", before["wall_s"] / after["wall_s"]
        )
        eager_cell = f"{ref['wall_s']:.1f}" if ref is not None else "?"
        rows.append(
            f"| {name} | {a_extra.get('k', '?')} "
            f"| {a_extra.get('pool_size', '?')} | {eager_cell} "
            f"| {before['wall_s']:.1f} | {after['wall_s']:.1f} "
            f"| {ratio:.1f}x | {a_extra.get('gain_batch', '?')} |"
        )
    if not rows:
        return ""
    return "\n".join(
        [
            "| dataset | k | pool | eager (s) | lazy scalar (s) "
            "| lazy batched (s) | speedup | B |",
            "|---|---|---|---|---|---|---|---|",
            *rows,
        ]
    )


def render_containment_vector(entries) -> str:
    """Containment-join kernel table (``containment_vector`` rows).

    One row per instance: skyline size and end-to-end ``LC-join``
    skyline walls under the scalar and vector kernels.  Returns ``""``
    when no containment rows exist yet.
    """
    by_key = {
        (e["instance"], e["algorithm"]): e
        for e in entries
        if e["bench"] == "containment_vector"
    }
    rows = []
    for name in sorted({k[0] for k in by_key}):
        before = by_key.get((name, "LCJoinSky-scalar"))
        after = by_key.get((name, "LCJoinSky-vector"))
        if before is None or after is None:
            continue
        a_extra = after.get("extra", {})
        ratio = a_extra.get(
            "speedup_vs_scalar", before["wall_s"] / after["wall_s"]
        )
        rows.append(
            f"| {name} | {a_extra.get('skyline_size', '?')} "
            f"| {before['wall_s']:.3f} | {after['wall_s']:.3f} "
            f"| {ratio:.2f}x |"
        )
    if not rows:
        return ""
    return "\n".join(
        [
            "| dataset | \\|R\\| | join scalar (s) | join vector (s) "
            "| speedup |",
            "|---|---|---|---|---|",
            *rows,
        ]
    )


def main() -> int:
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    entries = load_bench_json(path)
    if not entries:
        print(
            f"no entries in {path}; run "
            "`PYTHONPATH=src python -m pytest benchmarks/"
            "bench_parallel_speedup.py` first",
            file=sys.stderr,
        )
        return 1
    print(render(entries))
    greedy = render_greedy(entries)
    if greedy:
        print()
        print(greedy)
    substrate = render_substrate(entries)
    if substrate:
        print()
        print(substrate)
    refine_vector = render_refine_vector(entries)
    if refine_vector:
        print()
        print(refine_vector)
    large = render_large_tier(entries)
    if large:
        print()
        print(large)
    greedy_vector = render_greedy_vector(entries)
    if greedy_vector:
        print()
        print(greedy_vector)
    containment_vector = render_containment_vector(entries)
    if containment_vector:
        print()
        print(containment_vector)
    return 0


if __name__ == "__main__":
    sys.exit(main())
