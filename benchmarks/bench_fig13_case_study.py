"""Fig. 13 — case studies on Karate and the Bombing proxy.

Paper findings reproduced: 15 skyline vertices (44 %) on Karate,
20 (31 %) on Bombing (our proxy: 21, 33 %); skyline members have higher
average degree than dominated vertices.
"""

import pytest

from _datasets import dataset
from repro.core import filter_refine_sky

CASES = ("karate", "bombing_proxy")
PAPER_COUNTS = {"karate": 15, "bombing_proxy": 20}


@pytest.mark.parametrize("name", CASES)
def test_fig13_case_study(benchmark, figure_report, name):
    graph = dataset(name)
    result = benchmark.pedantic(
        filter_refine_sky, args=(graph,), rounds=1, iterations=1
    )
    inside = result.skyline_set
    outside = [u for u in graph.vertices() if u not in inside]
    avg_in = sum(graph.degree(u) for u in inside) / max(1, len(inside))
    avg_out = sum(graph.degree(u) for u in outside) / max(1, len(outside))

    report = figure_report(
        "Figure 13",
        "Case studies: skyline of Karate and Bombing",
        (
            "network",
            "n",
            "|R|",
            "R/n",
            "paper |R|",
            "avg deg in R",
            "avg deg outside",
        ),
    )
    report.add_row(
        name,
        graph.num_vertices,
        result.size,
        result.size / graph.num_vertices,
        PAPER_COUNTS[name],
        avg_in,
        avg_out,
    )
    if name == CASES[-1]:
        report.add_note(
            "expected shape: skyline clearly smaller than V; low-degree "
            "vertices dominated (avg degree in R > outside). karate is "
            "the real network and matches the paper exactly (15/34); "
            "bombing is a proxy (DESIGN.md §3)."
        )
