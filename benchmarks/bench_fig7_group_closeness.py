"""Fig. 7 (Exp-4) — Greedy++-style BaseGC vs NeiSkyGC, varying k.

One sub-table per dataset (the paper's Fig. 7a–e).  NeiSkyGC times
include computing the skyline.  Expected shape: both runtimes grow with
k; NeiSkyGC consistently faster (paper: 1.35–2.5×), because it evaluates
``k(2r − k + 1)/2`` marginal gains instead of ``k(2n − k + 1)/2``.

The lazy (CELF) engine rides along as a second comparison: the same
NeiSkyGC computation with ``strategy="lazy"`` — identical group and
gains, far fewer evaluations (the CSR kernels claim the rest of the
gap).  Wall times and evaluation counts for both schedules land in
``BENCH_skyline.json`` under ``bench="fig7_group_closeness"``.

Instances and the k-ladder are scaled as described in
``benchmarks/_datasets.py``.
"""

import time

import pytest

from _datasets import GROUP_K_VALUES, centrality_instance
from _greedy_bench import record_lazy
from repro.centrality import base_gc, neisky_gc
from repro.core import filter_refine_sky
from repro.harness.benchjson import bench_entry
from repro.workloads import TABLE1_NAMES

_RESULTS: dict[tuple[str, int], dict[str, float]] = {}

BENCH = "fig7_group_closeness"


def _record(figure_report, name, k, label, elapsed, evaluations):
    key = (name, k)
    _RESULTS.setdefault(key, {})[label] = elapsed
    _RESULTS[key][label + "_evals"] = evaluations
    row = _RESULTS[key]
    if "Greedy++" in row and "NeiSkyGC" in row:
        report = figure_report(
            "Figure 7",
            "Group closeness maximization: Greedy++ (BaseGC) vs NeiSkyGC",
            (
                "dataset",
                "k",
                "Greedy++ (s)",
                "NeiSkyGC (s)",
                "speedup",
                "base evals",
                "sky evals",
            ),
        )
        report.add_row(
            name,
            k,
            row["Greedy++"],
            row["NeiSkyGC"],
            row["Greedy++"] / row["NeiSkyGC"],
            int(row["Greedy++_evals"]),
            int(row["NeiSkyGC_evals"]),
        )


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("k", GROUP_K_VALUES)
def test_fig7_base_gc(benchmark, figure_report, bench_json, name, k):
    graph = centrality_instance(name)
    start = time.perf_counter()
    result = benchmark.pedantic(base_gc, args=(graph, k), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _record(figure_report, name, k, "Greedy++", elapsed, result.evaluations)
    bench_json(
        bench_entry(
            bench=BENCH,
            instance=name,
            algorithm=f"Greedy++(k={k})",
            wall_s=elapsed,
            extra={
                "k": k,
                "strategy": "eager",
                "evaluations": result.evaluations,
            },
        )
    )


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("k", GROUP_K_VALUES)
def test_fig7_neisky_gc(benchmark, figure_report, bench_json, name, k):
    graph = centrality_instance(name)

    def run():
        skyline = filter_refine_sky(graph).skyline
        return neisky_gc(graph, k, skyline=skyline)

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _record(figure_report, name, k, "NeiSkyGC", elapsed, result.evaluations)
    bench_json(
        bench_entry(
            bench=BENCH,
            instance=name,
            algorithm=f"NeiSkyGC(k={k})",
            wall_s=elapsed,
            extra={
                "k": k,
                "strategy": "eager",
                "evaluations": result.evaluations,
            },
        )
    )


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("k", GROUP_K_VALUES)
def test_fig7_lazy_gc(benchmark, figure_report, bench_json, name, k):
    # Same NeiSkyGC computation under the CELF schedule + CSR kernels;
    # the result is asserted identical before the timing is recorded.
    graph = centrality_instance(name)
    skyline = filter_refine_sky(graph).skyline
    eager = neisky_gc(graph, k, skyline=skyline)

    def run():
        # Recompute the skyline inside the timed body so the wall time
        # covers the same work as the eager NeiSkyGC benchmark.
        sky = filter_refine_sky(graph).skyline
        return neisky_gc(graph, k, skyline=sky, strategy="lazy")

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert result.group == eager.group
    assert result.gains == eager.gains
    record_lazy(
        figure_report,
        bench_json,
        _RESULTS,
        bench=BENCH,
        figure="Figure 7",
        instance=name,
        key=(name, k),
        label_args=(f"k={k}",),
        eager_label="NeiSkyGC",
        lazy_label="LazyNeiSkyGC",
        elapsed=elapsed,
        result=result,
    )
