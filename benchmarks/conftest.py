"""Benchmark-suite plumbing: figure reports and rendering.

Benchmark modules create one :class:`~repro.harness.runner.FigureReport`
each via the :func:`figure_report` fixture factory; at the end of the
session every populated report is written to ``benchmarks/reports/`` and
echoed into the terminal summary, so a full
``pytest benchmarks/ --benchmark-only`` run regenerates the paper's
tables and figures as text artifacts.
"""

from __future__ import annotations

import os
import sys

import pytest

# Make the shared dataset module importable as a plain module when
# pytest adds this directory to sys.path (rootdir-relative runs).
sys.path.insert(0, os.path.dirname(__file__))

from repro.harness.runner import FigureReport  # noqa: E402

_REPORTS: dict[str, FigureReport] = {}
REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def figure_report():
    """Factory: get-or-create the session-wide report for an artifact."""

    def get(artifact: str, title: str, headers) -> FigureReport:
        if artifact not in _REPORTS:
            _REPORTS[artifact] = FigureReport(
                artifact=artifact, title=title, headers=headers
            )
        return _REPORTS[artifact]

    return get


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    populated = [r for r in _REPORTS.values() if r.rows]
    if not populated:
        return
    terminalreporter.section("paper artifact reports")
    for report in sorted(populated, key=lambda r: r.artifact):
        path = report.write(REPORT_DIR)
        terminalreporter.write(report.render())
        terminalreporter.write_line(f"[written to {path}]")
        terminalreporter.write_line("")
