"""Benchmark-suite plumbing: figure reports and rendering.

Benchmark modules create one :class:`~repro.harness.runner.FigureReport`
each via the :func:`figure_report` fixture factory; at the end of the
session every populated report is written to ``benchmarks/reports/`` and
echoed into the terminal summary, so a full
``pytest benchmarks/ --benchmark-only`` run regenerates the paper's
tables and figures as text artifacts.
"""

from __future__ import annotations

import os
import sys

import pytest

# Make the shared dataset module importable as a plain module when
# pytest adds this directory to sys.path (rootdir-relative runs).
sys.path.insert(0, os.path.dirname(__file__))

from repro.harness.benchjson import (  # noqa: E402
    BENCH_FILENAME,
    write_bench_json,
)
from repro.harness.runner import FigureReport  # noqa: E402

_REPORTS: dict[str, FigureReport] = {}
_BENCH_ENTRIES: list[dict] = []
REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")
BENCH_JSON_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    BENCH_FILENAME,
)


@pytest.fixture(scope="session")
def figure_report():
    """Factory: get-or-create the session-wide report for an artifact."""

    def get(artifact: str, title: str, headers) -> FigureReport:
        if artifact not in _REPORTS:
            _REPORTS[artifact] = FigureReport(
                artifact=artifact, title=title, headers=headers
            )
        return _REPORTS[artifact]

    return get


@pytest.fixture(scope="session")
def bench_json():
    """Collector for machine-readable measurements.

    Benchmark modules append :func:`repro.harness.benchjson.bench_entry`
    records; the session summary merge-writes them into
    ``BENCH_skyline.json`` at the repository root.
    """

    def add(entry: dict) -> None:
        _BENCH_ENTRIES.append(entry)

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _BENCH_ENTRIES:
        write_bench_json(BENCH_JSON_PATH, _BENCH_ENTRIES)
        terminalreporter.write_line(
            f"[{len(_BENCH_ENTRIES)} benchmark entries merged into "
            f"{BENCH_JSON_PATH}]"
        )
        _BENCH_ENTRIES.clear()
    populated = [r for r in _REPORTS.values() if r.rows]
    if not populated:
        return
    terminalreporter.section("paper artifact reports")
    for report in sorted(populated, key=lambda r: r.artifact):
        path = report.write(REPORT_DIR)
        terminalreporter.write(report.render())
        terminalreporter.write_line(f"[written to {path}]")
        terminalreporter.write_line("")
