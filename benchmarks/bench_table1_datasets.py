"""Table I — dataset statistics (n, m, dmax) for the five stand-ins.

Regenerates the paper's Table I for the scaled stand-ins, with the
original statistics alongside for reference.  This "benchmark" times the
statistics pass itself (a linear scan), mostly so the table is produced
by the same ``pytest benchmarks/`` invocation as everything else.
"""

import pytest

from _datasets import dataset
from repro.graph.metrics import degree_assortativity, global_clustering
from repro.graph.stats import graph_stats
from repro.workloads import TABLE1_NAMES, spec


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_statistics(benchmark, figure_report, name):
    report = figure_report(
        "Table 1",
        "Datasets (scaled stand-ins; paper originals alongside)",
        (
            "dataset",
            "n",
            "m",
            "dmax",
            "clustering",
            "assortativity",
            "paper n",
            "paper m",
            "paper dmax",
        ),
    )
    graph = dataset(name)
    stats = benchmark.pedantic(
        graph_stats, args=(graph,), rounds=1, iterations=1
    )
    paper = spec(name).paper
    report.add_row(
        name,
        stats.num_vertices,
        stats.num_edges,
        stats.max_degree,
        global_clustering(graph),
        degree_assortativity(graph),
        paper.num_vertices,
        paper.num_edges,
        paper.max_degree,
    )
    report.add_note(
        "negative assortativity and nonzero clustering are the "
        "hub-satellite signatures the skyline results depend on."
    )
