"""CI data-plane smoke: both planes agree and leave no segments behind.

Plain script (no pytest) so CI can run it in seconds, on every matrix
leg:

* one-shot pooled refine on the pickle and shm planes, each asserted
  bit-for-bit identical to the sequential engine;
* one warm :class:`~repro.parallel.EngineSession` serving
  refine (cold) → refine (warm) → bitset refine (warm) → lazy greedy
  round 0 on the same pool, each result checked against its sequential
  reference and the cold/warm labels checked against the contract;
* segment hygiene after every block: the in-process plane registry is
  empty and (on Linux) no ``repro_*`` file survives in ``/dev/shm``.

Set ``REPRO_DATA_PLANE=pickle`` (or ``shm``) to pin every call to one
plane — CI uses the pickle pin on one leg so the fallback plane keeps
getting exercised end-to-end even on shm-capable runners.  On a host
without usable shared memory the shm blocks are skipped and the script
still passes on the pickle plane alone.

Usage::

    PYTHONPATH=src python benchmarks/smoke_shm.py [dataset ...]
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import sys

from repro.centrality.greedy import greedy_maximize
from repro.centrality.group_closeness_max import ClosenessObjective
from repro.core.counters import SkylineCounters
from repro.core.filter_refine import filter_refine_sky
from repro.parallel import EngineSession, live_segment_names, shm_available
from repro.parallel.engine import parallel_refine_sky
from repro.workloads import load

DEFAULT_INSTANCES = ("karate", "bombing_proxy")
SMOKE_K = 5


def _assert_no_residue(where: str) -> None:
    assert live_segment_names() == (), (
        f"{where}: plane registry still holds {live_segment_names()}"
    )
    leaked = glob.glob("/dev/shm/repro_*")
    assert not leaked, f"{where}: /dev/shm residue {leaked}"


def _planes() -> tuple[str, ...]:
    pinned = os.environ.get("REPRO_DATA_PLANE")
    if pinned:
        if pinned == "shm" and not shm_available():
            raise SystemExit(
                "REPRO_DATA_PLANE=shm but this host has no usable "
                "shared memory"
            )
        return (pinned,)
    return ("pickle", "shm") if shm_available() else ("pickle",)


def run(instances) -> None:
    planes = _planes()
    for name in instances:
        graph = load(name)
        seq_sky = filter_refine_sky(graph)
        seq_greedy = greedy_maximize(
            graph, SMOKE_K, ClosenessObjective(graph)
        )

        # One-shot pooled calls: each builds and tears down everything.
        for plane in planes:
            counters = SkylineCounters()
            result = parallel_refine_sky(
                graph,
                workers=2,
                small_graph_edges=0,
                counters=counters,
                data_plane=plane,
            )
            assert result.skyline == seq_sky.skyline, (name, plane)
            assert result.dominator == seq_sky.dominator, (name, plane)
            assert counters.extra["data_plane"] == plane, (name, plane)
            _assert_no_residue(f"{name}/one-shot/{plane}")

        # Warm session: one pool and one set of graph segments serving
        # a mixed refine/greedy stream.
        for plane in planes:
            labels = []
            with EngineSession(
                graph, workers=2, data_plane=plane
            ) as session:
                for refine in ("bloom", "bloom", "bitset"):
                    counters = SkylineCounters()
                    result = session.refine_sky(
                        small_graph_edges=0,
                        refine=refine,
                        density_fallback=False,
                        counters=counters,
                    )
                    assert result.skyline == seq_sky.skyline, (name, refine)
                    assert result.dominator == seq_sky.dominator, (
                        name,
                        refine,
                    )
                    labels.append(counters.extra["parallel_session"])
                counters = SkylineCounters()
                result = session.greedy_maximize(
                    SMOKE_K,
                    ClosenessObjective(graph),
                    small_graph_edges=0,
                    counters=counters,
                )
                assert result.group == seq_greedy.group, (name, plane)
                assert result.gains == seq_greedy.gains, (name, plane)
                labels.append(counters.extra["parallel_session"])
            if plane == "shm":
                # First pooled call spins the pool up; the rest reuse it.
                assert labels == ["cold", "warm", "warm", "warm"], labels
            else:
                # The pickle plane has no warm path: every call re-ships.
                assert labels == ["cold"] * 4, labels
            _assert_no_residue(f"{name}/session/{plane}")

        assert multiprocessing.active_children() == [], name
        print(
            f"{name}: planes {'/'.join(planes)} bit-for-bit sequential, "
            "zero segment residue"
        )


def main(argv) -> int:
    run(tuple(argv) or DEFAULT_INSTANCES)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
