"""Ablation — the bloom filter inside FilterRefineSky (DESIGN.md §5).

Not a paper figure; this sweeps the design choices the paper fixes:

* ``bits_per_element`` — filter width per neighbor (the paper derives a
  single width from dmax).  Narrow filters trade memory for false
  positives, every one of which costs an extra exact ``NBRcheck``.
* ``exact=False`` — the "approximate skyline" variant (paper Sec. III
  remark): skip NBRcheck and accept one-sided error.

The report shows runtime, false-positive counts and (for the
approximate variant) how many true skyline vertices were lost.
"""

import time

import pytest

from _datasets import dataset
from repro.core import SkylineCounters, filter_refine_sky

DATASET = "livejournal_sim"
BITS_PER_ELEMENT = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("bpe", BITS_PER_ELEMENT)
def test_ablation_bloom_width(benchmark, figure_report, bpe):
    graph = dataset(DATASET)
    counters = SkylineCounters()

    def run():
        counters.reset()
        return filter_refine_sky(
            graph, bits_per_element=bpe, counters=counters
        )

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    report = figure_report(
        "Ablation bloom",
        f"Bloom sizing and approximation inside FilterRefineSky "
        f"({DATASET})",
        (
            "variant",
            "time (s)",
            "|R|",
            "bloom rejects",
            "false positives",
            "nbr checks",
        ),
    )
    report.add_row(
        f"exact bpe={bpe}",
        elapsed,
        result.size,
        counters.bloom_subset_rejects + counters.bloom_member_rejects,
        counters.bloom_false_positives,
        counters.nbr_checks,
    )


@pytest.mark.parametrize("bpe", (1, 8))
def test_ablation_approximate_mode(benchmark, figure_report, bpe):
    graph = dataset(DATASET)
    exact_size = filter_refine_sky(graph).size
    counters = SkylineCounters()

    def run():
        counters.reset()
        return filter_refine_sky(
            graph, bits_per_element=bpe, exact=False, counters=counters
        )

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    report = figure_report(
        "Ablation bloom",
        f"Bloom sizing and approximation inside FilterRefineSky "
        f"({DATASET})",
        (
            "variant",
            "time (s)",
            "|R|",
            "bloom rejects",
            "false positives",
            "nbr checks",
        ),
    )
    report.add_row(
        f"approx bpe={bpe} (lost {exact_size - result.size})",
        elapsed,
        result.size,
        counters.bloom_subset_rejects + counters.bloom_member_rejects,
        counters.bloom_false_positives,
        counters.nbr_checks,
    )
