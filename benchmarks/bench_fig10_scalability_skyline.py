"""Fig. 10 (Exp-7) — scalability of BaseSky vs FilterRefineSky.

LiveJournal stand-in subsampled along two axes: vertex fraction ``n``
and edge fraction ``ρ``, at 20–100 %.  Expected shape: FilterRefineSky
grows smoothly and stays fastest; BaseSky grows more sharply.
"""

import time

import pytest

from _datasets import SCALING_FRACTIONS, scalability_instance
from repro.core import base_sky, filter_refine_sky

_RESULTS: dict[tuple[str, float], dict[str, float]] = {}


def _record(figure_report, axis, fraction, label, elapsed):
    key = (axis, fraction)
    _RESULTS.setdefault(key, {})[label] = elapsed
    row = _RESULTS[key]
    if "BaseSky" in row and "FilterRefineSky" in row:
        report = figure_report(
            "Figure 10",
            "Scalability of skyline computation on livejournal_sim",
            ("axis", "fraction", "BaseSky (s)", "FilterRefineSky (s)", "ratio"),
        )
        report.add_row(
            axis,
            fraction,
            row["BaseSky"],
            row["FilterRefineSky"],
            row["BaseSky"] / row["FilterRefineSky"],
        )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig10_base_sky(benchmark, figure_report, axis, fraction):
    graph = scalability_instance(axis, fraction)
    start = time.perf_counter()
    benchmark.pedantic(base_sky, args=(graph,), rounds=1, iterations=1)
    _record(figure_report, axis, fraction, "BaseSky", time.perf_counter() - start)


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig10_filter_refine(benchmark, figure_report, axis, fraction):
    graph = scalability_instance(axis, fraction)
    start = time.perf_counter()
    benchmark.pedantic(
        filter_refine_sky, args=(graph,), rounds=1, iterations=1
    )
    _record(
        figure_report,
        axis,
        fraction,
        "FilterRefineSky",
        time.perf_counter() - start,
    )
