"""Fig. 8 (Exp-5) — Greedy-H (BaseGH) vs NeiSkyGH, varying k.

Same structure as Fig. 7; expected speedup in the paper is 1.4–1.85×.
The lazy (CELF + CSR) schedule of the same NeiSkyGH computation rides
along, with wall times and evaluation counters recorded into
``BENCH_skyline.json`` under ``bench="fig8_group_harmonic"``.
"""

import time

import pytest

from _datasets import GROUP_K_VALUES, centrality_instance
from _greedy_bench import record_lazy
from repro.centrality import base_gh, neisky_gh
from repro.core import filter_refine_sky
from repro.harness.benchjson import bench_entry
from repro.workloads import TABLE1_NAMES

_RESULTS: dict[tuple[str, int], dict[str, float]] = {}

BENCH = "fig8_group_harmonic"


def _record(figure_report, name, k, label, elapsed, evaluations):
    key = (name, k)
    _RESULTS.setdefault(key, {})[label] = elapsed
    _RESULTS[key][label + "_evals"] = evaluations
    row = _RESULTS[key]
    if "Greedy-H" in row and "NeiSkyGH" in row:
        report = figure_report(
            "Figure 8",
            "Group harmonic maximization: Greedy-H (BaseGH) vs NeiSkyGH",
            ("dataset", "k", "Greedy-H (s)", "NeiSkyGH (s)", "speedup"),
        )
        report.add_row(
            name,
            k,
            row["Greedy-H"],
            row["NeiSkyGH"],
            row["Greedy-H"] / row["NeiSkyGH"],
        )


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("k", GROUP_K_VALUES)
def test_fig8_base_gh(benchmark, figure_report, bench_json, name, k):
    graph = centrality_instance(name)
    start = time.perf_counter()
    result = benchmark.pedantic(base_gh, args=(graph, k), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _record(figure_report, name, k, "Greedy-H", elapsed, result.evaluations)
    bench_json(
        bench_entry(
            bench=BENCH,
            instance=name,
            algorithm=f"Greedy-H(k={k})",
            wall_s=elapsed,
            extra={
                "k": k,
                "strategy": "eager",
                "evaluations": result.evaluations,
            },
        )
    )


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("k", GROUP_K_VALUES)
def test_fig8_neisky_gh(benchmark, figure_report, bench_json, name, k):
    graph = centrality_instance(name)

    def run():
        skyline = filter_refine_sky(graph).skyline
        return neisky_gh(graph, k, skyline=skyline)

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _record(figure_report, name, k, "NeiSkyGH", elapsed, result.evaluations)
    bench_json(
        bench_entry(
            bench=BENCH,
            instance=name,
            algorithm=f"NeiSkyGH(k={k})",
            wall_s=elapsed,
            extra={
                "k": k,
                "strategy": "eager",
                "evaluations": result.evaluations,
            },
        )
    )


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("k", GROUP_K_VALUES)
def test_fig8_lazy_gh(benchmark, figure_report, bench_json, name, k):
    # Same NeiSkyGH computation under the CELF schedule + CSR kernels;
    # the result is asserted identical before the timing is recorded.
    graph = centrality_instance(name)
    skyline = filter_refine_sky(graph).skyline
    eager = neisky_gh(graph, k, skyline=skyline)

    def run():
        # Recompute the skyline inside the timed body so the wall time
        # covers the same work as the eager NeiSkyGH benchmark.
        sky = filter_refine_sky(graph).skyline
        return neisky_gh(graph, k, skyline=sky, strategy="lazy")

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert result.group == eager.group
    assert result.gains == eager.gains
    record_lazy(
        figure_report,
        bench_json,
        _RESULTS,
        bench=BENCH,
        figure="Figure 8",
        instance=name,
        key=(name, k),
        label_args=(f"k={k}",),
        eager_label="NeiSkyGH",
        lazy_label="LazyNeiSkyGH",
        elapsed=elapsed,
        result=result,
    )
