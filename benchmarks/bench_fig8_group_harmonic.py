"""Fig. 8 (Exp-5) — Greedy-H (BaseGH) vs NeiSkyGH, varying k.

Same structure as Fig. 7; expected speedup in the paper is 1.4–1.85×.
"""

import time

import pytest

from _datasets import GROUP_K_VALUES, centrality_instance
from repro.centrality import base_gh, neisky_gh
from repro.core import filter_refine_sky
from repro.workloads import TABLE1_NAMES

_RESULTS: dict[tuple[str, int], dict[str, float]] = {}


def _record(figure_report, name, k, label, elapsed):
    key = (name, k)
    _RESULTS.setdefault(key, {})[label] = elapsed
    row = _RESULTS[key]
    if "Greedy-H" in row and "NeiSkyGH" in row:
        report = figure_report(
            "Figure 8",
            "Group harmonic maximization: Greedy-H (BaseGH) vs NeiSkyGH",
            ("dataset", "k", "Greedy-H (s)", "NeiSkyGH (s)", "speedup"),
        )
        report.add_row(
            name,
            k,
            row["Greedy-H"],
            row["NeiSkyGH"],
            row["Greedy-H"] / row["NeiSkyGH"],
        )


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("k", GROUP_K_VALUES)
def test_fig8_base_gh(benchmark, figure_report, name, k):
    graph = centrality_instance(name)
    start = time.perf_counter()
    benchmark.pedantic(base_gh, args=(graph, k), rounds=1, iterations=1)
    _record(figure_report, name, k, "Greedy-H", time.perf_counter() - start)


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("k", GROUP_K_VALUES)
def test_fig8_neisky_gh(benchmark, figure_report, name, k):
    graph = centrality_instance(name)

    def run():
        skyline = filter_refine_sky(graph).skyline
        return neisky_gh(graph, k, skyline=skyline)

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    _record(figure_report, name, k, "NeiSkyGH", time.perf_counter() - start)
