"""Fig. 12 (Exp-7) — scalability of Greedy-H (BaseGH) vs NeiSkyGH.

Same protocol as Fig. 11 with the harmonic objective.
"""

import time

import pytest

from _datasets import (
    GROUP_K_DEFAULT,
    SCALING_FRACTIONS,
    scalability_centrality_instance,
)
from repro.centrality import base_gh, neisky_gh
from repro.core import filter_refine_sky

_RESULTS: dict[tuple[str, float], dict[str, float]] = {}


def _record(figure_report, axis, fraction, label, elapsed):
    key = (axis, fraction)
    _RESULTS.setdefault(key, {})[label] = elapsed
    row = _RESULTS[key]
    if "Greedy-H" in row and "NeiSkyGH" in row:
        report = figure_report(
            "Figure 12",
            f"Scalability of group harmonic (k={GROUP_K_DEFAULT}) "
            "on livejournal_sim",
            ("axis", "fraction", "Greedy-H (s)", "NeiSkyGH (s)", "speedup"),
        )
        report.add_row(
            axis,
            fraction,
            row["Greedy-H"],
            row["NeiSkyGH"],
            row["Greedy-H"] / row["NeiSkyGH"],
        )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig12_base_gh(benchmark, figure_report, axis, fraction):
    graph = scalability_centrality_instance(axis, fraction)
    start = time.perf_counter()
    benchmark.pedantic(
        base_gh, args=(graph, GROUP_K_DEFAULT), rounds=1, iterations=1
    )
    _record(figure_report, axis, fraction, "Greedy-H", time.perf_counter() - start)


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig12_neisky_gh(benchmark, figure_report, axis, fraction):
    graph = scalability_centrality_instance(axis, fraction)

    def run():
        skyline = filter_refine_sky(graph).skyline
        return neisky_gh(graph, GROUP_K_DEFAULT, skyline=skyline)

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    _record(figure_report, axis, fraction, "NeiSkyGH", time.perf_counter() - start)
