"""Fig. 12 (Exp-7) — scalability of Greedy-H (BaseGH) vs NeiSkyGH.

Same protocol as Fig. 11 with the harmonic objective, including the
lazy (CELF + CSR) rider recorded under
``bench="fig12_scalability_gh"``.
"""

import time

import pytest

from _datasets import (
    GROUP_K_DEFAULT,
    SCALING_FRACTIONS,
    scalability_centrality_instance,
)
from _greedy_bench import record_lazy
from repro.centrality import base_gh, neisky_gh
from repro.core import filter_refine_sky
from repro.harness.benchjson import bench_entry

BENCH = "fig12_scalability_gh"

_RESULTS: dict[tuple[str, float], dict[str, float]] = {}


def _record(figure_report, axis, fraction, label, elapsed):
    key = (axis, fraction)
    _RESULTS.setdefault(key, {})[label] = elapsed
    row = _RESULTS[key]
    if "Greedy-H" in row and "NeiSkyGH" in row:
        report = figure_report(
            "Figure 12",
            f"Scalability of group harmonic (k={GROUP_K_DEFAULT}) "
            "on livejournal_sim",
            ("axis", "fraction", "Greedy-H (s)", "NeiSkyGH (s)", "speedup"),
        )
        report.add_row(
            axis,
            fraction,
            row["Greedy-H"],
            row["NeiSkyGH"],
            row["Greedy-H"] / row["NeiSkyGH"],
        )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig12_base_gh(benchmark, figure_report, axis, fraction):
    graph = scalability_centrality_instance(axis, fraction)
    start = time.perf_counter()
    benchmark.pedantic(
        base_gh, args=(graph, GROUP_K_DEFAULT), rounds=1, iterations=1
    )
    _record(figure_report, axis, fraction, "Greedy-H", time.perf_counter() - start)


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig12_neisky_gh(benchmark, figure_report, bench_json, axis, fraction):
    graph = scalability_centrality_instance(axis, fraction)

    def run():
        skyline = filter_refine_sky(graph).skyline
        return neisky_gh(graph, GROUP_K_DEFAULT, skyline=skyline)

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _record(figure_report, axis, fraction, "NeiSkyGH", elapsed)
    _RESULTS[(axis, fraction)]["NeiSkyGH_evals"] = result.evaluations
    bench_json(
        bench_entry(
            bench=BENCH,
            instance=f"livejournal_sim[{axis}={fraction}]",
            algorithm=f"NeiSkyGH(k={GROUP_K_DEFAULT})",
            wall_s=elapsed,
            extra={
                "strategy": "eager",
                "evaluations": result.evaluations,
            },
        )
    )


@pytest.mark.parametrize("axis", ("n", "rho"))
@pytest.mark.parametrize("fraction", SCALING_FRACTIONS)
def test_fig12_lazy_gh(benchmark, figure_report, bench_json, axis, fraction):
    # Same NeiSkyGH computation under the CELF schedule + CSR kernels;
    # the result is asserted identical before the timing is recorded.
    graph = scalability_centrality_instance(axis, fraction)
    skyline = filter_refine_sky(graph).skyline
    eager = neisky_gh(graph, GROUP_K_DEFAULT, skyline=skyline)

    def run():
        sky = filter_refine_sky(graph).skyline
        return neisky_gh(
            graph, GROUP_K_DEFAULT, skyline=sky, strategy="lazy"
        )

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert result.group == eager.group
    assert result.gains == eager.gains
    record_lazy(
        figure_report,
        bench_json,
        _RESULTS,
        bench=BENCH,
        figure="Figure 12",
        instance=f"livejournal_sim[{axis}={fraction}]",
        key=(axis, fraction),
        label_args=(f"k={GROUP_K_DEFAULT}",),
        eager_label="NeiSkyGH",
        lazy_label="LazyNeiSkyGH",
        elapsed=elapsed,
        result=result,
    )
