"""Fig. 3 (Exp-1) — runtime of the five skyline algorithms.

Paper shape to reproduce: FilterRefineSky is the fastest (or tied with
BaseCSet — see the note below), BaseSky is 4–35× slower, Base2Hop pays
heavily for materializing the 2-hop lists, LC-Join sits in between.

Note recorded with the report: the paper's FilterRefineSky-vs-BaseCSet
gap comes from word-level bitset constants that a Python interpreter
flattens (both algorithms enumerate the same (v, w) incidences); the
pairs with *asymptotic* differences — FilterRefineSky vs BaseSky and vs
Base2Hop — reproduce cleanly.
"""

import time

import pytest

from _datasets import dataset
from repro.core import (
    base_cset_sky,
    base_sky,
    base_two_hop_sky,
    filter_refine_sky,
    lc_join_sky,
)
from repro.workloads import TABLE1_NAMES

ALGORITHMS = (
    ("LC-Join", lc_join_sky),
    ("BaseSky", base_sky),
    ("Base2Hop", base_two_hop_sky),
    ("BaseCSet", base_cset_sky),
    ("FilterRefineSky", filter_refine_sky),
)

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("algo_name,algo", ALGORITHMS, ids=[a for a, _ in ALGORITHMS])
def test_fig3_runtime(benchmark, figure_report, name, algo_name, algo):
    graph = dataset(name)
    start = time.perf_counter()
    result = benchmark.pedantic(algo, args=(graph,), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _RESULTS.setdefault(name, {})[algo_name] = elapsed
    benchmark.extra_info["skyline_size"] = result.size

    per_dataset = _RESULTS[name]
    if len(per_dataset) == len(ALGORITHMS):
        report = figure_report(
            "Figure 3",
            "Runtime (s) of neighborhood skyline computation algorithms",
            ("dataset",) + tuple(a for a, _ in ALGORITHMS) + ("BaseSky/FRS",),
        )
        report.add_row(
            name,
            *(per_dataset[a] for a, _ in ALGORITHMS),
            per_dataset["BaseSky"] / per_dataset["FilterRefineSky"],
        )
        if len(_RESULTS) == len(TABLE1_NAMES):
            report.add_note(
                "expected shape: FilterRefineSky ≈ BaseCSet fastest; "
                "BaseSky and Base2Hop several times slower (paper: 4-35x "
                "for BaseSky); the paper's FRS-vs-CSet constant-factor gap "
                "is a bitset effect that the Python interpreter flattens."
            )
