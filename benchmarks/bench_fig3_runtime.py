"""Fig. 3 (Exp-1) — runtime of the skyline algorithms.

Paper shape to reproduce: FilterRefineSky is the fastest (or tied with
BaseCSet — see the note below), BaseSky is 4–35× slower, Base2Hop pays
heavily for materializing the 2-hop lists, LC-Join sits in between.
The packed-bitset variant (not in the paper) rides along as a sixth
column: same output, word-parallel refine kernel.

Note recorded with the report: the paper's FilterRefineSky-vs-BaseCSet
gap comes from word-level bitset constants that a Python interpreter
flattens (both algorithms enumerate the same (v, w) incidences); the
pairs with *asymptotic* differences — FilterRefineSky vs BaseSky and vs
Base2Hop — reproduce cleanly.

Every row also lands in ``BENCH_skyline.json`` (via the ``bench_json``
fixture) with the algorithm's work counters; for the filter+refine
family the refine-phase time (wall minus the dataset's measured
filter-phase time) is recorded alongside.
"""

import time

import pytest

from _datasets import dataset
from repro.core import (
    SkylineCounters,
    base_cset_sky,
    base_sky,
    base_two_hop_sky,
    filter_refine_bitset_sky,
    filter_refine_sky,
    lc_join_sky,
)
from repro.core.filter_phase import filter_phase
from repro.harness.benchjson import bench_entry
from repro.workloads import TABLE1_NAMES

ALGORITHMS = (
    ("LC-Join", lc_join_sky),
    ("BaseSky", base_sky),
    ("Base2Hop", base_two_hop_sky),
    ("BaseCSet", base_cset_sky),
    ("FilterRefineSky", filter_refine_sky),
    ("FilterRefineSkyBitset", filter_refine_bitset_sky),
)

#: Algorithms whose wall time decomposes as filter + refine.
FILTER_REFINE_FAMILY = frozenset(
    {"FilterRefineSky", "FilterRefineSkyBitset"}
)

_RESULTS: dict[str, dict[str, float]] = {}
_FILTER_TIMES: dict[str, float] = {}


def _filter_time(name, graph) -> float:
    if name not in _FILTER_TIMES:
        start = time.perf_counter()
        filter_phase(graph)
        _FILTER_TIMES[name] = time.perf_counter() - start
    return _FILTER_TIMES[name]


@pytest.mark.parametrize("name", TABLE1_NAMES)
@pytest.mark.parametrize("algo_name,algo", ALGORITHMS, ids=[a for a, _ in ALGORITHMS])
def test_fig3_runtime(benchmark, figure_report, bench_json, name, algo_name, algo):
    graph = dataset(name)
    start = time.perf_counter()
    result = benchmark.pedantic(algo, args=(graph,), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _RESULTS.setdefault(name, {})[algo_name] = elapsed
    benchmark.extra_info["skyline_size"] = result.size

    counters = SkylineCounters()
    algo(graph, counters=counters)
    refine_s = None
    if algo_name in FILTER_REFINE_FAMILY:
        refine_s = max(elapsed - _filter_time(name, graph), 0.0)
    bench_json(
        bench_entry(
            bench="fig3_runtime",
            instance=name,
            algorithm=algo_name,
            wall_s=elapsed,
            refine_s=refine_s,
            counters=counters.as_dict(),
            extra={"skyline_size": result.size, **counters.extra},
        )
    )

    per_dataset = _RESULTS[name]
    if len(per_dataset) == len(ALGORITHMS):
        report = figure_report(
            "Figure 3",
            "Runtime (s) of neighborhood skyline computation algorithms",
            ("dataset",) + tuple(a for a, _ in ALGORITHMS) + ("BaseSky/FRS",),
        )
        report.add_row(
            name,
            *(per_dataset[a] for a, _ in ALGORITHMS),
            per_dataset["BaseSky"] / per_dataset["FilterRefineSky"],
        )
        if len(_RESULTS) == len(TABLE1_NAMES):
            report.add_note(
                "expected shape: FilterRefineSky ≈ BaseCSet fastest; "
                "BaseSky and Base2Hop several times slower (paper: 4-35x "
                "for BaseSky); the paper's FRS-vs-CSet constant-factor gap "
                "is a bitset effect that the Python interpreter flattens. "
                "FilterRefineSkyBitset (not in the paper) replaces the "
                "bloom refine kernel with packed-word AND-NOT tests."
            )
