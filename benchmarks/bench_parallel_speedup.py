"""Refine-phase speedup: parallel engine and bitset kernel vs the baseline.

For every registry dataset of Table I:

* time sequential FilterRefineSky (bloom refine) and the parallel
  engine at 2 and 4 workers (pool forced on, so the numbers include
  snapshot pickling, pool spin-up and result merging);
* time sequential FilterRefineSkyBitset and the parallel engine with
  ``refine="bitset"`` at the same worker counts;
* subtract the shared filter-phase cost and report refine-phase
  speedups — workers vs sequential, and bitset vs bloom.

The safety net rides along: each result is asserted bit-for-bit equal
to the sequential bloom output before its time is recorded.  Every
measurement also lands in ``BENCH_skyline.json``; the sequential bitset
entry carries ``extra["refine_speedup_vs_bloom"]``, the number the
README table quotes.

Honest-measurement note: the parallel speedup ceiling is the host's
usable CPU count (recorded in the report footer).  On a single-core
container the parallel rows measure pure engine overhead and land below
1.0×.  The bitset-vs-bloom ratio is hardware-independent but *input*
dependent: it grows with the non-candidate fraction the kernel never
iterates, and can drop below 1.0× on candidate-dense instances where
packing and group setup outweigh the cheaper pair tests.
"""

import os
import time

import pytest

from _datasets import dataset
from repro.core.bitset_refine import filter_refine_bitset_sky
from repro.core.filter_phase import filter_phase
from repro.core.filter_refine import filter_refine_sky
from repro.harness.benchjson import bench_entry
from repro.parallel import default_worker_count, parallel_refine_sky
from repro.workloads import TABLE1_NAMES

WORKER_COUNTS = (2, 4)


def _best_of(runs, fn):
    elapsed = []
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed), result


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_parallel_speedup(figure_report, bench_json, name):
    graph = dataset(name)
    t_filter, _ = _best_of(2, lambda: filter_phase(graph))
    t_seq, seq = _best_of(2, lambda: filter_refine_sky(graph))
    refine_seq = max(t_seq - t_filter, 1e-9)
    bench_json(
        bench_entry(
            bench="parallel_speedup",
            instance=name,
            algorithm="FilterRefineSky",
            wall_s=t_seq,
            refine_s=refine_seq,
        )
    )

    row = [name, graph.num_vertices, graph.num_edges, refine_seq]
    for workers in WORKER_COUNTS:
        t_par, par = _best_of(
            2,
            lambda w=workers: parallel_refine_sky(
                graph, workers=w, small_graph_edges=0
            ),
        )
        assert par.skyline == seq.skyline
        assert par.dominator == seq.dominator
        refine_par = max(t_par - t_filter, 1e-9)
        row.extend([refine_par, refine_seq / refine_par])
        bench_json(
            bench_entry(
                bench="parallel_speedup",
                instance=name,
                algorithm=f"FilterRefineSkyParallel(bloom,{workers}w)",
                wall_s=t_par,
                refine_s=refine_par,
                extra={
                    "workers": workers,
                    "refine": "bloom",
                    "refine_speedup_vs_seq": refine_seq / refine_par,
                },
            )
        )

    report = figure_report(
        "Parallel speedup",
        "Refine-phase time (s) and speedup of filter_refine_parallel",
        (
            "dataset",
            "n",
            "m",
            "refine seq",
            "refine 2w",
            "speedup 2w",
            "refine 4w",
            "speedup 4w",
        ),
    )
    report.add_row(*row)
    report.add_note(
        f"host exposes {default_worker_count()} usable CPU(s) "
        f"(os.cpu_count()={os.cpu_count()}); speedup is capped by that "
        "ceiling — single-core hosts measure pure pool overhead. Parallel "
        "times include CSR snapshot pickling, pool spin-up and per-worker "
        "bloom-index rebuilds. Every parallel result was asserted "
        "bit-for-bit equal to the sequential output before timing was "
        "recorded."
    )

    # ------------------------------------------------------------------
    # Bitset kernel: sequential and parallel, same safety net.
    # ------------------------------------------------------------------
    # density_fallback=False: this table measures the packed kernel
    # itself, including the candidate-dense instances the production
    # heuristic routes to bloom (that 0.85x row is the calibration).
    t_bit, bit = _best_of(
        3, lambda: filter_refine_bitset_sky(graph, density_fallback=False)
    )
    assert bit.skyline == seq.skyline
    assert bit.dominator == seq.dominator
    refine_bit = max(t_bit - t_filter, 1e-9)
    ratio = refine_seq / refine_bit
    bench_json(
        bench_entry(
            bench="parallel_speedup",
            instance=name,
            algorithm="FilterRefineSkyBitset",
            wall_s=t_bit,
            refine_s=refine_bit,
            extra={"refine_speedup_vs_bloom": ratio},
        )
    )

    bit_row = [name, refine_seq, refine_bit, ratio]
    for workers in WORKER_COUNTS:
        t_par, par = _best_of(
            2,
            lambda w=workers: parallel_refine_sky(
                graph,
                workers=w,
                small_graph_edges=0,
                refine="bitset",
                density_fallback=False,
            ),
        )
        assert par.skyline == seq.skyline
        assert par.dominator == seq.dominator
        refine_par = max(t_par - t_filter, 1e-9)
        bit_row.extend([refine_par, refine_bit / refine_par])
        bench_json(
            bench_entry(
                bench="parallel_speedup",
                instance=name,
                algorithm=f"FilterRefineSkyParallel(bitset,{workers}w)",
                wall_s=t_par,
                refine_s=refine_par,
                extra={
                    "workers": workers,
                    "refine": "bitset",
                    "refine_speedup_vs_seq": refine_bit / refine_par,
                },
            )
        )

    bit_report = figure_report(
        "Bitset refine speedup",
        "Refine-phase time (s): packed-bitset kernel vs bloom baseline",
        (
            "dataset",
            "refine bloom",
            "refine bitset",
            "bitset/bloom x",
            "bitset 2w",
            "speedup 2w",
            "bitset 4w",
            "speedup 4w",
        ),
    )
    bit_report.add_row(*bit_row)
    bit_report.add_note(
        "bitset/bloom x is the sequential refine-phase ratio (>1 means "
        "the packed kernel wins); it rises with the non-candidate "
        "fraction of the 2-hop lists and can fall below 1.0 on "
        "candidate-dense instances (e.g. dblp_sim at ~48% candidates) "
        "where packing + group setup outweigh the cheaper pair tests. "
        "Worker speedups are relative to the sequential bitset run."
    )
