"""Refine-phase speedup of the parallel engine over the sequential baseline.

For every registry dataset of Table I: time sequential FilterRefineSky,
time the parallel engine at 2 and 4 workers (pool forced on, so the
numbers include snapshot pickling, pool spin-up and result merging),
subtract the shared filter-phase cost, and report the refine-phase
speedup.  The safety net rides along: each parallel result is asserted
bit-for-bit equal to the sequential one before its time is recorded.

Honest-measurement note: the speedup ceiling is the host's usable CPU
count (recorded in the report footer).  On a single-core container the
parallel rows measure pure engine overhead and land below 1.0×.
"""

import os
import time

import pytest

from _datasets import dataset
from repro.core.filter_phase import filter_phase
from repro.core.filter_refine import filter_refine_sky
from repro.parallel import default_worker_count, parallel_refine_sky
from repro.workloads import TABLE1_NAMES

WORKER_COUNTS = (2, 4)


def _best_of(runs, fn):
    elapsed = []
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed), result


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_parallel_speedup(figure_report, name):
    graph = dataset(name)
    t_filter, _ = _best_of(2, lambda: filter_phase(graph))
    t_seq, seq = _best_of(2, lambda: filter_refine_sky(graph))
    refine_seq = max(t_seq - t_filter, 1e-9)

    row = [name, graph.num_vertices, graph.num_edges, refine_seq]
    for workers in WORKER_COUNTS:
        t_par, par = _best_of(
            2,
            lambda w=workers: parallel_refine_sky(
                graph, workers=w, small_graph_edges=0
            ),
        )
        assert par.skyline == seq.skyline
        assert par.dominator == seq.dominator
        refine_par = max(t_par - t_filter, 1e-9)
        row.extend([refine_par, refine_seq / refine_par])

    report = figure_report(
        "Parallel speedup",
        "Refine-phase time (s) and speedup of filter_refine_parallel",
        (
            "dataset",
            "n",
            "m",
            "refine seq",
            "refine 2w",
            "speedup 2w",
            "refine 4w",
            "speedup 4w",
        ),
    )
    report.add_row(*row)
    report.add_note(
        f"host exposes {default_worker_count()} usable CPU(s) "
        f"(os.cpu_count()={os.cpu_count()}); speedup is capped by that "
        "ceiling — single-core hosts measure pure pool overhead. Parallel "
        "times include CSR snapshot pickling, pool spin-up and per-worker "
        "bloom-index rebuilds. Every parallel result was asserted "
        "bit-for-bit equal to the sequential output before timing was "
        "recorded."
    )
