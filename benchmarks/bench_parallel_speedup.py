"""Refine-phase speedup: parallel engine and bitset kernel vs the baseline.

For every registry dataset of Table I:

* time sequential FilterRefineSky (bloom refine) and the parallel
  engine at 2 and 4 workers (pool forced on, so the numbers include
  snapshot pickling, pool spin-up and result merging);
* time sequential FilterRefineSkyBitset and the parallel engine with
  ``refine="bitset"`` at the same worker counts;
* subtract the shared filter-phase cost and report refine-phase
  speedups — workers vs sequential, and bitset vs bloom.

The safety net rides along: each result is asserted bit-for-bit equal
to the sequential bloom output before its time is recorded.  Every
measurement also lands in ``BENCH_skyline.json``; the sequential bitset
entry carries ``extra["refine_speedup_vs_bloom"]``, the number the
README table quotes.

Honest-measurement note: the parallel speedup ceiling is the host's
usable CPU count (recorded in the report footer).  On a single-core
container the parallel rows measure pure engine overhead and land below
1.0×.  The bitset-vs-bloom ratio is hardware-independent but *input*
dependent: it grows with the non-candidate fraction the kernel never
iterates, and can drop below 1.0× on candidate-dense instances where
packing and group setup outweigh the cheaper pair tests.
"""

import os
import time

import pytest

from _datasets import dataset
from repro.core.bitset_refine import filter_refine_bitset_sky
from repro.core.counters import SkylineCounters
from repro.core.filter_phase import filter_phase
from repro.core.filter_refine import filter_refine_sky
from repro.harness.benchjson import bench_entry
from repro.parallel import (
    EngineSession,
    default_worker_count,
    parallel_refine_sky,
    shm_available,
)
from repro.workloads import TABLE1_NAMES

WORKER_COUNTS = (2, 4)


def _best_of(runs, fn):
    elapsed = []
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed), result


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_parallel_speedup(figure_report, bench_json, name):
    graph = dataset(name)
    t_filter, _ = _best_of(2, lambda: filter_phase(graph))
    t_seq, seq = _best_of(2, lambda: filter_refine_sky(graph))
    refine_seq = max(t_seq - t_filter, 1e-9)
    bench_json(
        bench_entry(
            bench="parallel_speedup",
            instance=name,
            algorithm="FilterRefineSky",
            wall_s=t_seq,
            refine_s=refine_seq,
        )
    )

    row = [name, graph.num_vertices, graph.num_edges, refine_seq]
    for workers in WORKER_COUNTS:
        t_par, par = _best_of(
            2,
            lambda w=workers: parallel_refine_sky(
                graph, workers=w, small_graph_edges=0
            ),
        )
        assert par.skyline == seq.skyline
        assert par.dominator == seq.dominator
        refine_par = max(t_par - t_filter, 1e-9)
        row.extend([refine_par, refine_seq / refine_par])
        bench_json(
            bench_entry(
                bench="parallel_speedup",
                instance=name,
                algorithm=f"FilterRefineSkyParallel(bloom,{workers}w)",
                wall_s=t_par,
                refine_s=refine_par,
                extra={
                    "workers": workers,
                    "refine": "bloom",
                    "refine_speedup_vs_seq": refine_seq / refine_par,
                },
            )
        )

    report = figure_report(
        "Parallel speedup",
        "Refine-phase time (s) and speedup of filter_refine_parallel",
        (
            "dataset",
            "n",
            "m",
            "refine seq",
            "refine 2w",
            "speedup 2w",
            "refine 4w",
            "speedup 4w",
        ),
    )
    report.add_row(*row)
    report.add_note(
        f"host exposes {default_worker_count()} usable CPU(s) "
        f"(os.cpu_count()={os.cpu_count()}); speedup is capped by that "
        "ceiling — single-core hosts measure pure pool overhead. Parallel "
        "times include CSR snapshot pickling, pool spin-up and per-worker "
        "bloom-index rebuilds. Every parallel result was asserted "
        "bit-for-bit equal to the sequential output before timing was "
        "recorded."
    )

    # ------------------------------------------------------------------
    # Bitset kernel: sequential and parallel, same safety net.
    # ------------------------------------------------------------------
    # density_fallback=False: this table measures the packed kernel
    # itself, including the candidate-dense instances the production
    # heuristic routes to bloom (that 0.85x row is the calibration).
    t_bit, bit = _best_of(
        3, lambda: filter_refine_bitset_sky(graph, density_fallback=False)
    )
    assert bit.skyline == seq.skyline
    assert bit.dominator == seq.dominator
    refine_bit = max(t_bit - t_filter, 1e-9)
    ratio = refine_seq / refine_bit
    bench_json(
        bench_entry(
            bench="parallel_speedup",
            instance=name,
            algorithm="FilterRefineSkyBitset",
            wall_s=t_bit,
            refine_s=refine_bit,
            extra={"refine_speedup_vs_bloom": ratio},
        )
    )

    bit_row = [name, refine_seq, refine_bit, ratio]
    for workers in WORKER_COUNTS:
        t_par, par = _best_of(
            2,
            lambda w=workers: parallel_refine_sky(
                graph,
                workers=w,
                small_graph_edges=0,
                refine="bitset",
                density_fallback=False,
            ),
        )
        assert par.skyline == seq.skyline
        assert par.dominator == seq.dominator
        refine_par = max(t_par - t_filter, 1e-9)
        bit_row.extend([refine_par, refine_bit / refine_par])
        bench_json(
            bench_entry(
                bench="parallel_speedup",
                instance=name,
                algorithm=f"FilterRefineSkyParallel(bitset,{workers}w)",
                wall_s=t_par,
                refine_s=refine_par,
                extra={
                    "workers": workers,
                    "refine": "bitset",
                    "refine_speedup_vs_seq": refine_bit / refine_par,
                },
            )
        )

    bit_report = figure_report(
        "Bitset refine speedup",
        "Refine-phase time (s): packed-bitset kernel vs bloom baseline",
        (
            "dataset",
            "refine bloom",
            "refine bitset",
            "bitset/bloom x",
            "bitset 2w",
            "speedup 2w",
            "bitset 4w",
            "speedup 4w",
        ),
    )
    bit_report.add_row(*bit_row)
    bit_report.add_note(
        "bitset/bloom x is the sequential refine-phase ratio (>1 means "
        "the packed kernel wins); it rises with the non-candidate "
        "fraction of the 2-hop lists and can fall below 1.0 on "
        "candidate-dense instances (e.g. dblp_sim at ~48% candidates) "
        "where packing + group setup outweigh the cheaper pair tests. "
        "Worker speedups are relative to the sequential bitset run."
    )


# ----------------------------------------------------------------------
# Data plane: payload ship + pool spin-up, pickle vs shm, cold vs warm.
# ----------------------------------------------------------------------

DATA_PLANE_INSTANCE = "wikitalk_sim"
DATA_PLANE_WORKERS = 4
#: Acceptance bar: a warm shm-session call's per-call setup must be at
#: least this many times cheaper than a cold pickle call's.
MIN_WARM_SETUP_SPEEDUP = 5.0


@pytest.mark.skipif(
    not shm_available(), reason="no usable shared memory on this host"
)
def test_data_plane_overhead(figure_report, bench_json):
    """Setup cost of every (plane, pool temperature) serving mode.

    A *cold* call pays pool spin-up plus payload shipping (full CSR
    pickle, or segment publish for shm) on every invocation; a *warm*
    session call reuses the pool and the published graph segments, so
    its only per-call plane work is publishing the small call-scoped
    blobs (candidates, dominated flags, bit-matrix rows).  Setup
    overhead is separated from compute by subtracting the best warm
    wall time — the steady-state floor where the pool and graph bytes
    already sit in place.
    """
    graph = dataset(DATA_PLANE_INSTANCE)
    workers = DATA_PLANE_WORKERS
    seq = filter_refine_sky(graph)

    def pooled(**kw):
        result = parallel_refine_sky(
            graph, workers=workers, small_graph_edges=0, **kw
        )
        assert result.skyline == seq.skyline
        assert result.dominator == seq.dominator
        return result

    t_cold_pickle, _ = _best_of(3, lambda: pooled(data_plane="pickle"))
    t_cold_shm, _ = _best_of(3, lambda: pooled(data_plane="shm"))

    warm_walls = []
    warm_publish = []
    with EngineSession(graph, workers=workers, data_plane="shm") as session:
        pooled(session=session)  # cold first call builds pool + segments
        for _ in range(4):
            counters = SkylineCounters()
            start = time.perf_counter()
            pooled(session=session, counters=counters)
            warm_walls.append(time.perf_counter() - start)
            assert counters.extra["parallel_session"] == "warm"
            warm_publish.append(counters.extra["plane_publish_s"])
    t_warm_shm = min(warm_walls)

    # Per-call setup: everything above the warm steady-state floor.  A
    # warm call's own setup is its segment-publish slice, measured
    # directly by the engine rather than inferred by subtraction.
    setup_cold_pickle = max(t_cold_pickle - t_warm_shm, 1e-9)
    setup_cold_shm = max(t_cold_shm - t_warm_shm, 1e-9)
    setup_warm_shm = max(min(warm_publish), 1e-9)
    speedup = setup_cold_pickle / setup_warm_shm

    rows = [
        ("ColdPickle", t_cold_pickle, setup_cold_pickle),
        ("ColdShm", t_cold_shm, setup_cold_shm),
        ("WarmShmSession", t_warm_shm, setup_warm_shm),
    ]
    for mode, wall, setup in rows:
        extra = {
            "workers": workers,
            "setup_overhead_s": setup,
        }
        if mode == "WarmShmSession":
            extra["setup_speedup_vs_cold_pickle"] = speedup
        bench_json(
            bench_entry(
                bench="data_plane",
                instance=DATA_PLANE_INSTANCE,
                algorithm=f"{mode}({workers}w)",
                wall_s=wall,
                extra=extra,
            )
        )

    report = figure_report(
        "Data plane overhead",
        "Per-call wall and setup overhead (s) by data plane and pool "
        "temperature",
        ("mode", "wall", "setup overhead", "setup vs cold pickle"),
    )
    for mode, wall, setup in rows:
        report.add_row(mode, wall, setup, setup_cold_pickle / setup)
    report.add_note(
        f"{DATA_PLANE_INSTANCE}, {workers} workers.  Cold calls rebuild "
        "the pool and re-ship the graph every time; the warm session row "
        "reuses one pool plus published CSR/candidate segments, so its "
        "setup is only the per-call blob publish (measured by the engine "
        "as plane_publish_s).  Every result was asserted bit-for-bit "
        "equal to the sequential engine before timing was recorded."
    )

    assert speedup >= MIN_WARM_SETUP_SPEEDUP, (
        f"warm shm session setup ({setup_warm_shm:.6f}s) is only "
        f"{speedup:.1f}x cheaper than cold pickle "
        f"({setup_cold_pickle:.6f}s); acceptance floor is "
        f"{MIN_WARM_SETUP_SPEEDUP}x"
    )
