"""Before/after benchmark for the block-vectorized refine kernel.

For each instance (default: ``kron_large``) this computes the skyline
three ways on the same graph:

* ``filter_refine`` — the sequential bloom baseline and the ground
  truth every kernel is pinned to;
* ``filter_refine_bitset`` with the default word budget — the **before**
  row: the best pre-block kernel a caller got (at million-edge scale
  the packed matrix blows the budget, so this is the bloom fallback —
  ``extra.refine_path`` records which path actually ran);
* ``filter_refine_block`` — the **after** row.

Every result is asserted bit-for-bit equal (skyline, dominator,
candidates) to the sequential bloom baseline *before* any timing row is
recorded, so a speedup number can never paper over a wrong answer.
Refine-phase wall time is the end-to-end wall minus a separately timed
filter phase (all three algorithms run the identical filter pass).

Rows go into ``BENCH_skyline.json`` at the repo root as
``bench="refine_vector"`` entries (merge-write, same as every other
harness script); the ``after`` row carries the measured
``refine_speedup`` and the block kernel's counters.  On the default
``kron_large`` instance the run **fails** unless the block kernel's
refine phase is at least ``MIN_SPEEDUP``× faster than the before row.

Usage::

    PYTHONPATH=src python benchmarks/bench_refine_vector.py [dataset ...]
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.bitset_refine import filter_refine_bitset_sky
from repro.core.block_refine import filter_refine_block_sky
from repro.core.counters import SkylineCounters
from repro.core.filter_phase import filter_phase
from repro.core.filter_refine import filter_refine_sky
from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    write_bench_json,
)
from repro.workloads import load

DEFAULT_INSTANCES = ("kron_large",)

#: Acceptance floor for the refine-phase speedup on the default
#: instances; override per-run with ``REPRO_MIN_REFINE_SPEEDUP``.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_REFINE_SPEEDUP", "2.0"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _assert_identical(result, ref, name: str, kernel: str) -> None:
    assert result.skyline == ref.skyline, f"{name}: {kernel} skyline"
    assert result.dominator == ref.dominator, f"{name}: {kernel} dominator"
    assert result.candidates == ref.candidates, (
        f"{name}: {kernel} candidates"
    )


def run_one(name: str, enforce_speedup: bool) -> list[dict]:
    graph = load(name)

    t0 = time.perf_counter()
    filter_phase(graph)
    t_filter = time.perf_counter() - t0

    t0 = time.perf_counter()
    ref = filter_refine_sky(graph)
    t_bloom = time.perf_counter() - t0

    before_counters = SkylineCounters()
    t0 = time.perf_counter()
    before = filter_refine_bitset_sky(graph, counters=before_counters)
    t_before = time.perf_counter() - t0
    _assert_identical(before, ref, name, "bitset")
    before_path = before_counters.extra.get("refine_path")

    after_counters = SkylineCounters()
    t0 = time.perf_counter()
    after = filter_refine_block_sky(graph, counters=after_counters)
    t_after = time.perf_counter() - t0
    _assert_identical(after, ref, name, "block")

    refine_before = max(t_before - t_filter, 1e-9)
    refine_after = max(t_after - t_filter, 1e-9)
    speedup = refine_before / refine_after
    rejects = after_counters.extra.get("core_pretest_rejects", 0)

    print(
        f"{name}: n={graph.num_vertices} m={graph.num_edges} "
        f"|C|={len(ref.candidates)} |R|={len(ref.skyline)} "
        f"filter {t_filter:.2f}s refine before {refine_before:.2f}s "
        f"({before_path}) after {refine_after:.2f}s "
        f"=> {speedup:.1f}x; core pretest rejected {rejects} entries; "
        "all outputs bit-for-bit identical to sequential bloom"
    )
    if enforce_speedup:
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: block refine speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP}x acceptance floor"
        )

    common = {
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "skyline_size": len(ref.skyline),
        "candidate_size": len(ref.candidates),
        "filter_s": round(t_filter, 3),
    }
    return [
        bench_entry(
            bench="refine_vector",
            instance=name,
            algorithm="FilterRefineSky",
            wall_s=t_bloom,
            extra={**common, "variant": "baseline"},
        ),
        bench_entry(
            bench="refine_vector",
            instance=name,
            algorithm="FilterRefineSkyBitset",
            wall_s=t_before,
            counters=before_counters.as_dict(),
            extra={
                **common,
                "variant": "before",
                "refine_s": round(refine_before, 3),
                "refine_path": before_path,
            },
        ),
        bench_entry(
            bench="refine_vector",
            instance=name,
            algorithm="FilterRefineSkyBlock",
            wall_s=t_after,
            counters=after_counters.as_dict(),
            extra={
                **common,
                "variant": "after",
                "refine_s": round(refine_after, 3),
                "refine_speedup": round(speedup, 2),
                "core_pretest_rejects": rejects,
            },
        ),
    ]


def main(argv) -> int:
    instances = tuple(argv) or DEFAULT_INSTANCES
    entries = []
    for name in instances:
        # The speedup floor is an acceptance gate for the large tier;
        # explicitly requested small instances still record their rows
        # (the block kernel is not expected to win at toy sizes).
        entries.extend(run_one(name, name in DEFAULT_INSTANCES))
    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    print(f"merged {len(entries)} entries into {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
