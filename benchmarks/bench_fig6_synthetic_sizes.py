"""Fig. 6 (Exp-3) — R/C/V sizes on synthetic ER and power-law graphs.

Two sweeps on 10,000-vertex graphs (the paper uses 100,000):

* **ER** (Fig. 6a): ``p = Δp · log(n)/n`` for Δp ∈ {0.2 .. 1.0}.
  Expected: |R| ≈ |C| ≈ |V| — independent-edge graphs have almost no
  neighborhood inclusion, so the skyline technique buys nothing.
* **PL** (Fig. 6b): copying-model power-law graphs with degree exponent
  β ∈ {2.6 .. 3.4}.  Expected: |R| and |C| substantially below |V|.
"""

import math

import pytest

from repro.core import filter_refine_sky
from repro.graph.generators import copying_power_law, erdos_renyi

N = 10_000
DELTA_PS = (0.2, 0.4, 0.6, 0.8, 1.0)
BETAS = (2.6, 2.8, 3.0, 3.2, 3.4)


@pytest.mark.parametrize("delta_p", DELTA_PS)
def test_fig6a_erdos_renyi(benchmark, figure_report, delta_p):
    p = delta_p * math.log(N) / N
    graph = erdos_renyi(N, p, seed=61)

    result = benchmark.pedantic(
        filter_refine_sky, args=(graph,), rounds=1, iterations=1
    )
    report = figure_report(
        "Figure 6a",
        "ER graphs, n=10^4: sizes of R and C vs V (vary Δp)",
        ("Δp", "|R|", "|C|", "|V|", "R/V"),
    )
    report.add_row(
        delta_p,
        result.size,
        result.candidate_size,
        N,
        result.size / N,
    )
    if delta_p == DELTA_PS[-1]:
        report.add_note(
            "expected shape: R and C close to V — ER graphs have almost "
            "no neighborhood inclusion (paper Fig. 6a)."
        )


@pytest.mark.parametrize("beta", BETAS)
def test_fig6b_power_law(benchmark, figure_report, beta):
    graph = copying_power_law(
        N, beta, 0.9, proto_link_prob=0.3, seed=62
    )

    result = benchmark.pedantic(
        filter_refine_sky, args=(graph,), rounds=1, iterations=1
    )
    report = figure_report(
        "Figure 6b",
        "Power-law graphs, n=10^4: sizes of R and C vs V (vary β)",
        ("β", "|R|", "|C|", "|V|", "R/V"),
    )
    report.add_row(
        beta,
        result.size,
        result.candidate_size,
        N,
        result.size / N,
    )
    if beta == BETAS[-1]:
        report.add_note(
            "expected shape: R and C substantially below V for every β "
            "(paper Fig. 6b)."
        )
