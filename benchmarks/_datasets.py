"""Shared, cached benchmark instances.

All benchmark modules draw their graphs from here so that (a) every
figure uses the same instances and (b) each graph is generated once per
session.  Three families:

* ``dataset(name)`` — the registry graphs as-is (skyline experiments).
* ``centrality_instance(name)`` — a connected, smaller instance for the
  group-centrality experiments.  The paper runs Greedy++/Greedy-H on the
  full graphs; at Python speed the greedy's first round alone is ``n``
  BFS traversals, so each dataset gets a dedicated ~800-vertex copying
  backbone with the same exponent flavor (the satellite periphery of
  the skyline instances shatters under vertex sampling, so these are
  generated directly rather than sampled).  The k-ladder is scaled
  correspondingly.
* ``scalability_instance(axis, fraction)`` — the Exp-7 LiveJournal
  subsamples along the ``n`` and ``ρ`` axes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.graph.adjacency import Graph
from repro.graph.components import largest_connected_component
from repro.graph.sampling import sample_edges, sample_prefix, sample_vertices
from repro.workloads import load

#: The k values used for Figs. 7/8 (the paper sweeps 50..300 on graphs
#: three orders of magnitude larger; the ladder keeps the same 6-point
#: geometry).
GROUP_K_VALUES = (4, 8, 12, 16, 20, 24)
GROUP_K_DEFAULT = 16

#: Exp-7 sampling fractions (the paper's 20%..100%).
SCALING_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Copying-backbone parameters (exponent, copy_prob, seed) per dataset
#: for the ~800-vertex centrality instances.
_CENTRALITY_PARAMS = {
    "notredame_sim": (2.3, 0.90, 201),
    "youtube_sim": (2.4, 0.88, 202),
    "wikitalk_sim": (2.9, 0.93, 203),
    "flixster_sim": (2.6, 0.85, 204),
    "dblp_sim": (2.1, 0.80, 205),
    "livejournal_sim": (2.4, 0.85, 206),
}
_CENTRALITY_N = 900


@lru_cache(maxsize=None)
def dataset(name: str) -> Graph:
    """The registry graph, cached for the benchmark session."""
    return load(name)


@lru_cache(maxsize=None)
def centrality_instance(name: str) -> Graph:
    """Connected ~800-vertex instance used by the group-centrality figures."""
    from repro.graph.generators import copying_power_law

    exponent, copy_prob, seed = _CENTRALITY_PARAMS[name]
    backbone = copying_power_law(
        _CENTRALITY_N, exponent, copy_prob, seed=seed
    )
    lcc, _mapping = largest_connected_component(backbone)
    return lcc


@lru_cache(maxsize=None)
def scalability_instance(axis: str, fraction: float) -> Graph:
    """LiveJournal subsample along ``axis`` ∈ {"n", "rho"} (Exp-7)."""
    base = dataset("livejournal_sim")
    if axis == "n":
        return sample_vertices(base, fraction, seed=7)
    if axis == "rho":
        return sample_edges(base, fraction, seed=7)
    raise ValueError(f"unknown scalability axis {axis!r}")


@lru_cache(maxsize=None)
def scalability_centrality_instance(axis: str, fraction: float) -> Graph:
    """Connected version of the Exp-7 subsamples for Figs. 11/12.

    The ``n`` axis uses ID-prefix sampling — for a growth-model backbone
    that is "the same graph, earlier in its growth", connected and
    nested.  The ``ρ`` axis edge-samples and takes the LCC (at low ρ the
    component shrinks; the report notes it).
    """
    small = centrality_instance("livejournal_sim")
    if axis == "n":
        sampled = sample_prefix(small, fraction)
    elif axis == "rho":
        sampled = sample_edges(small, fraction, seed=13)
    else:
        raise ValueError(f"unknown scalability axis {axis!r}")
    lcc, _mapping = largest_connected_component(sampled)
    return lcc
