"""Shared load-generation harness for the serving benchmarks.

Three pieces, all deterministic under a seed so replay runs are
reproducible request-for-request:

* :func:`generate_trace` — a seeded mixed-workload trace (skyline /
  group / clique over several graphs) with bursty arrivals: requests
  land in bursts of 1..``burst_max`` separated by exponential gaps, the
  arrival pattern the bounded queue exists to absorb;
* :func:`replay` — fire a trace at a live
  :class:`~repro.serve.server.ServerThread` from a small client pool,
  honoring each request's arrival offset, and record per-request
  status + latency;
* :func:`summarize` — p50/p99 latency, status counts, rejection and
  expiry rates from the recorded outcomes.

Latency here is the full client round-trip (connect + queue wait +
service + response), which is what a caller of the service observes.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

QUERY_KINDS = ("skyline", "group", "clique")

#: Workload mix: skyline dominates (the cheap cached query), group and
#: clique ride along as the expensive tail.
DEFAULT_KIND_WEIGHTS = (6, 3, 1)


@dataclass(frozen=True)
class TraceRequest:
    """One request in a trace: when it arrives and what it asks."""

    offset_s: float  # arrival time relative to replay start
    graph: str
    kind: str
    payload: dict = field(hash=False)


@dataclass(frozen=True)
class Outcome:
    """One completed round-trip during replay.

    ``doc`` is the decoded response body when the replay ran with
    ``capture_docs=True`` (the chaos replays need it for bit-for-bit
    verification of every 200), else ``None``.
    """

    kind: str
    status: int
    latency_s: float
    doc: object = field(default=None, hash=False, compare=False)


def generate_trace(
    graphs,
    num_requests: int,
    *,
    seed: int = 0,
    mean_gap_s: float = 0.02,
    burst_max: int = 6,
    kind_weights=DEFAULT_KIND_WEIGHTS,
    timeout_s=None,
) -> list:
    """A seeded mixed trace with bursty arrivals.

    Every request inside a burst shares one arrival offset (the burst
    hits the socket back-to-back); bursts are separated by
    ``Exp(1/mean_gap_s)`` gaps.  ``timeout_s`` (optional) is stamped on
    every request so replay runs can bound their queue wait.
    """
    graphs = tuple(graphs)
    rng = random.Random(seed)
    trace: list[TraceRequest] = []
    clock = 0.0
    while len(trace) < num_requests:
        burst = min(rng.randint(1, burst_max), num_requests - len(trace))
        for _ in range(burst):
            kind = rng.choices(QUERY_KINDS, weights=kind_weights)[0]
            graph = rng.choice(graphs)
            payload = {
                "graph": graph,
                "kind": kind,
                "priority": rng.randint(0, 2),
            }
            if kind == "group":
                payload["k"] = rng.randint(2, 4)
                payload["measure"] = rng.choice(("closeness", "harmonic"))
            elif kind == "clique" and rng.random() < 0.5:
                payload["top_k"] = rng.randint(2, 3)
            if timeout_s is not None:
                payload["timeout_s"] = timeout_s
            trace.append(TraceRequest(clock, graph, kind, payload))
        clock += rng.expovariate(1.0 / mean_gap_s)
    return trace


def replay(
    handle,
    trace,
    *,
    max_clients: int = 8,
    timeout: float = 120.0,
    capture_docs: bool = False,
) -> tuple[list, float]:
    """Fire ``trace`` at a live server; returns (outcomes, wall_s).

    The submitting thread paces arrivals against the trace clock; a
    client pool carries the concurrent in-flight requests, so a burst
    genuinely overlaps on the wire.  Outcomes keep trace order.
    ``capture_docs`` retains each decoded response body on its
    :class:`Outcome` for correctness verification.
    """
    results: list = [None] * len(trace)

    def fire(index: int, request: TraceRequest) -> None:
        start = time.perf_counter()
        status, doc = handle.request(
            "POST", "/query", request.payload, timeout=timeout
        )
        results[index] = Outcome(
            request.kind,
            status,
            time.perf_counter() - start,
            doc if capture_docs else None,
        )

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max_clients) as pool:
        futures = []
        for index, request in enumerate(trace):
            delay = request.offset_s - (time.perf_counter() - started)
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(fire, index, request))
        for future in futures:
            future.result()  # re-raise client-side failures
    return results, time.perf_counter() - started


def canonical_params(payload: dict) -> tuple:
    """The subset of a trace payload that determines the query result.

    Routing and scheduling fields (graph/kind/priority/timeout) change
    *where and when* a request runs, never *what* it computes, so they
    are dropped; what remains (``k``, ``measure``, ``top_k``, ...) keys
    the ground-truth table of :func:`direct_references`.
    """
    drop = {"graph", "kind", "priority", "timeout_s"}
    return tuple(
        sorted((k, v) for k, v in payload.items() if k not in drop)
    )


def direct_references(trace, *, workers: int = 1) -> dict:
    """Ground-truth result per unique (graph, kind, params) in ``trace``.

    Computed on a private registry through the same
    :func:`~repro.serve.registry.execute_query` path a healthy server
    uses — but with no server, no queue, and no fault plan in between —
    with the ``_counters`` side channel stripped.  Every 200 a replay
    collects (degraded ones included: the stale cache holds a previous
    good answer, and graphs are immutable) must match its entry
    bit-for-bit.
    """
    from repro.serve import GraphRegistry
    from repro.serve.registry import execute_query

    references: dict = {}
    registry = GraphRegistry(workers=workers)
    try:
        for request in trace:
            if request.graph not in registry.names():
                registry.register_spec(request.graph)
            params = canonical_params(request.payload)
            key = (request.graph, request.kind, params)
            if key not in references:
                payload = execute_query(
                    registry.entry(request.graph),
                    request.kind,
                    dict(params),
                )
                payload.pop("_counters", None)
                references[key] = payload
        return references
    finally:
        registry.close()


def verify_200s(trace, outcomes, references) -> tuple[int, int]:
    """Bit-for-bit check of every 200 against ``references``.

    Returns ``(verified, degraded)`` counts; raises ``AssertionError``
    naming the first mismatching request otherwise.  Degraded 200s are
    held to the *same* equality bar — the serving contract is that
    degradation changes freshness bookkeeping, never answers.
    """
    verified = degraded = 0
    for index, (request, outcome) in enumerate(zip(trace, outcomes)):
        if outcome.status != 200:
            continue
        key = (request.graph, request.kind, canonical_params(request.payload))
        doc = outcome.doc
        assert doc is not None, "replay ran without capture_docs=True"
        assert doc["result"] == references[key], (
            f"request {index} ({request.kind} on {request.graph}): "
            f"served 200 differs from direct API result"
        )
        verified += 1
        degraded += bool(doc.get("degraded"))
    return verified, degraded


def _percentile(sorted_values, p: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = -(-p * len(sorted_values) // 100)  # ceil(p/100 * n)
    rank = min(len(sorted_values), max(1, int(rank)))
    return sorted_values[rank - 1]


def summarize(outcomes, wall_s: float) -> dict:
    """Headline numbers for one replay run."""
    statuses = Counter(outcome.status for outcome in outcomes)
    latencies = sorted(o.latency_s for o in outcomes if o.status == 200)
    total = len(outcomes)
    rejected = statuses.get(429, 0)
    expired = statuses.get(504, 0)
    server_errors = sum(
        count
        for status, count in statuses.items()
        if status >= 500 and status != 504
    )
    return {
        "requests": total,
        "wall_s": wall_s,
        "ok": statuses.get(200, 0),
        "rejected": rejected,
        "expired": expired,
        "server_errors": server_errors,
        "rejection_rate": rejected / total if total else 0.0,
        "p50_ms": 1000.0 * _percentile(latencies, 50),
        "p99_ms": 1000.0 * _percentile(latencies, 99),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
    }
