"""Shared load-generation harness for the serving benchmarks.

Three pieces, all deterministic under a seed so replay runs are
reproducible request-for-request:

* :func:`generate_trace` — a seeded mixed-workload trace (skyline /
  group / clique over several graphs) with bursty arrivals: requests
  land in bursts of 1..``burst_max`` separated by exponential gaps, the
  arrival pattern the bounded queue exists to absorb;
* :func:`replay` — fire a trace at a live
  :class:`~repro.serve.server.ServerThread` from a small client pool,
  honoring each request's arrival offset, and record per-request
  status + latency;
* :func:`summarize` — p50/p99 latency, status counts, rejection and
  expiry rates from the recorded outcomes.

Latency here is the full client round-trip (connect + queue wait +
service + response), which is what a caller of the service observes.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

QUERY_KINDS = ("skyline", "group", "clique")

#: Workload mix: skyline dominates (the cheap cached query), group and
#: clique ride along as the expensive tail.
DEFAULT_KIND_WEIGHTS = (6, 3, 1)


@dataclass(frozen=True)
class TraceRequest:
    """One request in a trace: when it arrives and what it asks."""

    offset_s: float  # arrival time relative to replay start
    graph: str
    kind: str
    payload: dict = field(hash=False)


@dataclass(frozen=True)
class Outcome:
    """One completed round-trip during replay."""

    kind: str
    status: int
    latency_s: float


def generate_trace(
    graphs,
    num_requests: int,
    *,
    seed: int = 0,
    mean_gap_s: float = 0.02,
    burst_max: int = 6,
    kind_weights=DEFAULT_KIND_WEIGHTS,
    timeout_s=None,
) -> list:
    """A seeded mixed trace with bursty arrivals.

    Every request inside a burst shares one arrival offset (the burst
    hits the socket back-to-back); bursts are separated by
    ``Exp(1/mean_gap_s)`` gaps.  ``timeout_s`` (optional) is stamped on
    every request so replay runs can bound their queue wait.
    """
    graphs = tuple(graphs)
    rng = random.Random(seed)
    trace: list[TraceRequest] = []
    clock = 0.0
    while len(trace) < num_requests:
        burst = min(rng.randint(1, burst_max), num_requests - len(trace))
        for _ in range(burst):
            kind = rng.choices(QUERY_KINDS, weights=kind_weights)[0]
            graph = rng.choice(graphs)
            payload = {
                "graph": graph,
                "kind": kind,
                "priority": rng.randint(0, 2),
            }
            if kind == "group":
                payload["k"] = rng.randint(2, 4)
                payload["measure"] = rng.choice(("closeness", "harmonic"))
            elif kind == "clique" and rng.random() < 0.5:
                payload["top_k"] = rng.randint(2, 3)
            if timeout_s is not None:
                payload["timeout_s"] = timeout_s
            trace.append(TraceRequest(clock, graph, kind, payload))
        clock += rng.expovariate(1.0 / mean_gap_s)
    return trace


def replay(
    handle,
    trace,
    *,
    max_clients: int = 8,
    timeout: float = 120.0,
) -> tuple[list, float]:
    """Fire ``trace`` at a live server; returns (outcomes, wall_s).

    The submitting thread paces arrivals against the trace clock; a
    client pool carries the concurrent in-flight requests, so a burst
    genuinely overlaps on the wire.  Outcomes keep trace order.
    """
    results: list = [None] * len(trace)

    def fire(index: int, request: TraceRequest) -> None:
        start = time.perf_counter()
        status, _doc = handle.request(
            "POST", "/query", request.payload, timeout=timeout
        )
        results[index] = Outcome(
            request.kind, status, time.perf_counter() - start
        )

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max_clients) as pool:
        futures = []
        for index, request in enumerate(trace):
            delay = request.offset_s - (time.perf_counter() - started)
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(fire, index, request))
        for future in futures:
            future.result()  # re-raise client-side failures
    return results, time.perf_counter() - started


def _percentile(sorted_values, p: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = -(-p * len(sorted_values) // 100)  # ceil(p/100 * n)
    rank = min(len(sorted_values), max(1, int(rank)))
    return sorted_values[rank - 1]


def summarize(outcomes, wall_s: float) -> dict:
    """Headline numbers for one replay run."""
    statuses = Counter(outcome.status for outcome in outcomes)
    latencies = sorted(o.latency_s for o in outcomes if o.status == 200)
    total = len(outcomes)
    rejected = statuses.get(429, 0)
    expired = statuses.get(504, 0)
    server_errors = sum(
        count
        for status, count in statuses.items()
        if status >= 500 and status != 504
    )
    return {
        "requests": total,
        "wall_s": wall_s,
        "ok": statuses.get(200, 0),
        "rejected": rejected,
        "expired": expired,
        "server_errors": server_errors,
        "rejection_rate": rejected / total if total else 0.0,
        "p50_ms": 1000.0 * _percentile(latencies, 50),
        "p99_ms": 1000.0 * _percentile(latencies, 99),
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
    }
