"""Traffic replay against the serving layer: latency and backpressure.

Two seeded replay profiles run against a live in-process server
(:class:`~repro.serve.server.ServerThread`, real sockets, warm
sessions), and their headline numbers merge into
``BENCH_skyline.json`` as ``bench="serve"`` rows:

* **steady** — a generously provisioned queue absorbing the full mixed
  trace; every request should complete with 200, and the p50/p99
  round-trip latencies price the serving overhead itself;
* **burst** — the same arrival process against a deliberately tight
  queue with short per-request deadlines, so the bounded queue must
  shed load; the row records the rejection (429) and expiry (504)
  rates alongside the latencies of the requests that did run.

Both profiles replay the *same* seeded trace shape (mixed skyline /
group / clique over two graphs, bursty arrivals), so the pair isolates
what the queue bound changes.

Usage::

    PYTHONPATH=src python benchmarks/replay_serve.py \
        [--requests N] [--seed S] [--graphs karate bombing_proxy]
"""

from __future__ import annotations

import argparse
import os
import sys

from _serve_trace import generate_trace, replay, summarize

from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    write_bench_json,
)
from repro.serve import GraphRegistry, ServeConfig, ServerThread

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PROFILES = {
    # name -> (queue_capacity, batch_max, timeout_s, gap_s, clients)
    # steady: provisioned queue, paced arrivals — prices the overhead.
    # burst: 4x more concurrent clients than queue slots and near-zero
    # gaps, so the bounded queue must shed load (429/504 rows).
    "steady": (128, 8, None, 0.02, 8),
    "burst": (8, 4, 0.25, 0.002, 16),
}


def run_profile(
    name: str, graphs, num_requests: int, seed: int
) -> tuple[dict, dict]:
    capacity, batch_max, timeout_s, gap_s, clients = PROFILES[name]
    trace = generate_trace(
        graphs,
        num_requests,
        seed=seed,
        mean_gap_s=gap_s,
        timeout_s=timeout_s,
    )
    registry = GraphRegistry(workers=1)
    for graph in graphs:
        registry.register_spec(graph)
    config = ServeConfig(
        port=0, queue_capacity=capacity, batch_max=batch_max
    )
    with ServerThread(registry, config) as handle:
        outcomes, wall_s = replay(handle, trace, max_clients=clients)
        _, metrics = handle.request("GET", "/metrics")
    summary = summarize(outcomes, wall_s)
    summary["batches"] = metrics["batches"]
    return summary, metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--graphs", nargs="+", default=["karate", "bombing_proxy"]
    )
    args = parser.parse_args(argv)

    instance = "+".join(args.graphs)
    entries = []
    for profile in PROFILES:
        summary, _metrics = run_profile(
            profile, args.graphs, args.requests, args.seed
        )
        print(
            f"{profile}: {summary['ok']}/{summary['requests']} ok, "
            f"p50={summary['p50_ms']:.1f}ms p99={summary['p99_ms']:.1f}ms, "
            f"rejected={summary['rejected']} expired={summary['expired']} "
            f"(rate={summary['rejection_rate']:.1%}), "
            f"wall={summary['wall_s']:.2f}s"
        )
        if summary["server_errors"]:
            raise SystemExit(
                f"{profile}: {summary['server_errors']} server errors"
            )
        entries.append(
            bench_entry(
                bench="serve",
                instance=instance,
                algorithm=f"replay-{profile}(n={summary['requests']})",
                wall_s=summary["wall_s"],
                extra={
                    "p50_ms": round(summary["p50_ms"], 2),
                    "p99_ms": round(summary["p99_ms"], 2),
                    "ok": summary["ok"],
                    "rejected": summary["rejected"],
                    "expired": summary["expired"],
                    "rejection_rate": round(summary["rejection_rate"], 4),
                    "batches": summary["batches"],
                },
            )
        )

    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    print(f"merged {len(entries)} entries into {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
