"""Fig. 4 (Exp-2) — peak memory of the five skyline algorithms.

Measured with :func:`repro.harness.memory.measure_peak` (tracemalloc):
the interpreter baseline and the input graph are excluded, so what's
compared is exactly each algorithm's working set.  Paper shape:
Base2Hop largest (materialized 2-hop lists + filters for all of V);
LC-Join carries a duplicated graph as its inverted index;
FilterRefineSky adds ``|C|`` bloom filters; BaseSky/BaseCSet hold only
linear arrays.
"""

import pytest

from _datasets import dataset
from repro.core import (
    base_cset_sky,
    base_sky,
    base_two_hop_sky,
    filter_refine_sky,
    lc_join_sky,
)
from repro.harness.memory import measure_peak
from repro.workloads import TABLE1_NAMES

ALGORITHMS = (
    ("LC-Join", lc_join_sky),
    ("BaseSky", base_sky),
    ("Base2Hop", base_two_hop_sky),
    ("BaseCSet", base_cset_sky),
    ("FilterRefineSky", filter_refine_sky),
)

_RESULTS: dict[str, dict[str, float]] = {}


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_fig4_memory(benchmark, figure_report, name):
    graph = dataset(name)

    def run_all():
        peaks = {}
        for algo_name, algo in ALGORITHMS:
            _result, peak = measure_peak(algo, graph)
            peaks[algo_name] = peak / (1024.0 * 1024.0)
        return peaks

    peaks = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _RESULTS[name] = peaks

    report = figure_report(
        "Figure 4",
        "Peak traced memory (MB) of skyline computation algorithms",
        ("dataset",) + tuple(a for a, _ in ALGORITHMS),
    )
    report.add_row(name, *(peaks[a] for a, _ in ALGORITHMS))
    if len(_RESULTS) == len(TABLE1_NAMES):
        report.add_note(
            "expected shape: Base2Hop largest; LC-Join duplicates the "
            "graph in its inverted index; BaseSky/BaseCSet smallest; "
            "FilterRefineSky in between (|C| bloom filters)."
        )
