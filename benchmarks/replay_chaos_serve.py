"""Live-server chaos replay: availability and correctness under faults.

Two seeded profiles run against a live in-process server
(:class:`~repro.serve.server.ServerThread`, real sockets, warm
sessions, the PR 9 supervision layer active in both), and their
headline numbers merge into ``BENCH_skyline.json`` as
``bench="chaos_serve"`` rows:

* **faultfree** — the supervised worker loop with no fault plan; every
  request must complete 200 with zero rebuilds and zero degraded
  answers, and its p50 prices the supervision overhead itself (target:
  within 2% of the pre-supervision ``bench="serve"`` steady row — the
  row lands next to it in BENCH_skyline.json for exactly that
  comparison);
* **chaos** — the same trace shape with a seeded
  :class:`~repro.harness.faults.ServeFaultPlan` injecting
  engine exceptions, session poisoning, shm attach failures and slow
  queries at a 15% dispatch rate.  The row records availability
  (fraction of requests answered 200, degraded included), session
  rebuilds, and p99 under fault.

Both profiles assert the full self-healing contract:

* availability >= 95% under chaos (100% fault-free);
* **every** 200 — degraded or not — is bit-for-bit the direct API
  result for its exact parameters (graphs are immutable, so the
  degraded cache can never be stale-wrong, only stale-marked);
* queue accounting is conserved (enqueued == dequeued + expired);
* shutdown is clean: no shm segment, no ``/dev/shm/repro_*`` file, no
  orphaned child process.

Usage::

    PYTHONPATH=src python benchmarks/replay_chaos_serve.py \
        [--requests N] [--seed S] [--graphs karate bombing_proxy]
"""

from __future__ import annotations

import argparse
import glob
import multiprocessing
import os
import sys

from _serve_trace import (
    direct_references,
    generate_trace,
    replay,
    summarize,
    verify_200s,
)

from repro.harness.faults import ServeFaultPlan
from repro.harness.benchjson import (
    BENCH_FILENAME,
    bench_entry,
    write_bench_json,
)
from repro.parallel import live_segment_names
from repro.serve import (
    GraphRegistry,
    ServeConfig,
    ServerThread,
    SupervisionConfig,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

AVAILABILITY_FLOOR = 0.95
CHAOS_RATE = 0.15

#: Supervision tuned for a dense replay: fast retries, a breaker that
#: opens after 3 straight failures but re-probes in a quarter second,
#: and a rebuild budget the trace cannot exhaust (pinning is an
#: operator state, not a benchmark outcome).
SUPERVISION = dict(
    query_deadline_s=30.0,
    max_query_retries=2,
    backoff_base_s=0.005,
    backoff_cap_s=0.05,
    max_session_rebuilds=10_000,
    breaker_threshold=3,
    breaker_cooldown_s=0.25,
)


def run_profile(profile, graphs, num_requests, seed, references):
    fault_plan = None
    if profile == "chaos":
        fault_plan = ServeFaultPlan.seeded(
            seed + 1,
            graphs,
            max_calls=4 * num_requests,
            rate=CHAOS_RATE,
        )
    trace = generate_trace(graphs, num_requests, seed=seed, mean_gap_s=0.01)
    registry = GraphRegistry(workers=1)
    for graph in graphs:
        registry.register_spec(graph)
    config = ServeConfig(
        port=0,
        queue_capacity=num_requests,
        batch_max=8,
        supervision=SupervisionConfig(seed=seed, **SUPERVISION),
    )
    with ServerThread(registry, config, fault_plan=fault_plan) as handle:
        outcomes, wall_s = replay(
            handle, trace, max_clients=8, capture_docs=True
        )
        _, metrics = handle.request("GET", "/metrics")

    # Nothing survives the context manager, fault plan or not.
    assert live_segment_names() == (), live_segment_names()
    leaked = glob.glob("/dev/shm/repro_*")
    assert not leaked, f"/dev/shm residue {leaked}"
    assert multiprocessing.active_children() == []

    summary = summarize(outcomes, wall_s)
    queue = metrics["queue"]
    assert queue["enqueued_total"] == (
        queue["dequeued_total"] + queue["expired_total"]
    ), queue
    assert queue["depth"] == 0, queue

    verified, degraded = verify_200s(trace, outcomes, references)
    assert verified == summary["ok"]
    supervision = metrics["supervision"]
    summary["availability"] = summary["ok"] / summary["requests"]
    summary["degraded"] = degraded
    summary["rebuilds"] = sum(supervision["rebuilds"].values())
    summary["injected_faults"] = sum(
        supervision["injected_faults"].values()
    )

    if profile == "chaos":
        assert summary["availability"] >= AVAILABILITY_FLOOR, summary
    else:
        assert summary["availability"] == 1.0, summary["statuses"]
        assert summary["rebuilds"] == 0 and degraded == 0, summary
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--graphs", nargs="+", default=["karate", "bombing_proxy"]
    )
    args = parser.parse_args(argv)

    trace = generate_trace(args.graphs, args.requests, seed=args.seed)
    references = direct_references(trace)
    instance = "+".join(args.graphs)
    entries = []
    for profile in ("faultfree", "chaos"):
        summary = run_profile(
            profile, args.graphs, args.requests, args.seed, references
        )
        print(
            f"{profile}: {summary['ok']}/{summary['requests']} ok "
            f"(availability={summary['availability']:.1%}, "
            f"{summary['degraded']} degraded), "
            f"faults={summary['injected_faults']} "
            f"rebuilds={summary['rebuilds']}, "
            f"p50={summary['p50_ms']:.1f}ms p99={summary['p99_ms']:.1f}ms, "
            f"wall={summary['wall_s']:.2f}s"
        )
        entries.append(
            bench_entry(
                bench="chaos_serve",
                instance=instance,
                algorithm=f"replay-{profile}(n={summary['requests']})",
                wall_s=summary["wall_s"],
                extra={
                    "availability": round(summary["availability"], 4),
                    "ok": summary["ok"],
                    "degraded": summary["degraded"],
                    "injected_faults": summary["injected_faults"],
                    "rebuilds": summary["rebuilds"],
                    "p50_ms": round(summary["p50_ms"], 2),
                    "p99_ms": round(summary["p99_ms"], 2),
                    "statuses": summary["statuses"],
                },
            )
        )

    path = os.path.join(REPO_ROOT, BENCH_FILENAME)
    write_bench_json(path, entries)
    print(f"merged {len(entries)} entries into {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
