"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st

# CI runners are slower and noisier than dev machines, and the pooled
# parallel-engine tests fork real worker processes; the "ci" profile
# relaxes the per-example deadline accordingly (tests that manage their
# own @settings, deadline included, are unaffected).  Selected via
# HYPOTHESIS_PROFILE=ci in .github/workflows/ci.yml.
hypothesis_settings.register_profile("ci", deadline=2000)
if "HYPOTHESIS_PROFILE" in os.environ:
    hypothesis_settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

from repro.graph.adjacency import Graph
from repro.graph.generators import (
    chung_lu_power_law,
    complete_binary_tree,
    complete_graph,
    copying_power_law,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graph.karate import karate_club


# ---------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------
@st.composite
def graphs(draw, max_vertices: int = 24, max_edge_prob: float = 0.5):
    """A random simple graph, biased toward small sparse instances."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    if n < 2:
        return Graph.from_edges(n, [])
    p = draw(st.floats(min_value=0.0, max_value=max_edge_prob))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return erdos_renyi(n, p, seed=seed)


@st.composite
def power_law_graphs(draw, max_vertices: int = 60):
    """A random copying-model power-law graph (the paper's regime)."""
    n = draw(st.integers(min_value=6, max_value=max_vertices))
    copy_prob = draw(st.floats(min_value=0.0, max_value=0.95))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return copying_power_law(n, 2.5, copy_prob, seed=seed)


@st.composite
def connected_graphs(draw, max_vertices: int = 20):
    """A connected random graph (spanning tree + extra random edges)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    edges = set()
    for v in range(1, n):
        edges.add((rng.randrange(v), v))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph.from_edges(n, edges)


# ---------------------------------------------------------------------
# Fixtures: canonical small graphs
# ---------------------------------------------------------------------
@pytest.fixture
def karate() -> Graph:
    return karate_club()


@pytest.fixture
def triangle() -> Graph:
    return Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def k5() -> Graph:
    return complete_graph(5)


@pytest.fixture
def p6() -> Graph:
    return path_graph(6)


@pytest.fixture
def c6() -> Graph:
    return cycle_graph(6)


@pytest.fixture
def star7() -> Graph:
    return star_graph(7)


@pytest.fixture
def tree3() -> Graph:
    return complete_binary_tree(3)


@pytest.fixture
def small_power_law() -> Graph:
    """A fixed ~120-vertex power-law graph for integration-ish tests."""
    return copying_power_law(120, 2.5, 0.85, seed=7)


@pytest.fixture
def small_chung_lu() -> Graph:
    return chung_lu_power_law(100, 2.7, average_degree=6.0, seed=11)


@pytest.fixture
def disconnected() -> Graph:
    """Two triangles, one pendant pair, and an isolated vertex."""
    return Graph.from_edges(
        9,
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (6, 7)],
    )
