"""Differential safety net for the block-vectorized refine kernel.

``filter_refine_block`` must return the *same* skyline, dominator
witnesses and candidate set as the scalar bitset kernel and the
sequential bloom baseline (which the rest of the suite pins to
``naive``) — bit for bit, on hypothesis-generated graphs, on the
twin-heavy tie-break stressors, on every registered dataset, and
through the parallel engine on both data planes.  The counter relations
the kernel claims are pinned too: same vertices examined, same
dominations found, bulk skip tallies never undercounting, zero bloom
machinery, and the core-number pretest's rejects surfaced in
``counters.extra``.

The large workload tier is covered by the same differential run in
``benchmarks/bench_refine_vector.py`` (which must assert bit-for-bit
equality before recording its speedup rows); rerunning the ~50s-per-
dataset bloom baseline here would dominate the whole suite, so the
large-tier test is opt-in via ``REPRO_LARGE_TESTS=1``.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import neighborhood_skyline
from repro.core.bitset_refine import filter_refine_bitset_sky
from repro.core.block_refine import (
    HAVE_NUMPY,
    choose_refine_kernel,
    filter_refine_block_sky,
)
from repro.core.counters import SkylineCounters
from repro.core.filter_refine import filter_refine_sky
from repro.core.naive import naive_skyline
from repro.parallel import parallel_refine_sky
from repro.workloads import load, names
from tests.conftest import graphs, power_law_graphs
from tests.property.test_parallel_equivalence import twin_heavy_graphs

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Pool-backed examples fork real worker processes; keep the count low.
POOLED = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

RUN_LARGE = os.environ.get("REPRO_LARGE_TESTS") == "1"


def assert_same_result(blk, ref):
    assert blk.skyline == ref.skyline
    assert blk.dominator == ref.dominator
    assert blk.candidates == ref.candidates


def assert_counter_relations(c_blk: SkylineCounters, c_ref: SkylineCounters):
    # Same candidates scanned, same dominations land.
    assert c_blk.vertices_examined == c_ref.vertices_examined
    assert c_blk.dominations_found == c_ref.dominations_found
    # Bulk mask tallies may overshoot a strict-exit scalar scan (the
    # block never early-exits a gathered batch), never undercount.
    assert c_blk.degree_skips >= c_ref.degree_skips
    # The kernel owns no bloom machinery and needs no exact recheck.
    assert c_blk.bloom_subset_rejects == 0
    assert c_blk.bloom_member_checks == 0
    assert c_blk.bloom_member_rejects == 0
    assert c_blk.bloom_false_positives == 0
    assert c_blk.nbr_checks == 0
    # Core pretest instrumentation is always surfaced on the block path.
    assert c_blk.extra.get("core_pretest_rejects", -1) >= 0


@COMMON
@given(graphs())
def test_block_matches_bloom_bitset_naive(g):
    seq = filter_refine_sky(g)
    bit = filter_refine_bitset_sky(g)
    blk = filter_refine_block_sky(g)
    assert_same_result(blk, seq)
    assert_same_result(blk, bit)
    assert blk.skyline == naive_skyline(g).skyline


@COMMON
@given(graphs())
def test_block_counter_relations(g):
    c_seq, c_blk = SkylineCounters(), SkylineCounters()
    filter_refine_sky(g, counters=c_seq)
    filter_refine_block_sky(g, counters=c_blk)
    assert_counter_relations(c_blk, c_seq)
    if HAVE_NUMPY:
        assert c_blk.extra["refine_path"] == "block"


@COMMON
@given(power_law_graphs())
def test_block_matches_sequential_power_law(g):
    assert_same_result(filter_refine_block_sky(g), filter_refine_sky(g))


@COMMON
@given(twin_heavy_graphs())
def test_block_twin_heavy_tie_breaks(g):
    # Twin classes maximize mutual inclusions, the regime where a wrong
    # Def. 2 settle rule (strict vs ID tie-break) diverges first.
    seq = filter_refine_sky(g)
    blk = filter_refine_block_sky(g)
    assert_same_result(blk, seq)
    assert blk.skyline == naive_skyline(g).skyline


@COMMON
@given(graphs(), st.integers(min_value=1, max_value=64))
def test_block_chunking_invariance(g, entry_budget):
    """Any entry budget (however absurdly small) gives the same output
    and the same counter totals — blocks are a pure scheduling knob."""
    c_ref, c_tiny = SkylineCounters(), SkylineCounters()
    ref = filter_refine_block_sky(g, counters=c_ref)
    tiny = filter_refine_block_sky(
        g, entry_budget=entry_budget, counters=c_tiny
    )
    assert_same_result(tiny, ref)
    assert c_tiny.as_dict() == c_ref.as_dict()
    assert c_tiny.extra.get("core_pretest_rejects") == c_ref.extra.get(
        "core_pretest_rejects"
    )


@COMMON
@given(graphs(), st.sampled_from([1, 2, 5, None]))
def test_parallel_block_in_process(g, chunk_size):
    c = SkylineCounters()
    par = parallel_refine_sky(
        g, workers=1, chunk_size=chunk_size, refine="block", counters=c
    )
    assert_same_result(par, filter_refine_sky(g))
    if HAVE_NUMPY:
        assert c.extra["refine_path"] == "block"
        assert c.extra.get("core_pretest_rejects", -1) >= 0


@POOLED
@given(graphs(), st.sampled_from(["shm", "pickle"]))
def test_parallel_block_pooled_both_planes(g, plane):
    par = parallel_refine_sky(
        g,
        workers=2,
        small_graph_edges=0,
        refine="block",
        data_plane=plane,
        counters=SkylineCounters(),
    )
    assert_same_result(par, filter_refine_sky(g))


@POOLED
@given(graphs())
def test_parallel_auto_kernel_matches(g):
    c = SkylineCounters()
    par = parallel_refine_sky(
        g,
        workers=2,
        small_graph_edges=0,
        refine="auto",
        counters=c,
    )
    assert_same_result(par, filter_refine_sky(g))
    assert c.extra["refine_requested"] == "auto"
    assert c.extra["refine_path"] in ("bloom", "bitset", "block")


def test_choose_refine_kernel_cutover():
    if not HAVE_NUMPY:
        assert choose_refine_kernel(10, 100, word_budget=1 << 20) == "bloom"
        return
    # Small candidate sets within budget stay scalar bitset.
    assert choose_refine_kernel(18, 34, word_budget=1 << 20) == "bitset"
    # Large candidate sets go block regardless of the matrix budget.
    assert choose_refine_kernel(10_000, 50_000, word_budget=1 << 24) == "block"
    # Small but over-budget sets go block too (no matrix needed there).
    assert choose_refine_kernel(100, 1_000_000, word_budget=1) == "block"


@pytest.mark.parametrize("name", names())
def test_every_standard_dataset_three_way(name):
    g = load(name)
    c_seq, c_bit, c_blk = (
        SkylineCounters(),
        SkylineCounters(),
        SkylineCounters(),
    )
    seq = filter_refine_sky(g, counters=c_seq)
    bit = filter_refine_bitset_sky(g, counters=c_bit)
    blk = neighborhood_skyline(
        g, algorithm="filter_refine_block", counters=c_blk
    )
    assert_same_result(blk, seq)
    assert_same_result(blk, bit)
    assert_counter_relations(c_blk, c_seq)


@pytest.mark.skipif(
    not RUN_LARGE,
    reason=(
        "large-tier differential takes minutes (sequential bloom at "
        "million-edge scale); set REPRO_LARGE_TESTS=1 to run — "
        "benchmarks/bench_refine_vector.py asserts the same equality "
        "on kron_large in CI"
    ),
)
@pytest.mark.parametrize("name", names(tier="large"))
def test_every_large_dataset_three_way(name):
    g = load(name)
    seq = filter_refine_sky(g)
    blk = filter_refine_block_sky(g)
    bit = filter_refine_bitset_sky(g)
    assert_same_result(blk, seq)
    assert bit.skyline == seq.skyline
    assert bit.dominator == seq.dominator
