"""Stateful property test: DynamicSkyline vs recompute-from-scratch.

Hypothesis drives an arbitrary interleaving of edge insertions and
deletions against :class:`DynamicSkyline`; after every step the
maintained skyline must equal a fresh FilterRefineSky run on the same
edge set, and the internal graph snapshot must match the shadow edge
set exactly.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.dynamic import DynamicSkyline
from repro.core.filter_refine import filter_refine_sky
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi

N = 12


class DynamicSkylineMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 1000))
    def setup(self, seed):
        graph = erdos_renyi(N, 0.2, seed=seed)
        self.edges = set(graph.edges())
        self.dynamic = DynamicSkyline(graph)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def flip_edge(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        if edge in self.edges:
            self.dynamic.delete_edge(*edge)
            self.edges.discard(edge)
        else:
            self.dynamic.insert_edge(*edge)
            self.edges.add(edge)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def insert_if_absent(self, u, v):
        if u == v:
            return
        edge = (min(u, v), max(u, v))
        if edge not in self.edges:
            self.dynamic.insert_edge(*edge)
            self.edges.add(edge)

    @invariant()
    def skyline_matches_recompute(self):
        if not hasattr(self, "edges"):
            return  # before initialize
        expected = filter_refine_sky(
            Graph.from_edges(N, self.edges)
        ).skyline
        assert self.dynamic.skyline == expected

    @invariant()
    def snapshot_matches_shadow(self):
        if not hasattr(self, "edges"):
            return
        assert set(self.dynamic.to_graph().edges()) == self.edges


DynamicSkylineMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestDynamicSkylineStateful = DynamicSkylineMachine.TestCase
