"""Property tests for the structural extras: threshold, twins, approx, layers."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approx import approx_skyline
from repro.core.api import neighborhood_skyline
from repro.core.domination import neighborhood_included
from repro.core.layers import dominance_layers, layer_sets
from repro.graph.threshold import (
    creation_sequence,
    is_threshold_graph,
    threshold_graph,
)
from repro.graph.twins import false_twin_classes, true_twin_classes
from tests.conftest import graphs, power_law_graphs

COMMON = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

creation_sequences = st.text(alphabet="id", min_size=0, max_size=14)


@COMMON
@given(creation_sequences)
def test_threshold_roundtrip(sequence):
    g = threshold_graph(sequence)
    recovered = creation_sequence(g)
    assert recovered is not None
    rebuilt = threshold_graph(recovered)
    assert sorted(g.degree(u) for u in g.vertices()) == sorted(
        rebuilt.degree(u) for u in rebuilt.vertices()
    )


@COMMON
@given(creation_sequences)
def test_threshold_preorder_total(sequence):
    g = threshold_graph(sequence)
    for u in g.vertices():
        for v in g.vertices():
            if u != v:
                assert neighborhood_included(
                    g, u, v
                ) or neighborhood_included(g, v, u)


@COMMON
@given(graphs(max_vertices=16))
def test_recognition_agrees_with_totality(g):
    # A graph is threshold iff the inclusion pre-order is total AND it
    # has no isolated-vs-nonisolated incomparability... the classical
    # characterization is totality of the vicinal pre-order; verify the
    # recognizer against it.
    total = all(
        neighborhood_included(g, u, v) or neighborhood_included(g, v, u)
        for u in g.vertices()
        for v in g.vertices()
        if u != v
    )
    assert is_threshold_graph(g) == total


@COMMON
@given(graphs())
def test_twin_classes_partition(g):
    for classes in (false_twin_classes(g), true_twin_classes(g)):
        seen = sorted(v for cls in classes for v in cls)
        assert seen == list(g.vertices())


@COMMON
@given(graphs())
def test_true_twin_members_adjacent(g):
    for cls in true_twin_classes(g):
        for i, u in enumerate(cls):
            for v in cls[i + 1 :]:
                assert g.has_edge(u, v)


@COMMON
@given(graphs(), st.sampled_from([0.0, 0.15, 0.3, 0.5]))
def test_approx_skyline_sound(g, eps):
    # Not a subset claim — relaxation can flip a strict domination into
    # a mutual tie that the ID order resolves the other way (see the
    # module docstring).  The sound invariants are membership-wise.
    from repro.core.approx import epsilon_dominates
    from repro.core.domination import two_hop_neighbors

    result = approx_skyline(g, eps)
    if eps == 0.0:
        assert result.skyline == neighborhood_skyline(g).skyline
        return
    members = result.skyline_set
    for u in g.vertices():
        has_dominator = any(
            epsilon_dominates(g, w, u, eps)
            for w in two_hop_neighbors(g, u)
        )
        assert (u not in members) == has_dominator


@COMMON
@given(power_law_graphs(max_vertices=40))
def test_layers_first_is_skyline(g):
    sets_ = layer_sets(g)
    if g.num_vertices == 0:
        assert sets_ == []
        return
    assert sets_[0] == neighborhood_skyline(g).skyline


@COMMON
@given(graphs())
def test_layer_values_well_formed(g):
    layers = dominance_layers(g)
    assert len(layers) == g.num_vertices
    assert all(depth >= 1 for depth in layers)
