"""Differential safety net for the lazy (CELF) greedy engine.

``strategy="lazy"`` must return the *same* group, gains (float ``==``),
and pool size as the eager reference driver — for every objective,
every worker count and any chunking — because laziness, the CSR
kernels and the round-0 pool are all pure scheduling changes.  These
tests enforce the claim on hypothesis-generated graphs (random,
power-law, disconnected composites, twin-heavy), including ``k`` at or
beyond the pool size so the heap-dry fallback path is exercised.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.centrality.greedy import greedy_maximize
from repro.centrality.group_closeness_max import ClosenessObjective
from repro.centrality.group_harmonic_max import HarmonicObjective
from repro.centrality.lazy_greedy import lazy_greedy_maximize
from repro.graph.adjacency import Graph
from tests.conftest import graphs, power_law_graphs

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Pool-backed examples fork real worker processes, so keep the count
#: low; the in-process path (identical kernels) gets the wide sweep.
POOLED = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_objective(graph, measure):
    """The gain objective for ``measure`` on ``graph``."""
    if measure == "closeness":
        return ClosenessObjective(graph)
    return HarmonicObjective()


def assert_identical(lazy, eager):
    assert lazy.group == eager.group
    assert lazy.gains == eager.gains  # float ==, not approx
    assert lazy.pool_size == eager.pool_size
    assert lazy.evaluations + lazy.evaluations_saved == eager.evaluations


@st.composite
def disconnected_graphs(draw):
    """Two independent hypothesis graphs glued into one vertex space."""
    a = draw(graphs(max_vertices=10))
    b = draw(graphs(max_vertices=10))
    offset = a.num_vertices
    edges = list(a.edges()) + [
        (u + offset, v + offset) for u, v in b.edges()
    ]
    return Graph.from_edges(offset + b.num_vertices, edges)


@st.composite
def twin_heavy_graphs(draw):
    """A small graph with extra false/true twins grafted on.

    Twins share gains exactly, so these graphs maximize the equal-gain
    smallest-ID tie-break traffic a wrong heap ordering would scramble.
    """
    g = draw(graphs(max_vertices=8))
    n = g.num_vertices
    if n == 0:
        return g
    adj = [set(g.neighbors(u)) for u in range(n)]
    extra = draw(st.integers(min_value=1, max_value=5))
    for _ in range(extra):
        src = draw(st.integers(min_value=0, max_value=len(adj) - 1))
        true_twin = draw(st.booleans())
        new = len(adj)
        adj.append(set(adj[src]))
        for w in adj[src]:
            adj[w].add(new)
        if true_twin:
            adj[src].add(new)
            adj[new].add(src)
    edges = [(u, v) for u, nbrs in enumerate(adj) for v in nbrs if u < v]
    return Graph.from_edges(len(adj), edges)


MEASURES = st.sampled_from(["closeness", "harmonic"])


@COMMON
@given(graphs(), st.integers(min_value=0, max_value=6), MEASURES)
def test_lazy_matches_eager_random(g, k, measure):
    objective = make_objective(g, measure)
    assert_identical(
        lazy_greedy_maximize(g, k, objective),
        greedy_maximize(g, k, objective),
    )


@COMMON
@given(power_law_graphs(), st.sampled_from([3, 7]), MEASURES)
def test_lazy_matches_eager_power_law(g, k, measure):
    objective = make_objective(g, measure)
    assert_identical(
        lazy_greedy_maximize(g, k, objective),
        greedy_maximize(g, k, objective),
    )


@COMMON
@given(disconnected_graphs(), st.sampled_from([2, 5]), MEASURES)
def test_lazy_matches_eager_disconnected(g, k, measure):
    objective = make_objective(g, measure)
    assert_identical(
        lazy_greedy_maximize(g, k, objective),
        greedy_maximize(g, k, objective),
    )


@COMMON
@given(twin_heavy_graphs(), st.sampled_from([1, 3, 6]), MEASURES)
def test_lazy_matches_eager_twin_heavy(g, k, measure):
    # Twin gains are bitwise equal, so every round exercises the
    # equal-gain ascending-ID heap order against the eager first-max.
    objective = make_objective(g, measure)
    assert_identical(
        lazy_greedy_maximize(g, k, objective),
        greedy_maximize(g, k, objective),
    )


@COMMON
@given(graphs(max_vertices=12), MEASURES)
def test_k_at_least_pool_size_falls_back(g, measure):
    # A pool smaller than k forces the heap-dry rebuild from V \ S —
    # the lazy mirror of the eager driver's fallback.
    if g.num_vertices == 0:
        return
    pool = list(range(min(2, g.num_vertices)))
    k = g.num_vertices + 5
    objective = make_objective(g, measure)
    assert_identical(
        lazy_greedy_maximize(g, k, objective, candidates=pool),
        greedy_maximize(g, k, objective, candidates=pool),
    )


@POOLED
@given(
    graphs(max_vertices=14),
    st.sampled_from([2, 4]),
    st.sampled_from([1, 3, None]),
    MEASURES,
)
def test_pooled_round0_matches_eager(g, workers, chunk_size, measure):
    objective = make_objective(g, measure)
    pooled = lazy_greedy_maximize(
        g,
        4,
        objective,
        workers=workers,
        chunk_size=chunk_size,
        small_graph_edges=0,  # force the pool even on tiny graphs
    )
    assert_identical(pooled, greedy_maximize(g, 4, objective))
    # Worker count and chunking must not leak into the counters either.
    in_process = lazy_greedy_maximize(g, 4, objective)
    assert pooled.evaluations == in_process.evaluations
    assert pooled.evaluations_saved == in_process.evaluations_saved
