"""Differential safety net for the parallel refine engine.

``filter_refine_parallel`` must return the *same* skyline, dominator
witnesses and candidate set as sequential ``filter_refine`` (which the
rest of the suite pins to ``naive``), for every worker count and chunk
size — see ``repro/parallel/worker.py`` for why that holds.  These
tests enforce the claim on hypothesis-generated graphs, on twin-heavy
graphs where the Def. 2 ID tie-break is the whole story, and on the
merged counters.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.counters import SkylineCounters
from repro.core.filter_refine import filter_refine_sky
from repro.core.naive import naive_skyline
from repro.graph.adjacency import Graph
from repro.graph.twins import twin_representatives
from repro.parallel import parallel_refine_sky
from tests.conftest import graphs, power_law_graphs

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Pool-backed examples fork real worker processes, so keep the count
#: low; the in-process path (identical scan code) gets the wide sweep.
POOLED = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_same_result(par, seq):
    assert par.skyline == seq.skyline
    assert par.dominator == seq.dominator
    assert par.candidates == seq.candidates


@st.composite
def twin_heavy_graphs(draw):
    """A small graph with extra false/true twins grafted on.

    Twin classes are exactly the mutual-inclusion ties of Def. 2, so
    these graphs maximize the ID tie-break traffic a wrong parallel
    decomposition would scramble.
    """
    g = draw(graphs(max_vertices=10))
    n = g.num_vertices
    if n == 0:
        return g
    adj = [set(g.neighbors(u)) for u in range(n)]
    extra = draw(st.integers(min_value=1, max_value=6))
    for _ in range(extra):
        src = draw(st.integers(min_value=0, max_value=len(adj) - 1))
        true_twin = draw(st.booleans())
        new = len(adj)
        adj.append(set(adj[src]))
        for w in adj[src]:
            adj[w].add(new)
        if true_twin:
            # An edge between equal open neighborhoods makes the closed
            # neighborhoods equal too.
            adj[src].add(new)
            adj[new].add(src)
    edges = [
        (u, v) for u, nbrs in enumerate(adj) for v in nbrs if u < v
    ]
    return Graph.from_edges(len(adj), edges)


@COMMON
@given(graphs(), st.sampled_from([1, 2, 5, None]))
def test_in_process_engine_matches_sequential_and_naive(g, chunk_size):
    par = parallel_refine_sky(g, workers=1, chunk_size=chunk_size)
    assert_same_result(par, filter_refine_sky(g))
    assert par.skyline == naive_skyline(g).skyline


@COMMON
@given(power_law_graphs())
def test_in_process_engine_matches_sequential_power_law(g):
    assert_same_result(
        parallel_refine_sky(g, workers=1), filter_refine_sky(g)
    )


@POOLED
@given(
    graphs(max_vertices=18),
    st.sampled_from([2, 4]),
    st.sampled_from([1, 3, None]),
)
def test_pooled_engine_matches_sequential(g, workers, chunk_size):
    par = parallel_refine_sky(
        g,
        workers=workers,
        chunk_size=chunk_size,
        small_graph_edges=0,  # force the pool even on tiny graphs
    )
    assert_same_result(par, filter_refine_sky(g))
    assert par.skyline == naive_skyline(g).skyline


@COMMON
@given(twin_heavy_graphs(), st.sampled_from([1, 2, 4]))
def test_twin_heavy_tie_breaks(g, workers):
    # workers > 1 on these tiny graphs exercises the pool decision path
    # but stays in-process (below the size threshold) — the pooled scan
    # itself is covered above; here the point is the tie-break data.
    par = parallel_refine_sky(g, workers=workers)
    seq = filter_refine_sky(g)
    assert_same_result(par, seq)
    assert par.skyline == naive_skyline(g).skyline
    # Def. 2: within a twin class the smallest ID dominates the rest,
    # so every skyline member is its class's minimum — in both flavors.
    # (Isolated vertices are exempt: they all share the empty open
    # neighborhood yet are all skyline members by convention.)
    open_rep = twin_representatives(g)
    closed_rep = twin_representatives(g, closed=True)
    for u in par.skyline:
        if g.degree(u) > 0:
            assert open_rep[u] == u
        assert closed_rep[u] == u


@COMMON
@given(graphs(), st.sampled_from([(1, None), (1, 1), (1, 4)]))
def test_counters_deterministic_across_chunkings(g, config):
    workers, chunk_size = config
    baseline = SkylineCounters()
    parallel_refine_sky(g, workers=1, chunk_size=2, counters=baseline)
    other = SkylineCounters()
    parallel_refine_sky(
        g, workers=workers, chunk_size=chunk_size, counters=other
    )
    assert other.as_dict() == baseline.as_dict()
    assert (
        other.extra["parallel_rescans"]
        == baseline.extra["parallel_rescans"]
    )


@COMMON
@given(graphs())
def test_merged_counters_consistency(g):
    counters = SkylineCounters()
    result = parallel_refine_sky(g, workers=1, counters=counters)
    d = counters.as_dict()
    # Every non-skyline vertex leaves via exactly one recorded domination
    # (filter phase or status pass; the witness pass records none).
    assert d["dominations_found"] == g.num_vertices - result.size
    assert d["bloom_false_positives"] <= d["nbr_checks"]
    assert d["bloom_member_rejects"] <= d["bloom_member_checks"]
    assert d["nbr_checks"] <= d["bloom_member_checks"]
    assert d["dominations_found"] <= d["pair_tests"] + d["vertices_examined"]
    # The witness pass rescans exactly the refine-dominated candidates.
    assert counters.extra["parallel_rescans"] == len(result.candidates) - sum(
        1 for u in result.candidates if u in result.skyline_set
    )
