"""Differential safety net for the batched marginal-gain kernel.

``gain_batch`` is a pure execution knob: for every batch width the
batched eager round loop, the batched CELF drain and the batched pooled
round 0 must return the *same* group, gains (float ``==``),
``evaluations`` and ``evaluations_saved`` as the scalar engines — the
batched kernel replays the scalar BFS emission order bit for bit (see
:mod:`repro.paths.csr`), and the batched drain replays the scalar heap
evolution pop for pop.  These tests enforce the claim on
hypothesis-generated graphs, on every registered dataset, and across
batch widths including 1 (forced scalar), a non-divisor width, the auto
cap and the whole vertex set.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.centrality.greedy import greedy_maximize
from repro.centrality.group_betweenness_max import base_gb
from repro.centrality.group_closeness_max import ClosenessObjective
from repro.centrality.group_harmonic_max import HarmonicObjective
from repro.centrality.lazy_greedy import lazy_greedy_maximize
from repro.core.counters import SkylineCounters
from repro.workloads import load, names
from tests.conftest import graphs

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POOLED = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Batch widths every equivalence test sweeps: forced scalar, a
#: non-divisor width (partial last lane), the auto-plane cap, and
#: "every candidate in one call".
WIDTHS = (1, 3, 64, "n")


class HalfDropObjective:
    """A custom objective with no ``csr_kernel`` tag.

    Exercises the *generic* batched kernel (batched BFS, Python
    ``gain_weight`` per improvement) rather than the fused closeness /
    harmonic reductions.
    """

    name = "half-drop"

    def gain_weight(self, old: int, new: int) -> float:
        if old == -1:
            return 1.0 + 0.25 * new
        return 0.5 * (old - new)


def make_objective(graph, measure):
    if measure == "closeness":
        return ClosenessObjective(graph)
    if measure == "harmonic":
        return HarmonicObjective()
    return HalfDropObjective()


def widths_for(graph):
    return [n if w == "n" else w for w in WIDTHS for n in
            [max(1, graph.num_vertices)]]


def assert_same_result(a, b):
    assert a.group == b.group
    assert a.gains == b.gains  # float ==, not approx
    assert a.evaluations == b.evaluations
    assert a.evaluations_saved == b.evaluations_saved
    assert a.pool_size == b.pool_size


MEASURES = st.sampled_from(["closeness", "harmonic", "generic"])


@COMMON
@given(graphs(), st.integers(min_value=0, max_value=6), MEASURES)
def test_batched_eager_matches_scalar_eager(g, k, measure):
    objective = make_objective(g, measure)
    scalar = greedy_maximize(g, k, objective, gain_batch=1)
    for width in widths_for(g):
        assert_same_result(
            greedy_maximize(g, k, objective, gain_batch=width), scalar
        )


@COMMON
@given(graphs(), st.integers(min_value=0, max_value=6), MEASURES)
def test_batched_lazy_matches_scalar_lazy_and_eager(g, k, measure):
    objective = make_objective(g, measure)
    scalar_lazy = lazy_greedy_maximize(g, k, objective, gain_batch=1)
    eager = greedy_maximize(g, k, objective, gain_batch=1)
    for width in widths_for(g):
        batched = lazy_greedy_maximize(g, k, objective, gain_batch=width)
        assert_same_result(batched, scalar_lazy)
        # The CELF invariant must survive batching verbatim.
        assert batched.group == eager.group
        assert batched.gains == eager.gains
        assert (
            batched.evaluations + batched.evaluations_saved
            == eager.evaluations
        )


@COMMON
@given(graphs(max_vertices=14), st.sampled_from(["closeness", "harmonic"]))
def test_k_beyond_pool_batched_fallback(g, measure):
    # A pool smaller than k forces the heap-dry rebuild from V \ S;
    # the batched scope scan must match the scalar one there too.
    if g.num_vertices == 0:
        return
    pool = list(range(min(2, g.num_vertices)))
    k = g.num_vertices + 3
    objective = make_objective(g, measure)
    scalar = lazy_greedy_maximize(
        g, k, objective, candidates=pool, gain_batch=1
    )
    for width in (3, max(1, g.num_vertices)):
        assert_same_result(
            lazy_greedy_maximize(
                g, k, objective, candidates=pool, gain_batch=width
            ),
            scalar,
        )


@COMMON
@given(graphs(), st.sampled_from([2, 4]), MEASURES)
def test_batch_counters_account_for_every_lane(g, k, measure):
    if g.num_vertices < 4:
        return
    objective = make_objective(g, measure)
    counters = SkylineCounters()
    result = lazy_greedy_maximize(
        g, k, objective, gain_batch=3, counters=counters
    )
    extra = counters.extra
    batch = extra["gain_batch"]
    if batch == 1:  # no numpy / no CSR batch plane in this env
        return
    assert batch == 3
    # Every computed lane is either consumed as a charged evaluation or
    # short-circuited by the drain ending first — nothing vanishes.
    assert (
        extra["lanes_evaluated"] - extra["lanes_short_circuited"]
        == result.evaluations
    )
    assert extra["batch_rounds"] >= 1
    assert extra["lanes_evaluated"] >= result.evaluations


@POOLED
@given(
    graphs(max_vertices=14),
    st.sampled_from([1, 3]),
    st.sampled_from(["closeness", "harmonic"]),
)
def test_pooled_round0_batched_matches_scalar(g, width, measure):
    objective = make_objective(g, measure)
    pooled = lazy_greedy_maximize(
        g,
        4,
        objective,
        workers=2,
        small_graph_edges=0,  # force the pool even on tiny graphs
        gain_batch=width,
    )
    assert_same_result(
        pooled, lazy_greedy_maximize(g, 4, objective, gain_batch=1)
    )


@pytest.mark.parametrize("name", names())
def test_batched_matches_scalar_on_registered_datasets(name):
    g = load(name)
    rng = random.Random(7)
    pool = sorted(rng.sample(range(g.num_vertices),
                             min(24, g.num_vertices)))
    measure = "harmonic" if hash(name) % 2 else "closeness"
    objective = make_objective(g, measure)
    scalar = lazy_greedy_maximize(
        g, 4, objective, candidates=pool, gain_batch=1
    )
    for width in (3, 64):
        assert_same_result(
            lazy_greedy_maximize(
                g, 4, objective, candidates=pool, gain_batch=width
            ),
            scalar,
        )
    assert_same_result(
        lazy_greedy_maximize(g, 4, objective, candidates=pool),
        scalar,
    )  # the auto width too


def test_betweenness_objective_unaffected_by_batch_plane():
    # Group betweenness has no distance-improvement stream, so it has
    # no batched plane; its eager/lazy equivalence (the property the
    # batch work must not disturb) still holds.
    g = load("karate")
    eager = base_gb(g, 4, strategy="eager")
    lazy = base_gb(g, 4, strategy="lazy")
    assert lazy.group == eager.group
    assert lazy.scores == eager.scores
    assert lazy.evaluations + lazy.evaluations_saved == eager.evaluations
